//! Diamond-DAG pipeline walkthrough.
//!
//! Builds the Fusion workload — a multimodal clinical-risk pipeline whose
//! two pre-processing branches are independent —
//!
//! ```text
//! fusion_source ──► vitals_branch ──► fusion ──► risk_model
//!             └───► labs_branch  ───┘
//! ```
//!
//! then runs the full collaborative lifecycle on it: commit on `master`
//! (with the branches executing concurrently on a worker pool), let a
//! vitals team and a labs team iterate on their own git branches, and merge
//! both back with the metric-driven merge. Along the way it asserts the
//! wavefront determinism contract: the parallel run's report is identical
//! to a sequential run's.
//!
//! Run with: `cargo run --release --example dag_pipeline`

use mlcask::prelude::*;

fn main() {
    let workload = mlcask::workloads::fusion::build();
    let dag = workload.dag();
    println!(
        "fusion pipeline: {} slots, {} edges, wavefront width {}",
        dag.len(),
        dag.edge_list().len(),
        dag.max_width()
    );
    assert_eq!(
        dag.max_width(),
        2,
        "the diamond has two independent branches"
    );

    // The same commit, executed sequentially and on a worker pool, must
    // produce byte-identical reports (the wavefront scheduler replays its
    // accounting in canonical topological order).
    let sequential = run_initial(&workload, ParallelismPolicy::Sequential);
    let parallel = run_initial(&workload, ParallelismPolicy::Parallel(4));
    assert_eq!(sequential, parallel, "parallel execution must be invisible");
    println!("sequential and 4-worker commit reports are byte-identical");

    // Collaborative lifecycle on the diamond, branches evaluated in
    // parallel throughout.
    let (_registry, sys) = build_system(&workload).expect("system builds");
    let sys = sys.with_parallelism(ParallelismPolicy::auto());
    let clock = ClockLedger::new();

    let initial = sys
        .commit_pipeline("master", &workload.initial, "production v1", &clock)
        .expect("initial commit");
    let baseline = initial.report.outcome.score().unwrap().raw;
    println!("\nproduction (master.0) AUC: {baseline:.4}");

    // Each stage of the diamond was archived; the fusion stage consumed
    // *both* branch outputs (its metafile slot is distinct from either
    // branch's).
    let meta = sys.head_metafile("master").expect("metafile");
    assert_eq!(meta.slots.len(), 5);
    assert_eq!(
        meta.edges.len(),
        5,
        "metafile records the diamond, not a chain"
    );
    assert!(
        meta.edges
            .contains(&("vitals_branch".to_string(), "fusion".to_string()))
            && meta
                .edges
                .contains(&("labs_branch".to_string(), "fusion".to_string())),
        "both branch edges recorded"
    );

    // Two teams iterate independently.
    sys.branch("master", "vitals-team").expect("branch");
    sys.branch("master", "labs-team").expect("branch");
    sys.commit_pipeline(
        "vitals-team",
        &workload.head_updates[0],
        "better vitals normalisation + model bump",
        &clock,
    )
    .expect("vitals commit");
    for (i, update) in workload.dev_updates.iter().enumerate() {
        sys.commit_pipeline("labs-team", update, &format!("labs iteration {i}"), &clock)
            .expect("labs commit");
    }

    // Merge the vitals team first (fast-forward: master has not moved),
    // then the labs team (diverged: triggers the metric-driven search over
    // cross-team combinations).
    let m1 = sys
        .merge("master", "vitals-team", MergeStrategy::Full, &clock)
        .expect("merge vitals-team");
    println!(
        "merged vitals-team -> master{}",
        if m1.fast_forward {
            " (fast-forward)"
        } else {
            ""
        }
    );
    let m2 = sys
        .merge("master", "labs-team", MergeStrategy::Full, &clock)
        .expect("merge labs-team");
    let report = m2.report.as_ref().expect("diverged merge searches");
    println!(
        "merged labs-team -> master: {} candidates evaluated, {} components reused",
        report.candidates_evaluated, report.reused_components
    );

    // The merged pipeline combines both teams' work: the merge is free to
    // pick each team's best component per slot.
    let final_meta = sys.head_metafile("master").expect("metafile");
    let final_score = final_meta.score.unwrap().raw;
    println!("\nfinal production pipeline ({}):", final_meta.label);
    for slot in &final_meta.slots {
        println!("  {}", slot.component);
    }
    println!("AUC: {baseline:.4} -> {final_score:.4}");
    assert!(
        final_score >= baseline,
        "metric-driven merge never regresses production"
    );
    // Both branch slots still feed the fusion slot in the merged metafile.
    assert!(final_meta.component_version("vitals_branch").is_some());
    assert!(final_meta.component_version("labs_branch").is_some());
}

/// Commits the initial fusion pipeline on a fresh system under `policy` and
/// returns the serialised run report.
fn run_initial(workload: &Workload, policy: ParallelismPolicy) -> String {
    let (_registry, sys) = build_system(workload).expect("system builds");
    let sys = sys.with_parallelism(policy);
    let clock = ClockLedger::new();
    let result = sys
        .commit_pipeline("master", &workload.initial, "initial", &clock)
        .expect("commit succeeds");
    format!(
        "{} {}",
        serde_json::to_string(&result.report).expect("serializable"),
        serde_json::to_string(&clock.snapshot()).expect("serializable"),
    )
}
