//! Quickstart: version-control an ML pipeline with MLCask.
//!
//! Walks the paper's running example end to end: commit the Readmission
//! pipeline, iterate on a development branch, and run the metric-driven
//! merge back into master.
//!
//! Run with: `cargo run --release --example quickstart`

use mlcask::prelude::*;

fn main() {
    // 1. Build the Readmission workload (dataset → cleanse → extract → CNN)
    //    and a fresh MLCask system over an in-memory ForkBase-like store.
    let workload = mlcask::workloads::readmission::build();
    let (_registry, sys) = build_system(&workload).expect("system builds");
    let clock = ClockLedger::new();

    // 2. Commit the initial pipeline on master. MLCask runs it, archives
    //    every component output, and records the metric score.
    let initial = sys
        .commit_pipeline("master", &workload.initial, "initial pipeline", &clock)
        .expect("initial commit");
    let commit = initial.commit.expect("committed");
    println!(
        "committed {} score={:.4} (executed {} components)",
        commit.label(),
        initial.report.outcome.score().unwrap().raw,
        initial.report.executed_count(),
    );

    // 3. Branch for development — master stays untouched (the paper's
    //    production/development isolation).
    sys.branch("master", "dev").expect("branch");
    for (i, update) in workload.dev_updates.iter().enumerate() {
        let res = sys
            .commit_pipeline("dev", update, &format!("dev update {i}"), &clock)
            .expect("dev commit");
        let report = &res.report;
        println!(
            "dev.{} score={:.4} (reused {} / executed {})",
            i + 1,
            report.outcome.score().unwrap().raw,
            report.reused_count(),
            report.executed_count(),
        );
    }

    // 4. Meanwhile master also moved (another user role).
    for (i, update) in workload.head_updates.iter().enumerate() {
        sys.commit_pipeline("master", update, &format!("head update {i}"), &clock)
            .expect("head commit");
    }

    // 5. Metric-driven merge: search the cross-product of component versions
    //    developed since the common ancestor, pruned by compatibility (PC)
    //    and accelerated by reusable checkpoints (PR).
    let outcome = sys
        .merge("master", "dev", MergeStrategy::Full, &clock)
        .expect("merge");
    let report = outcome.report.expect("diverged merge");
    println!(
        "\nmerge searched {} candidates ({} pruned as incompatible)",
        report.candidates_evaluated, report.candidates_pruned
    );
    println!(
        "  components executed: {}  reused from history: {}",
        report.executed_components, report.reused_components
    );
    let (keys, score) = report.best.expect("winner");
    println!("  winner (score {:.4}):", score.raw);
    for k in &keys {
        println!("    {k}");
    }
    println!(
        "  merge commit: {} (parents: {})",
        outcome.commit.as_ref().unwrap().label(),
        outcome.commit.as_ref().unwrap().parents.len()
    );
    println!(
        "\nvirtual pipeline time so far: {:.2}s (storage {:.2}s)",
        clock.pipeline_total().as_secs_f64(),
        clock.storage_total().as_secs_f64()
    );
    let stats = sys.store().stats();
    println!(
        "store: {:.1} MiB logical → {:.1} MiB physical (dedup {:.1}x)",
        stats.total().logical_bytes as f64 / (1 << 20) as f64,
        stats.total().physical_bytes as f64 / (1 << 20) as f64,
        stats.dedup_ratio()
    );
}
