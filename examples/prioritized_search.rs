//! Prioritized pipeline search under a time budget (paper §VII-E).
//!
//! When the pruned candidate set is still large, MLCask orders the search so
//! promising pipelines run first. This example compares prioritized and
//! random search on the SA pipeline's merge and shows how quickly each finds
//! the optimum.
//!
//! Run with: `cargo run --release --example prioritized_search`

use mlcask::prelude::*;

fn main() {
    let workload = mlcask::workloads::sa::build();
    let (registry, sys) = build_system(&workload).expect("system builds");
    setup_nonlinear(&sys, &workload).expect("fig-3 history");

    let spaces = sys
        .merge_search_spaces("master", "dev")
        .expect("search spaces");
    let init_scores = sys.initial_scores("master", "dev").expect("head scores");
    println!(
        "search space: {} candidates over {} slots; {} initial scores from trained heads\n",
        spaces.candidate_upper_bound(),
        spaces.len(),
        init_scores.len()
    );

    let searcher = PrioritizedSearcher::new(&registry, sys.dag().clone());
    let trials = 40;
    for method in [SearchMethod::Prioritized, SearchMethod::Random] {
        let stats = searcher
            .run_trials(&spaces, sys.history(), &init_scores, method, trials, 7)
            .expect("trials");
        println!("{} search ({} trials):", method.label(), trials);
        println!(
            "  optimum found within 20%/40%/60%/80% of searches: {:.0}% / {:.0}% / {:.0}% / {:.0}%",
            stats.optimal_within(0.2) * 100.0,
            stats.optimal_within(0.4) * 100.0,
            stats.optimal_within(0.6) * 100.0,
            stats.optimal_within(0.8) * 100.0,
        );
        let first = stats.per_rank.first().unwrap();
        let last = stats.per_rank.last().unwrap();
        println!(
            "  first-searched candidate: mean score {:.4} (t={:.2}s); last: {:.4} (t={:.2}s)\n",
            first.mean_score, first.avg_end_time_s, last.mean_score, last.avg_end_time_s
        );
    }

    println!(
        "Prioritized search runs high-score candidates first, so a budget\n\
         that stops the search early still returns a near-optimal pipeline."
    );
}
