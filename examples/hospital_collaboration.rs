//! Hospital deployment scenario (paper §VIII).
//!
//! Simulates the NUH deployment pattern: a stable *production* pipeline, a
//! *data-scientist* branch iterating on models, and a *clinician-informatics*
//! branch updating pre-processing — merged back with the metric-driven merge
//! so production only ever advances to a measured-better pipeline.
//!
//! Run with: `cargo run --release --example hospital_collaboration`

use mlcask::prelude::*;

fn main() {
    let workload = mlcask::workloads::dpm::build();
    let (_registry, sys) = build_system(&workload).expect("system builds");
    let clock = ClockLedger::new();

    // Production pipeline goes live.
    let initial = sys
        .commit_pipeline("master", &workload.initial, "production v1", &clock)
        .expect("initial commit");
    let baseline_score = initial.report.outcome.score().unwrap().raw;
    println!("production (master.0) accuracy: {baseline_score:.4}");

    // Two teams branch off production.
    sys.branch("master", "ds-team").expect("branch ds-team");
    sys.branch("master", "clinical-team")
        .expect("branch clinical-team");

    // The data-science team tries model variants on its branch.
    let mut model_keys = workload.initial.clone();
    for (i, version) in workload.chains[workload.model_slot][1..3]
        .iter()
        .enumerate()
    {
        model_keys[workload.model_slot] = version.clone();
        let res = sys
            .commit_pipeline("ds-team", &model_keys, &format!("model trial {i}"), &clock)
            .expect("ds commit");
        println!(
            "ds-team trial {i}: model {} → accuracy {:.4}",
            version.version,
            res.report.outcome.score().unwrap().raw
        );
    }

    // The clinical team improves cleansing + sequence extraction.
    let mut clean_keys = workload.initial.clone();
    clean_keys[1] = workload.chains[1][1].clone();
    clean_keys[2] = workload.chains[2][1].clone();
    let res = sys
        .commit_pipeline("clinical-team", &clean_keys, "better imputation", &clock)
        .expect("clinical commit");
    println!(
        "clinical-team: new cleansing → accuracy {:.4}",
        res.report.outcome.score().unwrap().raw
    );

    // Merge the data-science branch into production first. Master has not
    // moved, so this is a fast-forward merge.
    let m1 = sys
        .merge("master", "ds-team", MergeStrategy::Full, &clock)
        .expect("merge ds-team");
    let s1 = best_score(&sys, &m1);
    println!(
        "\nmerged ds-team → master: accuracy {s1:.4}{}",
        if m1.fast_forward {
            " (fast-forward)"
        } else {
            ""
        }
    );

    // Then merge the clinical branch; the search space now spans both teams'
    // updates, so the merge can pick cross-team combinations no one tested.
    let m2 = sys
        .merge("master", "clinical-team", MergeStrategy::Full, &clock)
        .expect("merge clinical-team");
    let s2 = best_score(&sys, &m2);
    let report = m2.report.as_ref().expect("search happened");
    println!(
        "merged clinical-team → master: accuracy {s2:.4} ({} candidates, {} reused components)",
        report.candidates_evaluated, report.reused_components
    );

    let final_meta = sys.head_metafile("master").expect("head metafile");
    println!("\nfinal production pipeline ({}):", final_meta.label);
    for slot in &final_meta.slots {
        println!("  {}", slot.component);
    }
    println!(
        "accuracy: {baseline_score:.4} → {:.4}",
        final_meta.score.unwrap().raw
    );
    assert!(
        final_meta.score.unwrap().raw >= baseline_score,
        "metric-driven merge never regresses production"
    );
}

fn best_score(sys: &MlCask, outcome: &MergeOutcome) -> f64 {
    match &outcome.report {
        Some(r) => r.best.as_ref().map(|(_, s)| s.raw).unwrap_or(f64::NAN),
        // Fast-forward merge: the merged head's recorded score.
        None => sys
            .head_metafile("master")
            .ok()
            .and_then(|m| m.score)
            .map(|s| s.raw)
            .unwrap_or(f64::NAN),
    }
}
