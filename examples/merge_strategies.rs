//! Merge-strategy comparison (paper §VI, Fig. 8 in miniature).
//!
//! Runs the same diverged merge under all four strategies — naive (Git-style
//! latest-components), exhaustive without pruning, compatibility-pruning
//! only, and full MLCask — and prints what each one costs and finds.
//!
//! Run with: `cargo run --release --example merge_strategies`

use mlcask::prelude::*;

fn main() {
    let workload = mlcask::workloads::autolearn::build();

    println!(
        "merging dev into master on the '{}' pipeline\n",
        workload.name
    );
    println!(
        "{:<18} {:>10} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "strategy", "candidates", "executed", "reused", "failed", "time (s)", "score"
    );

    for strategy in [
        MergeStrategy::Naive,
        MergeStrategy::WithoutPcPr,
        MergeStrategy::WithoutPr,
        MergeStrategy::Full,
    ] {
        // Fresh system per strategy so histories don't leak across runs.
        let (_registry, sys) = build_system(&workload).expect("system builds");
        setup_nonlinear(&sys, &workload).expect("fig-3 history");
        let clock = ClockLedger::new();
        match sys.merge("master", "dev", strategy, &clock) {
            Ok(outcome) => {
                let r = outcome.report.expect("diverged merge");
                println!(
                    "{:<18} {:>10} {:>9} {:>9} {:>9} {:>11.3} {:>9}",
                    strategy.label(),
                    r.candidates_evaluated,
                    r.executed_components,
                    r.reused_components,
                    r.failed_candidates,
                    r.clock.total_secs(),
                    r.best
                        .as_ref()
                        .map(|(_, s)| format!("{:.4}", s.raw))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            Err(e) => {
                // The naive strategy picks the latest components, which are
                // incompatible in this history — exactly the failure mode
                // §V warns about.
                println!("{:<18} failed: {e}", strategy.label());
            }
        }
    }

    println!(
        "\nThe naive merge combines <autolearn_feat, 1.0> with a model built\n\
         for the old schema and fails; the exhaustive strategies find the\n\
         optimum but pay for every candidate; full MLCask prunes incompatible\n\
         candidates (PC) and reuses checkpointed outputs (PR)."
    );
}
