//! The ForkBase-like storage substrate on its own (paper §III / Fig. 7).
//!
//! Shows content-defined chunking and chunk-level dedup doing the work that
//! makes MLCask's library/output versioning cheap: storing near-identical
//! library versions costs only the changed bytes.
//!
//! Run with: `cargo run --release --example storage_dedup`

use mlcask::core::registry::simulated_executable;
use mlcask::prelude::*;

fn main() {
    let store = ChunkStore::in_memory();

    println!("archiving five versions of a 512 KiB library:\n");
    println!(
        "{:<10} {:>14} {:>16} {:>12}",
        "version", "logical (KiB)", "physical (KiB)", "dedup ratio"
    );
    for increment in 0..5u32 {
        let version = format!("0.{increment}");
        let payload = simulated_executable("feature_extract", &version, 512 * 1024);
        store
            .put_blob(ObjectKind::Library, &payload)
            .expect("store library");
        let t = store.stats().total();
        println!(
            "{:<10} {:>14} {:>16} {:>11.1}x",
            version,
            t.logical_bytes / 1024,
            t.physical_bytes / 1024,
            store.stats().dedup_ratio()
        );
    }

    // Git-like branching on the commit graph.
    let graph = CommitGraph::new();
    let root = graph
        .commit_root("master", Hash256::of(b"pipeline v0"), "init")
        .expect("root");
    graph.branch("master", "dev").expect("branch");
    graph
        .commit("dev", Hash256::of(b"pipeline v1"), "dev work")
        .expect("commit");
    let master_head = graph.head("master").expect("head");
    let dev_head = graph.head("dev").expect("head");
    let lca = graph
        .common_ancestor(master_head.id, dev_head.id)
        .expect("lca query")
        .expect("exists");
    println!(
        "\ncommit graph: master={} dev={} common ancestor={} (root={})",
        master_head.label(),
        dev_head.label(),
        lca.label(),
        root.label()
    );
    println!(
        "fast-forward possible: {}",
        graph.is_fast_forward(master_head.id, dev_head.id).unwrap()
    );
}
