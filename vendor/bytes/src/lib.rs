//! Offline stand-in for the `bytes` crate: an `Arc`-backed immutable byte
//! buffer with cheap clones, covering the API this workspace uses.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable, immutable contiguous byte storage.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The bytes as a slice.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Copies out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}
