//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! stand-in.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`
//! available offline). Supports the shapes this workspace derives on:
//! structs with named fields, tuple structs, and enums whose variants are
//! unit, tuple, or struct-like. Generics and `#[serde(...)]` attributes are
//! intentionally unsupported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(e) => compile_error(&e),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes, visibility, and misc modifiers until `struct`/`enum`.
    let kind = loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                if matches!(toks.get(i), Some(TokenTree::Group(_))) {
                    i += 1; // [...]
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                // `pub`, `pub(crate)`, etc.
                i += 1;
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = toks.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
            }
            other => return Err(format!("unexpected token before item keyword: {other:?}")),
        }
    };

    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stand-in derive does not support generics on `{name}`"
            ));
        }
    }

    if kind == "struct" {
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            None => Fields::Unit,
            other => return Err(format!("unexpected struct body: {other:?}")),
        };
        Ok(Item::Struct { name, fields })
    } else {
        let body = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => return Err(format!("expected enum body, got {other:?}")),
        };
        Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        })
    }
}

/// Parses `name: Type, ...` field lists, returning the names. Commas inside
/// angle brackets (e.g. `BTreeMap<K, V>`) are skipped via depth tracking;
/// parens/brackets/braces arrive as single groups so they need no tracking.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Skip attributes and visibility.
        loop {
            match toks.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    i += 1;
                    if matches!(toks.get(i), Some(TokenTree::Group(_))) {
                        i += 1;
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = toks.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        // Skip the type until a top-level comma.
        let mut angle = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Counts top-level comma-separated entries in a tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut angle = 0i32;
    let mut trailing_comma = false;
    for (idx, t) in toks.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if idx == toks.len() - 1 {
                    trailing_comma = true;
                } else {
                    n += 1;
                }
            }
            _ => {}
        }
    }
    let _ = trailing_comma;
    n
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Skip attributes (doc comments on variants).
        loop {
            match toks.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    i += 1;
                    if matches!(toks.get(i), Some(TokenTree::Group(_))) {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip to the next comma (covers explicit discriminants).
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ {body} }} \
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vn, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?}))"
                    ),
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![\
                               (::std::string::String::from({vn:?}), \
                                ::serde::Value::Map(vec![{}]))])",
                            entries.join(", ")
                        )
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Map(vec![\
                           (::std::string::String::from({vn:?}), \
                            ::serde::Serialize::to_value(__f0))])"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![\
                               (::std::string::String::from({vn:?}), \
                                ::serde::Value::Seq(vec![{}]))])",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ \
                     match self {{ {} }} \
                   }} \
                 }}",
                arms.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(__m, {f:?}, {name:?})?"))
                        .collect();
                    format!(
                        "let __m = ::serde::expect_map(__v, {name:?})?; \
                         ::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
                        .collect();
                    format!(
                        "let __s = ::serde::expect_seq(__v, {n}, {name:?})?; \
                         ::std::result::Result::Ok({name}({}))",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_value(__v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(vn, _)| format!("{vn:?} => ::std::result::Result::Ok({name}::{vn})"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(vn, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Named(fs) => {
                        let label = format!("{name}::{vn}");
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(__m, {f:?}, {label:?})?"))
                            .collect();
                        Some(format!(
                            "{vn:?} => {{ \
                               let __m = ::serde::expect_map(__payload, {label:?})?; \
                               ::std::result::Result::Ok({name}::{vn} {{ {} }}) \
                             }}",
                            inits.join(", ")
                        ))
                    }
                    Fields::Tuple(1) => Some(format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                           ::serde::Deserialize::from_value(__payload)?))"
                    )),
                    Fields::Tuple(n) => {
                        let label = format!("{name}::{vn}");
                        let inits: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
                            .collect();
                        Some(format!(
                            "{vn:?} => {{ \
                               let __s = ::serde::expect_seq(__payload, {n}, {label:?})?; \
                               ::std::result::Result::Ok({name}::{vn}({})) \
                             }}",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_value(__v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{ \
                     match __v {{ \
                       ::serde::Value::Str(__s) => match __s.as_str() {{ \
                         {units} \
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                           format!(\"unknown {name} variant `{{__other}}`\"))), \
                       }}, \
                       ::serde::Value::Map(__m0) if __m0.len() == 1 => {{ \
                         let (__tag, __payload) = (&__m0[0].0, &__m0[0].1); \
                         match __tag.as_str() {{ \
                           {datas} \
                           __other => ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"unknown {name} variant `{{__other}}`\"))), \
                         }} \
                       }}, \
                       __other => ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"{name}: unexpected {{}}\", __other.type_name()))), \
                     }} \
                   }} \
                 }}",
                units = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(", "))
                },
                datas = if data_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", data_arms.join(", "))
                },
            )
        }
    }
}
