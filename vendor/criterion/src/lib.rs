//! Offline stand-in for `criterion`.
//!
//! Provides the macro/builder surface this workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter*`,
//! `black_box`, `BenchmarkId`, `Throughput` — backed by a simple wall-clock
//! sampler: each benchmark runs for a fixed number of samples and reports
//! the median iteration time. No statistics, plots, or baselines.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation (accepted, reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing driver passed to the closure.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, called once per sample.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.times.push(start.elapsed());
        }
    }

    /// Times `f` with a fresh un-timed `setup()` input per sample.
    pub fn iter_with_setup<I, T>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut f: impl FnMut(I) -> T,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            self.times.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.times.is_empty() {
            return Duration::ZERO;
        }
        self.times.sort_unstable();
        self.times[self.times.len() / 2]
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs one benchmark outside a group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        run_bench("", &id.to_string(), self.sample_size, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the per-iteration workload size (informational).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&self.name, &id.to_string(), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(&self.name, &id.to_string(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn run_bench(group: &str, id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        times: Vec::with_capacity(samples),
    };
    f(&mut b);
    let median = b.median();
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!("bench {label:<40} median {median:>12?} ({samples} samples)");
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
