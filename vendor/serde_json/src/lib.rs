//! Offline stand-in for `serde_json`: renders the vendored serde [`Value`]
//! tree to JSON text and parses it back.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON encode/decode error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse(s)?;
    Ok(T::from_value(&v)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(Error::new)?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that round-trips
                // and always includes a decimal point or exponent.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !pairs.is_empty() {
                newline(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..(w * depth) {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{8}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{c}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let combined = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(Error::new)?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(Error::new)?;
        let n = u32::from_str_radix(s, 16).map_err(Error::new)?;
        self.pos += 4;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1").unwrap(), 1.0);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn round_trip_containers() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);
        let t = (1u32, "x".to_string(), 0.25f64);
        let s = to_string(&t).unwrap();
        assert_eq!(from_str::<(u32, String, f64)>(&s).unwrap(), t);
    }

    #[test]
    fn option_null() {
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));
    }

    #[test]
    fn float_precision_round_trips() {
        for f in [0.1f64, 1.0 / 3.0, 1e-12, 123456789.123456] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f);
        }
    }
}
