//! Offline stand-in for `parking_lot`: the non-poisoning `Mutex`/`RwLock`
//! API implemented over `std::sync`. Poisoned locks are transparently
//! recovered (parking_lot has no poisoning at all).

use std::sync;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock whose accessors never return poison errors.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
