//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the `proptest!` macro (with
//! `pat in strategy` and `ident: Type` parameters and an optional
//! `#![proptest_config(...)]` line), `any::<T>()`, integer/float range
//! strategies, `proptest::collection::vec`, simple `"[a-z]{1,8}"`-style
//! string regex strategies, and the `prop_assert*` / `prop_assume!` macros.
//! Cases are generated from a deterministic per-test seed; there is no
//! shrinking — a failing case panics with the standard assert message.

use std::marker::PhantomData;
use std::ops::Range;

/// Test-runner plumbing.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic per-test random source.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds from the test name so distinct tests get distinct streams.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

use test_runner::TestRng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical uniform strategy (`any::<T>()` / `ident: Type`).
pub trait Arbitrary: Sized {
    /// Draws one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::Rng::gen(rng)
            }
        }
    )*};
}
arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Draws an arbitrary value (used by the `ident: Type` parameter form).
pub fn arbitrary<T: Arbitrary>(rng: &mut TestRng) -> T {
    T::arbitrary(rng)
}

/// Strategy for the canonical distribution of `T`.
pub struct Any<T>(PhantomData<T>);

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// String strategies are written as regex literals; this supports the
/// subset used in the workspace: literal characters, `[a-z]`-style classes
/// (with ranges and multiple members), and `{m}` / `{m,n}` quantifiers.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_regex(self, rng)
    }
}

fn generate_regex(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a char class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .expect("unclosed char class in pattern")
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    for c in lo..=hi {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed quantifier in pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("quantifier"),
                    n.trim().parse::<usize>().expect("quantifier"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = if min == max {
            min
        } else {
            rand::Rng::gen_range(rng, min..=max)
        };
        for _ in 0..count {
            let idx = rand::Rng::gen_range(rng, 0..alphabet.len());
            out.push(alphabet[idx]);
        }
    }
    out
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.min + 1 >= self.size.max_exclusive {
                self.size.min
            } else {
                rand::Rng::gen_range(rng, self.size.min..self.size.max_exclusive)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each test fn in a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $crate::__proptest_bind!{ __rng, $($params)* }
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Internal: binds one parameter of a `proptest!` test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!{ $rng, $($rest)* }
    };
    ($rng:ident, $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $id:ident : $ty:ty, $($rest:tt)*) => {
        let $id: $ty = $crate::arbitrary(&mut $rng);
        $crate::__proptest_bind!{ $rng, $($rest)* }
    };
    ($rng:ident, $id:ident : $ty:ty) => {
        let $id: $ty = $crate::arbitrary(&mut $rng);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when an assumption does not hold. Must appear at
/// the top level of the test body (it expands to `continue`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_and_vecs(n in 1usize..10, data in collection::vec(any::<u8>(), 0..64)) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(data.len() < 64);
        }

        #[test]
        fn regex_strings(s in "[a-z]{1,8}", flag: bool) {
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let _ = flag;
        }

        #[test]
        fn exact_size_vec(v in collection::vec(-1.0f32..1.0, 6)) {
            prop_assert_eq!(v.len(), 6);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }
}
