//! Offline stand-in for `serde` built on a simple value tree.
//!
//! The workspace cannot reach a crate registry, so this crate provides the
//! subset of serde's API the repository actually uses: the `Serialize` /
//! `Deserialize` traits (here defined over a [`Value`] tree rather than
//! serde's visitor-based data model), derive macros re-exported from
//! `serde_derive`, and the `de::DeserializeOwned` bound. `serde_json` in
//! `vendor/` renders [`Value`] to JSON text and back.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion-ordered key/value pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Short name of the variant, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }

    /// The pairs if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The items if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserializer-side re-exports mirroring `serde::de`.
pub mod de {
    pub use crate::{Deserialize, Error};

    /// Marker bound equivalent to serde's `DeserializeOwned`.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Serializer-side re-exports mirroring `serde::ser`.
pub mod ser {
    pub use crate::{Error, Serialize};
}

// ---------------------------------------------------------------------------
// Helpers used by the generated derive code.
// ---------------------------------------------------------------------------

/// Expects a map, with a type name for the error message.
pub fn expect_map<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
    v.as_map()
        .ok_or_else(|| Error::custom(format!("{ty}: expected object, got {}", v.type_name())))
}

/// Expects a sequence of exactly `n` items.
pub fn expect_seq<'a>(v: &'a Value, n: usize, ty: &str) -> Result<&'a [Value], Error> {
    let s = v
        .as_seq()
        .ok_or_else(|| Error::custom(format!("{ty}: expected array, got {}", v.type_name())))?;
    if s.len() != n {
        return Err(Error::custom(format!(
            "{ty}: expected {n} elements, got {}",
            s.len()
        )));
    }
    Ok(s)
}

/// Looks up a key in an object.
pub fn map_get<'a>(m: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    m.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserializes a struct field; a missing key behaves as `null` so `Option`
/// fields tolerate omission.
pub fn field<T: Deserialize>(m: &[(String, Value)], key: &str, ty: &str) -> Result<T, Error> {
    match map_get(m, key) {
        Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("{ty}.{key}: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::custom(format!("{ty}: missing field `{key}`"))),
    }
}

// ---------------------------------------------------------------------------
// Implementations for primitives and std containers.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom(format!(
                "expected bool, got {}",
                v.type_name()
            ))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    _ => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {}",
                            v.type_name()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range")))?,
                    _ => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            v.type_name()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    _ => Err(Error::custom(format!(
                        "expected number, got {}",
                        v.type_name()
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom(format!(
                "expected string, got {}",
                v.type_name()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom(format!(
                "expected array, got {}",
                v.type_name()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

/// Renders a map key: string keys pass through, any other serialized value
/// keys by its JSON-ish debug form (matches serde_json's restriction to
/// string-like keys for the types this workspace serializes).
fn key_string<K: Serialize>(k: &K) -> String {
    match k.to_value() {
        Value::Str(s) => s,
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        other => panic!("unsupported map key type: {}", other.type_name()),
    }
}

fn key_parse<K: Deserialize>(s: &str) -> Result<K, Error> {
    // Try string first, then integers — covers every key type in use.
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::I64(n)) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot parse map key `{s}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = expect_map(v, "BTreeMap")?;
        m.iter()
            .map(|(k, v)| Ok((key_parse(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k), v.to_value()))
            .collect();
        // Deterministic output regardless of hash order.
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(pairs)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = expect_map(v, "HashMap")?;
        m.iter()
            .map(|(k, v)| Ok((key_parse(k)?, V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = [$($n),+].len();
                let s = expect_seq(v, n, "tuple")?;
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
