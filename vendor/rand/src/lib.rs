//! Offline stand-in for `rand` 0.8.
//!
//! Provides a deterministic xoshiro256** generator behind `rngs::StdRng`,
//! the `Rng`/`RngCore`/`SeedableRng` traits, and `seq::SliceRandom` —
//! exactly the surface this workspace uses. The streams are deterministic
//! given a seed but are not bit-compatible with upstream `rand`; everything
//! in this repository treats seeded randomness as an opaque deterministic
//! source, so only self-consistency matters.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value within a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

// ---------------------------------------------------------------------------
// Standard distributions
// ---------------------------------------------------------------------------

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
range_float!(f32, f64);

// ---------------------------------------------------------------------------
// Sequence helpers
// ---------------------------------------------------------------------------

/// Sequence-related traits (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and random element selection.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&w));
            let f = rng.gen_range(1.5f32..3.0);
            assert!((1.5..3.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
