//! Property-based integration tests on the storage substrate as used by the
//! versioning layer: content addressing, dedup accounting, and commit-graph
//! invariants under randomised operation sequences.

use mlcask::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any sequence of blob writes round-trips and never stores more
    /// physical than logical bytes (modulo manifest overhead).
    #[test]
    fn prop_store_accounting(blobs in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..2048), 1..12
    )) {
        let store = ChunkStore::in_memory_small();
        let mut refs = Vec::new();
        for b in &blobs {
            refs.push(store.put_blob(ObjectKind::Output, b).unwrap().object);
        }
        for (b, r) in blobs.iter().zip(&refs) {
            let back = store.get_blob(r).unwrap();
            prop_assert_eq!(back.as_ref(), &b[..]);
        }
        let total = store.stats().total();
        let logical: u64 = blobs.iter().map(|b| b.len() as u64).sum();
        prop_assert_eq!(total.logical_bytes, logical);
        // Manifest overhead: ≤ 12 + 36 per chunk, chunks ≥ 1 per 64 bytes.
        let max_manifest: u64 = blobs.iter()
            .map(|b| 12 + 36 * (b.len() as u64 / 64 + 2))
            .sum();
        prop_assert!(total.physical_bytes <= logical + max_manifest);
    }

    /// Duplicate writes are always physically free.
    #[test]
    fn prop_duplicates_free(data in proptest::collection::vec(any::<u8>(), 1..4096)) {
        let store = ChunkStore::in_memory_small();
        store.put_blob(ObjectKind::Library, &data).unwrap();
        let before = store.physical_bytes();
        let again = store.put_blob(ObjectKind::Library, &data).unwrap();
        prop_assert_eq!(again.physical_bytes, 0);
        prop_assert_eq!(store.physical_bytes(), before);
    }

    /// Linear commit chains: head sequence equals commit count - 1, every
    /// ancestor is reachable, and LCA of any two commits on the chain is the
    /// earlier one.
    #[test]
    fn prop_linear_chain_lca(n in 2usize..12, a in 0usize..12, b in 0usize..12) {
        let graph = CommitGraph::new();
        let mut commits = vec![graph
            .commit_root("master", Hash256::of(b"0"), "init")
            .unwrap()];
        for i in 1..n {
            commits.push(
                graph
                    .commit("master", Hash256::of(&[i as u8]), "step")
                    .unwrap(),
            );
        }
        let a = a.min(n - 1);
        let b = b.min(n - 1);
        let lca = graph
            .common_ancestor(commits[a].id, commits[b].id)
            .unwrap()
            .unwrap();
        prop_assert_eq!(lca.id, commits[a.min(b)].id);
    }

    /// Branch + merge: the merge commit's ancestor set contains both
    /// branches' commits.
    #[test]
    fn prop_merge_ancestry(head_commits in 1usize..5, dev_commits in 1usize..5) {
        let graph = CommitGraph::new();
        graph.commit_root("master", Hash256::of(b"0"), "init").unwrap();
        graph.branch("master", "dev").unwrap();
        for i in 0..head_commits {
            graph.commit("master", Hash256::of(&[1, i as u8]), "h").unwrap();
        }
        for i in 0..dev_commits {
            graph.commit("dev", Hash256::of(&[2, i as u8]), "d").unwrap();
        }
        let dev_head = graph.head("dev").unwrap();
        let merged = graph
            .commit_merge("master", dev_head.id, Hash256::of(b"m"), "merge")
            .unwrap();
        let ancestors = graph.ancestors(merged.id).unwrap();
        // init + head commits + dev commits + merge commit.
        prop_assert_eq!(ancestors.len(), 1 + head_commits + dev_commits + 1);
        prop_assert!(ancestors.contains(&dev_head.id));
    }

    /// Schema hashing: permuting column order never changes the schema id;
    /// adding a column always does.
    #[test]
    fn prop_schema_hash(cols in proptest::collection::vec("[a-z]{1,8}", 1..6), extra in "[a-z]{1,8}") {
        let mut unique: Vec<String> = cols;
        unique.sort();
        unique.dedup();
        prop_assume!(!unique.contains(&extra));
        let fwd = Schema::Relational { columns: unique.clone() };
        let mut rev = unique.clone();
        rev.reverse();
        let bwd = Schema::Relational { columns: rev };
        prop_assert_eq!(fwd.id(), bwd.id());
        let mut extended = unique;
        extended.push(extra);
        let wider = Schema::Relational { columns: extended };
        prop_assert_ne!(fwd.id(), wider.id());
    }
}

// ---------------------------------------------------------------------------
// Durable (cask) backend properties: the segment codec, torn-tail recovery,
// and compaction — the invariants `tests/crash_recovery.rs` leans on.
// ---------------------------------------------------------------------------

mod cask_props {
    use super::*;
    use mlcask::storage::backend::StorageBackend;
    use mlcask::storage::cask::{frame, scan_frames, FRAME_HEADER};
    use std::collections::{HashMap, HashSet};
    use std::sync::atomic::{AtomicU64, Ordering};

    const SHARDS: usize = 4;

    /// Per-call-unique temp dir (pid alone collides across matrix cells).
    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mlcask-prop-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn inline_opts() -> CaskOptions {
        CaskOptions {
            shards: SHARDS,
            writer_threads: 0,
            sync_every_append: false,
            ..CaskOptions::default()
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Framing any payload sequence scans back to exactly those
        /// payloads with no torn tail.
        #[test]
        fn prop_frame_codec_round_trips(payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..512), 0..12
        )) {
            let mut buf = Vec::new();
            let mut expect = Vec::new();
            for p in &payloads {
                expect.push((buf.len() + FRAME_HEADER, p.len()));
                buf.extend_from_slice(&frame(p));
            }
            let (frames, valid) = scan_frames(&buf);
            prop_assert_eq!(valid, buf.len());
            prop_assert_eq!(&frames, &expect);
            for (&(off, len), p) in frames.iter().zip(&payloads) {
                prop_assert_eq!(&buf[off..off + len], &p[..]);
            }
        }

        /// Cutting a frame sequence anywhere (plus arbitrary trailing junk)
        /// preserves every fully-written frame before the cut, and
        /// truncating to the reported valid prefix is idempotent.
        #[test]
        fn prop_torn_tail_truncation_idempotent(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..256), 1..8
            ),
            cut_frac in 0.0f64..1.0,
            junk in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let mut buf = Vec::new();
            let mut ends = Vec::new();
            for p in &payloads {
                buf.extend_from_slice(&frame(p));
                ends.push(buf.len());
            }
            let cut = (buf.len() as f64 * cut_frac) as usize;
            let mut torn = buf[..cut].to_vec();
            torn.extend_from_slice(&junk);

            let (frames, valid) = scan_frames(&torn);
            // Every frame fully written before the cut survives the tear.
            let intact = ends.iter().filter(|e| **e <= cut).count();
            prop_assert!(frames.len() >= intact);
            for (i, &(off, len)) in frames.iter().take(intact).enumerate() {
                prop_assert_eq!(&torn[off..off + len], &payloads[i][..]);
            }
            // Truncation is idempotent: rescanning the valid prefix keeps
            // everything.
            let (again, valid2) = scan_frames(&torn[..valid]);
            prop_assert_eq!(valid2, valid);
            prop_assert_eq!(again, frames);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Tearing the tail of one shard file loses at most that shard's
        /// trailing records: every surviving key round-trips bit-exact,
        /// keys hashed to other shards all survive, and a second reopen
        /// changes nothing (truncation is idempotent on real files).
        #[test]
        fn prop_torn_shard_tail_recovery(
            blobs in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..256), 1..8
            ),
            shard_sel in any::<u8>(),
            cut in 1usize..96,
        ) {
            let dir = temp_dir("torn");
            {
                let be = CaskBackend::open_with(&dir, inline_opts()).unwrap();
                for b in &blobs {
                    be.put(Hash256::of(b), b).unwrap();
                }
                be.flush().unwrap();
            }
            let shard = (shard_sel as usize) % SHARDS;
            let path = dir.join(format!("shard-{shard:03}.log"));
            let len = std::fs::metadata(&path).unwrap().len();
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(len.saturating_sub(cut as u64)).unwrap();
            f.sync_all().unwrap();
            drop(f);

            let be = CaskBackend::open(&dir).unwrap();
            let unique: HashMap<Hash256, &Vec<u8>> =
                blobs.iter().map(|b| (Hash256::of(b), b)).collect();
            let mut lost = 0usize;
            for (k, v) in &unique {
                if be.contains(*k) {
                    prop_assert_eq!(be.get(*k).unwrap().as_ref(), &v[..]);
                } else {
                    prop_assert_eq!(
                        (k.0[0] as usize) % SHARDS,
                        shard,
                        "a key outside the torn shard vanished"
                    );
                    lost += 1;
                }
            }
            let survivors = unique.len() - lost;
            prop_assert_eq!(be.len(), survivors);
            drop(be);

            let be = CaskBackend::open(&dir).unwrap();
            prop_assert_eq!(be.len(), survivors);
            for (k, v) in &unique {
                if be.contains(*k) {
                    prop_assert_eq!(be.get(*k).unwrap().as_ref(), &v[..]);
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }

        /// Compaction after arbitrary removals keeps exactly the live set:
        /// every survivor round-trips (also after a reopen), dead space
        /// drops to zero, and live bytes are unchanged.
        #[test]
        fn prop_compaction_preserves_liveness(
            blobs in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..512), 1..10
            ),
            kill_mask in proptest::collection::vec(any::<bool>(), 10),
        ) {
            let dir = temp_dir("compact");
            let be = CaskBackend::open_with(&dir, inline_opts()).unwrap();
            let mut live: HashMap<Hash256, Vec<u8>> = HashMap::new();
            for b in &blobs {
                be.put(Hash256::of(b), b).unwrap();
                live.insert(Hash256::of(b), b.clone());
            }
            let mut removed = HashSet::new();
            for (i, b) in blobs.iter().enumerate() {
                if kill_mask[i % kill_mask.len()] {
                    let k = Hash256::of(b);
                    if removed.insert(k) {
                        be.remove(k).unwrap();
                        live.remove(&k);
                    }
                }
            }
            let live_bytes = be.physical_bytes();
            be.compact().unwrap();
            prop_assert_eq!(be.dead_bytes(), 0);
            prop_assert_eq!(be.physical_bytes(), live_bytes);
            prop_assert_eq!(be.len(), live.len());
            for (k, v) in &live {
                prop_assert_eq!(be.get(*k).unwrap().as_ref(), &v[..]);
            }
            drop(be);

            let be = CaskBackend::open(&dir).unwrap();
            prop_assert_eq!(be.len(), live.len());
            prop_assert_eq!(be.physical_bytes(), live_bytes);
            for (k, v) in &live {
                prop_assert_eq!(be.get(*k).unwrap().as_ref(), &v[..]);
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

// ---------------------------------------------------------------------------
// Blob-cache properties: the cache is a pure read-through tier keyed by
// content hash — it may change *where* bytes come from, never *what* they
// are. Presence-after-remove is its only staleness hazard, so these
// properties hammer exactly that seam: randomized interleavings against an
// uncached twin, removal after warming, and fault-injected crashes.
// ---------------------------------------------------------------------------

mod cache_props {
    use super::*;
    use mlcask::storage::cask::CaskBackend as Cask;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const SHARDS: usize = 4;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mlcask-cacheprop-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn inline_opts() -> CaskOptions {
        CaskOptions {
            shards: SHARDS,
            writer_threads: 0,
            sync_every_append: false,
            ..CaskOptions::default()
        }
    }

    /// Deliberately tiny cache so randomized workloads actually evict.
    fn small_cache() -> CacheOptions {
        CacheOptions {
            capacity_bytes: 16 * 1024,
            shards: 2,
        }
    }

    fn cask_store(dir: &std::path::Path, cache: Option<CacheOptions>) -> ChunkStore {
        let be = Arc::new(Cask::open_with(dir, inline_opts()).unwrap());
        ChunkStore::with_cache(be, ChunkParams::SMALL, StorageCostModel::FORKBASE, cache)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The same randomized put/get/sweep/compact interleaving on a
        /// cached and an uncached cask store yields byte-identical reads,
        /// identical read failures, and identical storage statistics.
        #[test]
        fn prop_cache_on_off_interleaving_identity(
            sels in proptest::collection::vec(any::<u8>(), 1..20),
            datas in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..512), 20
            ),
        ) {
            let d_off = temp_dir("ixl-off");
            let d_on = temp_dir("ixl-on");
            let off = cask_store(&d_off, None);
            let on = cask_store(&d_on, Some(small_cache()));
            let mut refs: Vec<ObjectRef> = Vec::new();
            let mut live: Vec<ObjectRef> = Vec::new();
            for (sel, data) in sels.iter().zip(&datas) {
                match sel % 4 {
                    0 | 1 => {
                        let a = off.put_blob(ObjectKind::Output, data).unwrap();
                        let b = on.put_blob(ObjectKind::Output, data).unwrap();
                        prop_assert_eq!(a.object, b.object);
                        refs.push(a.object);
                        live.push(a.object);
                    }
                    2 => {
                        // Read any ref ever seen — live or already swept.
                        if refs.is_empty() {
                            continue;
                        }
                        let r = &refs[*sel as usize % refs.len()];
                        match (off.get_blob(r), on.get_blob(r)) {
                            (Ok(x), Ok(y)) => prop_assert_eq!(x.as_ref(), y.as_ref()),
                            (Err(_), Err(_)) => {}
                            (a, b) => prop_assert!(
                                false,
                                "cache changed get outcome: off_ok={} on_ok={}",
                                a.is_ok(),
                                b.is_ok()
                            ),
                        }
                    }
                    _ => {
                        // Sweep one blob out of the live set (removal +
                        // compaction on both stores).
                        if live.is_empty() {
                            continue;
                        }
                        live.remove(*sel as usize % live.len());
                        let roots: Vec<Hash256> = live.iter().map(|r| r.id).collect();
                        let ra = off.sweep_orphans(roots.clone()).unwrap();
                        let rb = on.sweep_orphans(roots).unwrap();
                        prop_assert_eq!(ra.removed_objects, rb.removed_objects);
                        prop_assert_eq!(ra.removed_bytes, rb.removed_bytes);
                    }
                }
            }
            // Final sweep of the read surface: every live blob byte-exact,
            // and the determinism-visible statistics agree.
            for r in &live {
                let a = off.get_blob(r).unwrap();
                let b = on.get_blob(r).unwrap();
                prop_assert_eq!(a.as_ref(), b.as_ref());
            }
            prop_assert_eq!(
                serde_json::to_string(&off.stats()).unwrap(),
                serde_json::to_string(&on.stats()).unwrap()
            );
            drop(off);
            drop(on);
            let _ = std::fs::remove_dir_all(&d_off);
            let _ = std::fs::remove_dir_all(&d_on);
        }

        /// Warm the cache, sweep a blob away, re-read: the removed bytes
        /// must never be served from memory, survivors stay byte-exact,
        /// and re-archiving the same content reads back correctly.
        #[test]
        fn prop_no_stale_bytes_after_remove(
            raw in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..256), 2..8
            ),
            victim_sel in any::<u8>(),
        ) {
            // Distinct contents only: sweeping a duplicate would keep it
            // live through its twin's root.
            let mut seen = HashSet::new();
            let blobs: Vec<&Vec<u8>> =
                raw.iter().filter(|b| seen.insert(Hash256::of(b))).collect();
            prop_assume!(blobs.len() >= 2);

            let dir = temp_dir("stale");
            let store = cask_store(&dir, Some(small_cache()));
            let refs: Vec<ObjectRef> = blobs
                .iter()
                .map(|b| store.put_blob(ObjectKind::Output, b).unwrap().object)
                .collect();
            // Warm every manifest and chunk into the cache.
            for (r, b) in refs.iter().zip(&blobs) {
                prop_assert_eq!(store.get_blob(r).unwrap().as_ref(), &b[..]);
            }
            let victim = victim_sel as usize % refs.len();
            let roots: Vec<Hash256> = refs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != victim)
                .map(|(_, r)| r.id)
                .collect();
            store.sweep_orphans(roots).unwrap();

            prop_assert!(
                store.get_blob(&refs[victim]).is_err(),
                "removed blob served from the warm cache"
            );
            for (i, (r, b)) in refs.iter().zip(&blobs).enumerate() {
                if i != victim {
                    prop_assert_eq!(store.get_blob(r).unwrap().as_ref(), &b[..]);
                }
            }
            // Re-archiving the identical content must serve fresh, correct
            // bytes — not a ghost of the invalidated entry.
            let again = store
                .put_blob(ObjectKind::Output, blobs[victim])
                .unwrap()
                .object;
            prop_assert_eq!(
                store.get_blob(&again).unwrap().as_ref(),
                &blobs[victim][..]
            );
            drop(store);
            let _ = std::fs::remove_dir_all(&dir);
        }

        /// A seeded mid-run crash under a warm cache, then a real reopen: a
        /// freshly-cached store and an uncached store over the recovered
        /// backend agree on every object's survival and bytes — including
        /// the cache's hit path (second read).
        #[test]
        fn prop_crash_reopen_cache_coherent(
            blobs in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..256), 2..8
            ),
            seed in any::<u64>(),
        ) {
            let dir = temp_dir("crash");
            let mut written: Vec<(ObjectRef, Vec<u8>)> = Vec::new();
            {
                let be = Arc::new(
                    Cask::open_with(
                        &dir,
                        inline_opts().with_fault(FaultPlan::seeded(seed, 24)),
                    )
                    .unwrap(),
                );
                let store = ChunkStore::with_cache(
                    be,
                    ChunkParams::SMALL,
                    StorageCostModel::FORKBASE,
                    Some(small_cache()),
                );
                for b in &blobs {
                    let Ok(out) = store.put_blob(ObjectKind::Output, b) else {
                        break; // the injected crash: backend is down
                    };
                    written.push((out.object, b.clone()));
                    // Warm read — may also hit the crash; must not panic.
                    let _ = store.get_blob(&out.object);
                }
            }

            // Real reopen: torn-tail truncation runs. Two views over the
            // same recovered backend, cache on and off.
            let be = Arc::new(Cask::open(&dir).unwrap());
            let cached = ChunkStore::with_cache(
                be.clone(),
                ChunkParams::SMALL,
                StorageCostModel::FORKBASE,
                Some(small_cache()),
            );
            let uncached = ChunkStore::with_cache(
                be,
                ChunkParams::SMALL,
                StorageCostModel::FORKBASE,
                None,
            );
            for (r, b) in &written {
                let plain = uncached.get_blob(r);
                let first = cached.get_blob(r);
                let second = cached.get_blob(r); // hit path
                match (plain, first, second) {
                    (Ok(x), Ok(y), Ok(z)) => {
                        prop_assert_eq!(x.as_ref(), &b[..]);
                        prop_assert_eq!(y.as_ref(), &b[..]);
                        prop_assert_eq!(z.as_ref(), &b[..]);
                    }
                    (Err(_), Err(_), Err(_)) => {}
                    (p, f, s) => prop_assert!(
                        false,
                        "cache changed survival outcome: plain={} first={} second={}",
                        p.is_ok(),
                        f.is_ok(),
                        s.is_ok()
                    ),
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Artifacts written through the executor can always be recovered from the
/// store and decode to the identical artifact.
#[test]
fn executor_outputs_recoverable() {
    let workload = by_name("autolearn").unwrap();
    let (_registry, sys) = build_system(&workload).unwrap();
    let clock = ClockLedger::new();
    let res = sys
        .commit_pipeline("master", &workload.initial, "init", &clock)
        .unwrap();
    for stage in &res.report.stages {
        let bytes = sys.store().get_blob(&stage.output).unwrap();
        let artifact = mlcask::pipeline::artifact::Artifact::from_bytes(&bytes).unwrap();
        assert_eq!(artifact.content_id(), stage.artifact_id);
        assert_eq!(bytes.len() as u64, stage.artifact_bytes);
    }
}
