//! Property-based integration tests on the storage substrate as used by the
//! versioning layer: content addressing, dedup accounting, and commit-graph
//! invariants under randomised operation sequences.

use mlcask::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any sequence of blob writes round-trips and never stores more
    /// physical than logical bytes (modulo manifest overhead).
    #[test]
    fn prop_store_accounting(blobs in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..2048), 1..12
    )) {
        let store = ChunkStore::in_memory_small();
        let mut refs = Vec::new();
        for b in &blobs {
            refs.push(store.put_blob(ObjectKind::Output, b).unwrap().object);
        }
        for (b, r) in blobs.iter().zip(&refs) {
            let back = store.get_blob(r).unwrap();
            prop_assert_eq!(back.as_ref(), &b[..]);
        }
        let total = store.stats().total();
        let logical: u64 = blobs.iter().map(|b| b.len() as u64).sum();
        prop_assert_eq!(total.logical_bytes, logical);
        // Manifest overhead: ≤ 12 + 36 per chunk, chunks ≥ 1 per 64 bytes.
        let max_manifest: u64 = blobs.iter()
            .map(|b| 12 + 36 * (b.len() as u64 / 64 + 2))
            .sum();
        prop_assert!(total.physical_bytes <= logical + max_manifest);
    }

    /// Duplicate writes are always physically free.
    #[test]
    fn prop_duplicates_free(data in proptest::collection::vec(any::<u8>(), 1..4096)) {
        let store = ChunkStore::in_memory_small();
        store.put_blob(ObjectKind::Library, &data).unwrap();
        let before = store.physical_bytes();
        let again = store.put_blob(ObjectKind::Library, &data).unwrap();
        prop_assert_eq!(again.physical_bytes, 0);
        prop_assert_eq!(store.physical_bytes(), before);
    }

    /// Linear commit chains: head sequence equals commit count - 1, every
    /// ancestor is reachable, and LCA of any two commits on the chain is the
    /// earlier one.
    #[test]
    fn prop_linear_chain_lca(n in 2usize..12, a in 0usize..12, b in 0usize..12) {
        let graph = CommitGraph::new();
        let mut commits = vec![graph
            .commit_root("master", Hash256::of(b"0"), "init")
            .unwrap()];
        for i in 1..n {
            commits.push(
                graph
                    .commit("master", Hash256::of(&[i as u8]), "step")
                    .unwrap(),
            );
        }
        let a = a.min(n - 1);
        let b = b.min(n - 1);
        let lca = graph
            .common_ancestor(commits[a].id, commits[b].id)
            .unwrap()
            .unwrap();
        prop_assert_eq!(lca.id, commits[a.min(b)].id);
    }

    /// Branch + merge: the merge commit's ancestor set contains both
    /// branches' commits.
    #[test]
    fn prop_merge_ancestry(head_commits in 1usize..5, dev_commits in 1usize..5) {
        let graph = CommitGraph::new();
        graph.commit_root("master", Hash256::of(b"0"), "init").unwrap();
        graph.branch("master", "dev").unwrap();
        for i in 0..head_commits {
            graph.commit("master", Hash256::of(&[1, i as u8]), "h").unwrap();
        }
        for i in 0..dev_commits {
            graph.commit("dev", Hash256::of(&[2, i as u8]), "d").unwrap();
        }
        let dev_head = graph.head("dev").unwrap();
        let merged = graph
            .commit_merge("master", dev_head.id, Hash256::of(b"m"), "merge")
            .unwrap();
        let ancestors = graph.ancestors(merged.id).unwrap();
        // init + head commits + dev commits + merge commit.
        prop_assert_eq!(ancestors.len(), 1 + head_commits + dev_commits + 1);
        prop_assert!(ancestors.contains(&dev_head.id));
    }

    /// Schema hashing: permuting column order never changes the schema id;
    /// adding a column always does.
    #[test]
    fn prop_schema_hash(cols in proptest::collection::vec("[a-z]{1,8}", 1..6), extra in "[a-z]{1,8}") {
        let mut unique: Vec<String> = cols;
        unique.sort();
        unique.dedup();
        prop_assume!(!unique.contains(&extra));
        let fwd = Schema::Relational { columns: unique.clone() };
        let mut rev = unique.clone();
        rev.reverse();
        let bwd = Schema::Relational { columns: rev };
        prop_assert_eq!(fwd.id(), bwd.id());
        let mut extended = unique;
        extended.push(extra);
        let wider = Schema::Relational { columns: extended };
        prop_assert_ne!(fwd.id(), wider.id());
    }
}

/// Artifacts written through the executor can always be recovered from the
/// store and decode to the identical artifact.
#[test]
fn executor_outputs_recoverable() {
    let workload = by_name("autolearn").unwrap();
    let (_registry, sys) = build_system(&workload).unwrap();
    let clock = ClockLedger::new();
    let res = sys
        .commit_pipeline("master", &workload.initial, "init", &clock)
        .unwrap();
    for stage in &res.report.stages {
        let bytes = sys.store().get_blob(&stage.output).unwrap();
        let artifact = mlcask::pipeline::artifact::Artifact::from_bytes(&bytes).unwrap();
        assert_eq!(artifact.content_id(), stage.artifact_id);
        assert_eq!(bytes.len() as u64, stage.artifact_bytes);
    }
}
