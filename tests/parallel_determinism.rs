//! Determinism of the parallel candidate-evaluation engines.
//!
//! `MergeEngine::search` and `PrioritizedSearcher::run_trials` evaluate
//! candidates in two phases: parallel traced execution, then a sequential
//! accounting replay in canonical order (see `mlcask_pipeline::replay`).
//! These tests pin the resulting guarantee: for every strategy and worker
//! count, the report — candidate order, scores, virtual end-times, storage
//! accounting, ledger totals, and history side-state — is **byte-identical**
//! (compared via JSON serialization) to the sequential engine's.

use mlcask_core::history::HistoryIndex;
use mlcask_core::merge::{MergeEngine, MergeSearchReport, MergeStrategy};
use mlcask_core::prioritized::{PrioritizedSearcher, SearchMethod};
use mlcask_core::registry::ComponentRegistry;
use mlcask_core::search_space::SearchSpaces;
use mlcask_core::testkit::{toy_model, toy_scaler, toy_slots, toy_source};
use mlcask_pipeline::clock::ClockLedger;
use mlcask_pipeline::component::ComponentKey;
use mlcask_pipeline::dag::PipelineDag;
use mlcask_pipeline::executor::{ExecOptions, Executor};
use mlcask_pipeline::parallel::ParallelismPolicy;
use mlcask_pipeline::semver::SemVer;
use mlcask_storage::store::ChunkStore;
use std::sync::Arc;

/// A Fig.-3-like scenario: 1 source × 3 scalers × 5 models, with schema
/// incompatibilities so some candidates fail (exercising the failure path).
fn scenario() -> (ComponentRegistry, Arc<PipelineDag>, SearchSpaces) {
    let store = Arc::new(ChunkStore::in_memory_small());
    let reg = ComponentRegistry::with_exe_size(store, 2048);
    let src = toy_source(SemVer::master(0, 0), 4, 16);
    let scalers = [
        toy_scaler(SemVer::master(0, 0), 4, 4, 1.0),
        toy_scaler(SemVer::master(0, 1), 4, 4, 2.0),
        toy_scaler(SemVer::master(1, 0), 4, 6, 3.0), // schema change
    ];
    let models = [
        toy_model(SemVer::master(0, 0), 4, 0.50),
        toy_model(SemVer::master(0, 1), 4, 0.60),
        toy_model(SemVer::master(0, 2), 6, 0.70),
        toy_model(SemVer::master(0, 3), 6, 0.80),
        toy_model(SemVer::master(0, 4), 4, 0.90),
    ];
    let mut spaces = SearchSpaces {
        slot_names: toy_slots().iter().map(|s| s.to_string()).collect(),
        per_slot: vec![vec![], vec![], vec![]],
    };
    reg.register(src.clone()).unwrap();
    spaces.per_slot[0].push(src.key());
    for c in &scalers {
        reg.register(c.clone()).unwrap();
        spaces.per_slot[1].push(c.key());
    }
    for c in &models {
        reg.register(c.clone()).unwrap();
        spaces.per_slot[2].push(c.key());
    }
    let dag = Arc::new(PipelineDag::chain(&toy_slots()).unwrap());
    (reg, dag, spaces)
}

/// Runs a fresh merge search under `policy` and returns every observable:
/// the full report plus ledger totals, store stats, and history size.
fn run_search(
    strategy: MergeStrategy,
    policy: ParallelismPolicy,
    pretrain: bool,
) -> (MergeSearchReport, String) {
    let (reg, dag, spaces) = scenario();
    let history = HistoryIndex::new();
    if pretrain {
        // Checkpoint one pipeline up front so the Full strategy exercises
        // pre-existing history reuse.
        let keys = vec![
            spaces.per_slot[0][0].clone(),
            spaces.per_slot[1][0].clone(),
            spaces.per_slot[2][0].clone(),
        ];
        let engine = MergeEngine::new(&reg, reg.store(), dag.clone());
        let bound = engine.bind(&keys).unwrap();
        let warm = ClockLedger::new();
        Executor::new(reg.store())
            .run(&bound, &warm, Some(&history), ExecOptions::MLCASK)
            .unwrap();
    }
    let engine = MergeEngine::new(&reg, reg.store(), dag).with_parallelism(policy);
    let ledger = ClockLedger::new();
    let report = engine.search(&spaces, &history, strategy, &ledger).unwrap();
    let observables = format!(
        "report={} ledger={} stats={} history_len={}",
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&ledger.snapshot()).unwrap(),
        serde_json::to_string(&reg.store().stats()).unwrap(),
        history.len(),
    );
    (report, observables)
}

#[test]
fn merge_search_parallel_report_identical_to_sequential() {
    for strategy in [
        MergeStrategy::Full,
        MergeStrategy::WithoutPr,
        MergeStrategy::WithoutPcPr,
        MergeStrategy::Naive,
    ] {
        let (_, sequential) = run_search(strategy, ParallelismPolicy::Sequential, false);
        for workers in [2, 4, 8] {
            let (_, parallel) = run_search(strategy, ParallelismPolicy::Parallel(workers), false);
            assert_eq!(
                sequential, parallel,
                "{strategy:?} with {workers} workers diverged from sequential"
            );
        }
    }
}

#[test]
fn merge_search_with_prior_history_identical() {
    for strategy in [MergeStrategy::Full, MergeStrategy::Naive] {
        let (_, sequential) = run_search(strategy, ParallelismPolicy::Sequential, true);
        let (_, parallel) = run_search(strategy, ParallelismPolicy::Parallel(4), true);
        assert_eq!(
            sequential, parallel,
            "{strategy:?} with warm history diverged"
        );
    }
}

#[test]
fn parallel_candidate_end_times_are_monotone() {
    let (report, _) = run_search(MergeStrategy::Full, ParallelismPolicy::Parallel(4), false);
    assert!(!report.candidates.is_empty());
    for w in report.candidates.windows(2) {
        assert!(w[1].end_time_ns >= w[0].end_time_ns);
    }
    assert_eq!(
        report.clock.total_ns(),
        report.candidates.last().unwrap().end_time_ns,
        "merge clock ends at the last candidate's end time"
    );
}

fn initial_scores(spaces: &SearchSpaces) -> Vec<(Vec<ComponentKey>, f64)> {
    vec![
        (
            vec![
                spaces.per_slot[0][0].clone(),
                spaces.per_slot[1][1].clone(),
                spaces.per_slot[2][4].clone(),
            ],
            0.9,
        ),
        (
            vec![
                spaces.per_slot[0][0].clone(),
                spaces.per_slot[1][0].clone(),
                spaces.per_slot[2][0].clone(),
            ],
            0.4,
        ),
    ]
}

fn run_trials(policy: ParallelismPolicy, method: SearchMethod) -> String {
    let (reg, dag, spaces) = scenario();
    let history = HistoryIndex::new();
    let searcher = PrioritizedSearcher::new(&reg, dag).with_parallelism(policy);
    let stats = searcher
        .run_trials(&spaces, &history, &initial_scores(&spaces), method, 12, 42)
        .unwrap();
    format!(
        "stats={} store={}",
        serde_json::to_string(&stats).unwrap(),
        serde_json::to_string(&reg.store().stats()).unwrap(),
    )
}

#[test]
fn prioritized_trials_parallel_identical_to_sequential() {
    for method in [SearchMethod::Prioritized, SearchMethod::Random] {
        let sequential = run_trials(ParallelismPolicy::Sequential, method);
        for workers in [2, 4] {
            let parallel = run_trials(ParallelismPolicy::Parallel(workers), method);
            assert_eq!(
                sequential, parallel,
                "{method:?} trials with {workers} workers diverged"
            );
        }
    }
}

#[test]
fn auto_policy_matches_sequential_too() {
    let (_, sequential) = run_search(MergeStrategy::Full, ParallelismPolicy::Sequential, false);
    let (_, auto) = run_search(MergeStrategy::Full, ParallelismPolicy::auto(), false);
    assert_eq!(sequential, auto);
}
