//! Determinism of the parallel candidate-evaluation engines.
//!
//! `MergeEngine::search` and `PrioritizedSearcher::run_trials` evaluate
//! candidates in two phases: parallel traced execution, then a sequential
//! accounting replay in canonical order (see `mlcask_pipeline::replay`).
//! These tests pin the resulting guarantee: for every strategy and worker
//! count, the report — candidate order, scores, virtual end-times, storage
//! accounting, ledger totals, and history side-state — is **byte-identical**
//! (compared via JSON serialization) to the sequential engine's.

use mlcask_core::history::HistoryIndex;
use mlcask_core::merge::{MergeEngine, MergeSearchReport, MergeStrategy};
use mlcask_core::prioritized::{PrioritizedSearcher, SearchMethod};
use mlcask_core::registry::ComponentRegistry;
use mlcask_core::search_space::SearchSpaces;
use mlcask_core::testkit::{toy_model, toy_scaler, toy_slots, toy_source};
use mlcask_pipeline::clock::ClockLedger;
use mlcask_pipeline::component::ComponentKey;
use mlcask_pipeline::dag::PipelineDag;
use mlcask_pipeline::executor::{ExecOptions, Executor};
use mlcask_pipeline::parallel::ParallelismPolicy;
use mlcask_pipeline::semver::SemVer;
use mlcask_storage::store::ChunkStore;
use std::sync::Arc;

/// A Fig.-3-like scenario: 1 source × 3 scalers × 5 models, with schema
/// incompatibilities so some candidates fail (exercising the failure path).
fn scenario() -> (ComponentRegistry, Arc<PipelineDag>, SearchSpaces) {
    let store = Arc::new(ChunkStore::in_memory_small());
    let reg = ComponentRegistry::with_exe_size(store, 2048);
    let src = toy_source(SemVer::master(0, 0), 4, 16);
    let scalers = [
        toy_scaler(SemVer::master(0, 0), 4, 4, 1.0),
        toy_scaler(SemVer::master(0, 1), 4, 4, 2.0),
        toy_scaler(SemVer::master(1, 0), 4, 6, 3.0), // schema change
    ];
    let models = [
        toy_model(SemVer::master(0, 0), 4, 0.50),
        toy_model(SemVer::master(0, 1), 4, 0.60),
        toy_model(SemVer::master(0, 2), 6, 0.70),
        toy_model(SemVer::master(0, 3), 6, 0.80),
        toy_model(SemVer::master(0, 4), 4, 0.90),
    ];
    let mut spaces = SearchSpaces {
        slot_names: toy_slots().iter().map(|s| s.to_string()).collect(),
        per_slot: vec![vec![], vec![], vec![]],
    };
    reg.register(src.clone()).unwrap();
    spaces.per_slot[0].push(src.key());
    for c in &scalers {
        reg.register(c.clone()).unwrap();
        spaces.per_slot[1].push(c.key());
    }
    for c in &models {
        reg.register(c.clone()).unwrap();
        spaces.per_slot[2].push(c.key());
    }
    let dag = Arc::new(PipelineDag::chain(&toy_slots()).unwrap());
    (reg, dag, spaces)
}

/// Runs a fresh merge search under `policy` and returns every observable:
/// the full report plus ledger totals, store stats, and history size.
fn run_search(
    strategy: MergeStrategy,
    policy: ParallelismPolicy,
    pretrain: bool,
) -> (MergeSearchReport, String) {
    let (reg, dag, spaces) = scenario();
    let history = HistoryIndex::new();
    if pretrain {
        // Checkpoint one pipeline up front so the Full strategy exercises
        // pre-existing history reuse.
        let keys = vec![
            spaces.per_slot[0][0].clone(),
            spaces.per_slot[1][0].clone(),
            spaces.per_slot[2][0].clone(),
        ];
        let engine = MergeEngine::new(&reg, reg.store(), dag.clone());
        let bound = engine.bind(&keys).unwrap();
        let warm = ClockLedger::new();
        Executor::new(reg.store())
            .run(&bound, &warm, Some(&history), ExecOptions::MLCASK)
            .unwrap();
    }
    let engine = MergeEngine::new(&reg, reg.store(), dag).with_parallelism(policy);
    let ledger = ClockLedger::new();
    let report = engine.search(&spaces, &history, strategy, &ledger).unwrap();
    let observables = format!(
        "report={} ledger={} stats={} history_len={}",
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&ledger.snapshot()).unwrap(),
        serde_json::to_string(&reg.store().stats()).unwrap(),
        history.len(),
    );
    (report, observables)
}

#[test]
fn merge_search_parallel_report_identical_to_sequential() {
    for strategy in [
        MergeStrategy::Full,
        MergeStrategy::WithoutPr,
        MergeStrategy::WithoutPcPr,
        MergeStrategy::Naive,
    ] {
        let (_, sequential) = run_search(strategy, ParallelismPolicy::Sequential, false);
        for workers in [2, 4, 8] {
            let (_, parallel) = run_search(strategy, ParallelismPolicy::Parallel(workers), false);
            assert_eq!(
                sequential, parallel,
                "{strategy:?} with {workers} workers diverged from sequential"
            );
        }
    }
}

#[test]
fn merge_search_with_prior_history_identical() {
    for strategy in [MergeStrategy::Full, MergeStrategy::Naive] {
        let (_, sequential) = run_search(strategy, ParallelismPolicy::Sequential, true);
        let (_, parallel) = run_search(strategy, ParallelismPolicy::Parallel(4), true);
        assert_eq!(
            sequential, parallel,
            "{strategy:?} with warm history diverged"
        );
    }
}

#[test]
fn parallel_candidate_end_times_are_monotone() {
    let (report, _) = run_search(MergeStrategy::Full, ParallelismPolicy::Parallel(4), false);
    assert!(!report.candidates.is_empty());
    for w in report.candidates.windows(2) {
        assert!(w[1].end_time_ns >= w[0].end_time_ns);
    }
    assert_eq!(
        report.clock.total_ns(),
        report.candidates.last().unwrap().end_time_ns,
        "merge clock ends at the last candidate's end time"
    );
}

fn initial_scores(spaces: &SearchSpaces) -> Vec<(Vec<ComponentKey>, f64)> {
    vec![
        (
            vec![
                spaces.per_slot[0][0].clone(),
                spaces.per_slot[1][1].clone(),
                spaces.per_slot[2][4].clone(),
            ],
            0.9,
        ),
        (
            vec![
                spaces.per_slot[0][0].clone(),
                spaces.per_slot[1][0].clone(),
                spaces.per_slot[2][0].clone(),
            ],
            0.4,
        ),
    ]
}

fn run_trials(policy: ParallelismPolicy, method: SearchMethod) -> String {
    let (reg, dag, spaces) = scenario();
    let history = HistoryIndex::new();
    let searcher = PrioritizedSearcher::new(&reg, dag).with_parallelism(policy);
    let stats = searcher
        .run_trials(&spaces, &history, &initial_scores(&spaces), method, 12, 42)
        .unwrap();
    format!(
        "stats={} store={}",
        serde_json::to_string(&stats).unwrap(),
        serde_json::to_string(&reg.store().stats()).unwrap(),
    )
}

#[test]
fn prioritized_trials_parallel_identical_to_sequential() {
    for method in [SearchMethod::Prioritized, SearchMethod::Random] {
        let sequential = run_trials(ParallelismPolicy::Sequential, method);
        for workers in [2, 4] {
            let parallel = run_trials(ParallelismPolicy::Parallel(workers), method);
            assert_eq!(
                sequential, parallel,
                "{method:?} trials with {workers} workers diverged"
            );
        }
    }
}

#[test]
fn auto_policy_matches_sequential_too() {
    let (_, sequential) = run_search(MergeStrategy::Full, ParallelismPolicy::Sequential, false);
    let (_, auto) = run_search(MergeStrategy::Full, ParallelismPolicy::auto(), false);
    assert_eq!(sequential, auto);
}

// ---------------------------------------------------------------------------
// Non-chain DAGs: the wavefront executor must be byte-identical to sequential
// execution for every worker count, including interleaved traced writes from
// sibling branches and mid-DAG failures.
// ---------------------------------------------------------------------------

mod dag {
    use super::*;
    use mlcask_ml::metrics::{MetricKind, Score};
    use mlcask_ml::tensor::Matrix;
    use mlcask_pipeline::artifact::{Artifact, ArtifactData, Features, ModelArtifact};
    use mlcask_pipeline::component::{Component, ComponentHandle, StageKind};
    use mlcask_pipeline::dag::BoundPipeline;
    use mlcask_pipeline::errors::Result as PipelineResult;
    use mlcask_pipeline::executor::MemoryCache;
    use mlcask_pipeline::schema::{Schema, SchemaId};

    const DIM: usize = 6;
    const ROWS: usize = 64;

    fn feature_schema(dim: usize) -> SchemaId {
        Schema::FeatureMatrix { dim, n_classes: 2 }.id()
    }

    struct Src;

    impl Component for Src {
        fn name(&self) -> &str {
            "src"
        }
        fn version(&self) -> SemVer {
            SemVer::master(0, 0)
        }
        fn stage(&self) -> StageKind {
            StageKind::Ingest
        }
        fn input_schema(&self) -> Option<SchemaId> {
            None
        }
        fn output_schema(&self) -> SchemaId {
            feature_schema(DIM)
        }
        fn run(&self, _inputs: &[Artifact]) -> PipelineResult<Artifact> {
            let x = Matrix::from_fn(ROWS, DIM, |r, c| ((r * 13 + c * 5) % 11) as f32 / 11.0);
            let y = (0..ROWS).map(|r| r % 2).collect();
            Ok(Artifact::new(
                ArtifactData::Features(Features { x, y, n_classes: 2 }),
                self.output_schema(),
            ))
        }
        fn work_units(&self, _inputs: &[Artifact]) -> u64 {
            (ROWS * DIM) as u64
        }
    }

    /// Sibling branch. Every `Twin` with the same `factor` produces a
    /// byte-identical artifact, so parallel siblings race their traced
    /// writes on exactly the same chunks — the dedup-attribution case the
    /// replay protocol must keep canonical.
    struct Twin {
        name: &'static str,
        factor: f32,
    }

    impl Component for Twin {
        fn name(&self) -> &str {
            self.name
        }
        fn version(&self) -> SemVer {
            SemVer::master(0, 0)
        }
        fn stage(&self) -> StageKind {
            StageKind::PreProcess
        }
        fn input_schema(&self) -> Option<SchemaId> {
            Some(feature_schema(DIM))
        }
        fn output_schema(&self) -> SchemaId {
            feature_schema(DIM)
        }
        fn run(&self, inputs: &[Artifact]) -> PipelineResult<Artifact> {
            self.check_compatibility(inputs)?;
            let ArtifactData::Features(f) = &inputs[0].data else {
                unreachable!("schema-checked input");
            };
            let x = Matrix::from_fn(f.x.rows(), DIM, |r, c| f.x.get(r, c) * self.factor);
            Ok(Artifact::new(
                ArtifactData::Features(Features {
                    x,
                    y: f.y.clone(),
                    n_classes: f.n_classes,
                }),
                self.output_schema(),
            ))
        }
        fn work_units(&self, inputs: &[Artifact]) -> u64 {
            inputs.first().map(|a| a.byte_len()).unwrap_or(1)
        }
    }

    /// Fan-in joining all branch outputs; `dim_out` lets tests inject a
    /// schema change for mid-DAG failure coverage.
    struct Join {
        dim_out: usize,
    }

    impl Component for Join {
        fn name(&self) -> &str {
            "join"
        }
        fn version(&self) -> SemVer {
            SemVer::master(0, 0)
        }
        fn stage(&self) -> StageKind {
            StageKind::PreProcess
        }
        fn input_schema(&self) -> Option<SchemaId> {
            Some(feature_schema(DIM))
        }
        fn output_schema(&self) -> SchemaId {
            feature_schema(self.dim_out)
        }
        fn run(&self, inputs: &[Artifact]) -> PipelineResult<Artifact> {
            self.check_compatibility(inputs)?;
            let feats: Vec<&Features> = inputs
                .iter()
                .map(|a| match &a.data {
                    ArtifactData::Features(f) => f,
                    _ => unreachable!("schema-checked input"),
                })
                .collect();
            let first = feats[0];
            let x = Matrix::from_fn(first.x.rows(), self.dim_out, |r, c| {
                if c < DIM {
                    feats.iter().map(|f| f.x.get(r, c)).sum::<f32>() / feats.len() as f32
                } else {
                    0.0
                }
            });
            Ok(Artifact::new(
                ArtifactData::Features(Features {
                    x,
                    y: first.y.clone(),
                    n_classes: first.n_classes,
                }),
                self.output_schema(),
            ))
        }
        fn work_units(&self, inputs: &[Artifact]) -> u64 {
            inputs.iter().map(|a| a.byte_len()).sum::<u64>().max(1)
        }
    }

    struct Model {
        dim_in: usize,
    }

    impl Component for Model {
        fn name(&self) -> &str {
            "model"
        }
        fn version(&self) -> SemVer {
            SemVer::master(0, 0)
        }
        fn stage(&self) -> StageKind {
            StageKind::ModelTraining
        }
        fn input_schema(&self) -> Option<SchemaId> {
            Some(feature_schema(self.dim_in))
        }
        fn output_schema(&self) -> SchemaId {
            Schema::Model {
                family: "dag-test".into(),
            }
            .id()
        }
        fn run(&self, inputs: &[Artifact]) -> PipelineResult<Artifact> {
            self.check_compatibility(inputs)?;
            let ArtifactData::Features(f) = &inputs[0].data else {
                unreachable!("schema-checked input");
            };
            let mean = f.x.as_slice().iter().map(|v| *v as f64).sum::<f64>()
                / f.x.as_slice().len().max(1) as f64;
            Ok(Artifact::new(
                ArtifactData::Model(ModelArtifact {
                    family: "dag-test".into(),
                    blob: vec![7u8; 48],
                    score: Score::new(MetricKind::Accuracy, (0.5 + mean / 4.0).min(1.0)),
                }),
                self.output_schema(),
            ))
        }
        fn work_units(&self, inputs: &[Artifact]) -> u64 {
            inputs.first().map(|a| a.byte_len() * 2).unwrap_or(1)
        }
    }

    /// `src → {twin_a, twin_b, twin_c} → join → model`, with twins
    /// producing byte-identical outputs (maximal traced-write contention).
    fn fan_pipeline(join_out: usize, model_in: usize) -> BoundPipeline {
        let mut dag = PipelineDag::new();
        for n in ["src", "twin_a", "twin_b", "twin_c", "join", "model"] {
            dag.add_node(n).unwrap();
        }
        for b in ["twin_a", "twin_b", "twin_c"] {
            dag.add_edge("src", b).unwrap();
            dag.add_edge(b, "join").unwrap();
        }
        dag.add_edge("join", "model").unwrap();
        let comps: Vec<ComponentHandle> = vec![
            Arc::new(Src),
            Arc::new(Twin {
                name: "twin_a",
                factor: 2.0,
            }),
            Arc::new(Twin {
                name: "twin_b",
                factor: 2.0,
            }),
            Arc::new(Twin {
                name: "twin_c",
                factor: 2.0,
            }),
            Arc::new(Join { dim_out: join_out }),
            Arc::new(Model { dim_in: model_in }),
        ];
        BoundPipeline::new(Arc::new(dag), comps).unwrap()
    }

    /// Runs the fan pipeline twice on one fresh store (second run re-writes
    /// identical content, pinning cross-run dedup attribution) and returns
    /// every observable.
    fn run_fan(policy: ParallelismPolicy, join_out: usize, model_in: usize) -> String {
        let p = fan_pipeline(join_out, model_in);
        let store = ChunkStore::in_memory_small();
        let exec = Executor::new(&store);
        let cache = MemoryCache::new();
        let ledger = ClockLedger::new();
        let options = ExecOptions::RERUN_ALL.with_parallelism(policy);
        let first = exec.run(&p, &ledger, Some(&cache), options).unwrap();
        let second = exec.run(&p, &ledger, Some(&cache), options).unwrap();
        format!(
            "first={} second={} ledger={} stats={} physical={} cache_len={}",
            serde_json::to_string(&first).unwrap(),
            serde_json::to_string(&second).unwrap(),
            serde_json::to_string(&ledger.snapshot()).unwrap(),
            serde_json::to_string(&store.stats()).unwrap(),
            store.physical_bytes(),
            cache.len(),
        )
    }

    #[test]
    fn fan_dag_identical_across_worker_counts() {
        let sequential = run_fan(ParallelismPolicy::Sequential, DIM, DIM);
        for workers in [1, 2, 8] {
            let parallel = run_fan(ParallelismPolicy::Parallel(workers), DIM, DIM);
            assert_eq!(
                sequential, parallel,
                "fan DAG with {workers} workers diverged from sequential"
            );
        }
    }

    #[test]
    fn fan_dag_mid_failure_identical_across_worker_counts() {
        // Join widens to DIM+2 but the model expects DIM: the run fails at
        // the model *after* all three sibling branches and the join ran.
        let sequential = run_fan(ParallelismPolicy::Sequential, DIM + 2, DIM);
        for workers in [1, 2, 8] {
            let parallel = run_fan(ParallelismPolicy::Parallel(workers), DIM + 2, DIM);
            assert_eq!(
                sequential, parallel,
                "failing fan DAG with {workers} workers diverged"
            );
        }
    }

    /// Full collaborative lifecycle on the diamond fusion workload: commit,
    /// branch, fast-forward merge, diverged metric-driven merge — all
    /// observables identical across worker counts {1, 2, 8}.
    fn run_fusion_lifecycle(policy: ParallelismPolicy) -> String {
        use mlcask_workloads::scenario::{build_system, setup_nonlinear};
        let w = mlcask_workloads::fusion::build();
        let (reg, sys) = build_system(&w).unwrap();
        let sys = sys.with_parallelism(policy);
        setup_nonlinear(&sys, &w).unwrap();
        let clock = ClockLedger::new();
        let merge = sys
            .merge("master", "dev", MergeStrategy::Full, &clock)
            .unwrap();
        let meta = sys.head_metafile("master").unwrap();
        format!(
            "ff={} report={} meta={} clock={} stats={} history_len={}",
            merge.fast_forward,
            serde_json::to_string(&merge.report).unwrap(),
            serde_json::to_string(&meta).unwrap(),
            serde_json::to_string(&clock.snapshot()).unwrap(),
            serde_json::to_string(&reg.store().stats()).unwrap(),
            sys.history().len(),
        )
    }

    #[test]
    fn fusion_diamond_merge_identical_across_worker_counts() {
        let sequential = run_fusion_lifecycle(ParallelismPolicy::Sequential);
        for workers in [2, 8] {
            let parallel = run_fusion_lifecycle(ParallelismPolicy::Parallel(workers));
            assert_eq!(
                sequential, parallel,
                "fusion lifecycle with {workers} workers diverged"
            );
        }
    }

    #[test]
    fn fusion_prioritized_trials_identical_across_worker_counts() {
        let run = |policy: ParallelismPolicy| {
            use mlcask_workloads::scenario::{build_system, setup_nonlinear};
            let w = mlcask_workloads::fusion::build();
            let (reg, sys) = build_system(&w).unwrap();
            setup_nonlinear(&sys, &w).unwrap();
            let spaces = sys.merge_search_spaces("master", "dev").unwrap();
            let init = sys.initial_scores("master", "dev").unwrap();
            let searcher = PrioritizedSearcher::new(sys.registry(), Arc::clone(sys.dag()))
                .with_parallelism(policy);
            let stats = searcher
                .run_trials(
                    &spaces,
                    sys.history(),
                    &init,
                    SearchMethod::Prioritized,
                    3,
                    11,
                )
                .unwrap();
            format!(
                "stats={} store={}",
                serde_json::to_string(&stats).unwrap(),
                serde_json::to_string(&reg.store().stats()).unwrap(),
            )
        };
        let sequential = run(ParallelismPolicy::Sequential);
        // 8 workers over 3 trials splits the pool as outer=3, inner=2, so
        // each trial's candidates run their diamond wavefronts on 2 workers
        // — trial-level fan-out genuinely composed with node-level fan-out.
        for workers in [2, 8] {
            let parallel = run(ParallelismPolicy::Parallel(workers));
            assert_eq!(
                sequential, parallel,
                "fusion trials with {workers} workers diverged"
            );
        }
    }
}
