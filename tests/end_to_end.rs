//! Cross-crate integration tests: the full commit → branch → merge life
//! cycle over real workloads, exercising storage, pipeline, core, and
//! workloads together.

use mlcask::prelude::*;

/// Runs the complete Fig. 3 scenario for every workload and validates the
/// merge outcome's invariants.
#[test]
fn fig3_merge_works_on_all_four_workloads() {
    for workload in all_workloads() {
        let (_registry, sys) = build_system(&workload).unwrap();
        setup_nonlinear(&sys, &workload).unwrap();
        let clock = ClockLedger::new();
        let outcome = sys
            .merge("master", "dev", MergeStrategy::Full, &clock)
            .unwrap_or_else(|e| panic!("{} merge failed: {e}", workload.name));
        assert!(!outcome.fast_forward, "{}", workload.name);
        let report = outcome.report.unwrap();
        // The Fig. 4 candidate structure: 2 cleansing-ish × 2 schema
        // versions × 5 models (times 1 for every other slot).
        assert_eq!(report.candidates_total, 20, "{}", workload.name);
        assert!(report.candidates_pruned > 0, "{}", workload.name);
        assert!(report.reused_components > 0, "{}", workload.name);
        let (_, best) = report.best.as_ref().unwrap();
        // The winner is at least as good as both branch heads.
        {
            let branch = "dev";
            let head_score = sys.head_metafile(branch).unwrap().score.unwrap();
            assert!(
                best.value >= head_score.value - 1e-12,
                "{}: winner {} vs {} head {}",
                workload.name,
                best.value,
                branch,
                head_score.value
            );
        }
        // The merge commit exists on master with two parents.
        let commit = outcome.commit.unwrap();
        assert_eq!(commit.parents.len(), 2);
        assert_eq!(sys.graph().head("master").unwrap().id, commit.id);
    }
}

/// The merged pipeline must be replayable from the archived history with
/// zero additional execution.
#[test]
fn merged_pipeline_replays_from_checkpoints() {
    let workload = by_name("readmission").unwrap();
    let (_registry, sys) = build_system(&workload).unwrap();
    setup_nonlinear(&sys, &workload).unwrap();
    let clock = ClockLedger::new();
    sys.merge("master", "dev", MergeStrategy::Full, &clock)
        .unwrap();
    let meta = sys.head_metafile("master").unwrap();
    let keys = meta.component_keys();
    let bound = sys.bind(&keys).unwrap();
    let before = clock.snapshot().exec_ns();
    let executor = Executor::new(sys.store());
    let report = executor
        .run(&bound, &clock, Some(sys.history()), ExecOptions::MLCASK)
        .unwrap();
    assert_eq!(report.executed_count(), 0, "everything checkpointed");
    assert_eq!(clock.snapshot().exec_ns(), before, "no execution time");
    assert_eq!(
        report.outcome.score().unwrap().raw,
        meta.score.unwrap().raw,
        "replayed score matches the committed metafile"
    );
}

/// All strategies must agree on the optimal pipeline (they search the same
/// space) while differing in cost.
#[test]
fn strategies_agree_on_optimum() {
    let workload = by_name("dpm").unwrap();
    let mut best_scores = Vec::new();
    let mut times = Vec::new();
    for strategy in FIG8_STRATEGIES {
        let result = run_merge(&workload, strategy).unwrap();
        best_scores.push(result.report.best.as_ref().unwrap().1.value);
        times.push(result.cpt_secs);
    }
    assert!((best_scores[0] - best_scores[1]).abs() < 1e-12);
    assert!((best_scores[0] - best_scores[2]).abs() < 1e-12);
    // Full < w/o PR < w/o PCPR (times vector ordered per FIG8_STRATEGIES:
    // Full, WithoutPcPr, WithoutPr).
    assert!(times[0] < times[2]);
    assert!(times[2] < times[1]);
}

/// Linear versioning across all three systems preserves paper orderings on
/// a second workload (the runner's own tests cover readmission).
#[test]
fn linear_orderings_hold_for_autolearn() {
    let workload = by_name("autolearn").unwrap();
    let seq = linear_update_sequence(&workload, &LinearScenario::default());
    let results: Vec<LinearRunResult> = SystemKind::ALL
        .iter()
        .map(|&s| run_linear(s, &workload, &seq).unwrap())
        .collect();
    let (modeldb, mlflow, mlcask) = (&results[0], &results[1], &results[2]);
    assert!(modeldb.total_time_secs() > mlflow.total_time_secs());
    assert!(mlflow.total_time_secs() >= mlcask.total_time_secs());
    assert!(modeldb.final_css_mib() > mlflow.final_css_mib());
    assert!(mlflow.final_css_mib() > mlcask.final_css_mib());
}

/// The commit graph records the full lineage: walking parents from the
/// merge commit reaches both branch histories.
#[test]
fn lineage_is_fully_traceable() {
    let workload = by_name("sa").unwrap();
    let (_registry, sys) = build_system(&workload).unwrap();
    setup_nonlinear(&sys, &workload).unwrap();
    let clock = ClockLedger::new();
    let outcome = sys
        .merge("master", "dev", MergeStrategy::Full, &clock)
        .unwrap();
    let merge_commit = outcome.commit.unwrap();
    let ancestors = sys.graph().ancestors(merge_commit.id).unwrap();
    // initial + 1 head update + 3 dev updates + merge = 6 commits.
    assert_eq!(ancestors.len(), 6);
    // Every ancestor's metafile is still resolvable (full reproducibility).
    for id in ancestors {
        let commit = sys.graph().get(id).unwrap();
        let meta = sys.metafile_of(&commit).unwrap();
        assert!(!meta.slots.is_empty());
    }
}

/// Deterministic end-to-end: two independent systems replaying the same
/// scenario produce identical scores, storage bytes, and virtual times.
#[test]
fn full_scenario_is_deterministic() {
    let run = || {
        let workload = by_name("autolearn").unwrap();
        let (_registry, sys) = build_system(&workload).unwrap();
        setup_nonlinear(&sys, &workload).unwrap();
        let clock = ClockLedger::new();
        let outcome = sys
            .merge("master", "dev", MergeStrategy::Full, &clock)
            .unwrap();
        let report = outcome.report.unwrap();
        (
            report.best.as_ref().unwrap().1.raw,
            report.clock.total_ns(),
            sys.store().stats().total().physical_bytes,
        )
    };
    assert_eq!(run(), run());
}
