//! Integration tests for the paper's version-control semantics (§IV–§V):
//! semantic version rules, branch isolation, fast-forward merges, and the
//! asynchronous-update protections.

use mlcask::prelude::*;

fn readmission_system() -> (Workload, MlCask, ClockLedger) {
    let workload = by_name("readmission").unwrap();
    let (_registry, sys) = build_system(&workload).unwrap();
    let clock = ClockLedger::new();
    sys.commit_pipeline("master", &workload.initial, "init", &clock)
        .unwrap();
    (workload, sys, clock)
}

#[test]
fn branch_isolates_user_roles() {
    let (workload, sys, clock) = readmission_system();
    sys.branch("master", "jane-dev").unwrap();
    sys.branch("master", "frank-dev").unwrap();
    // Jane updates the model; Frank updates cleansing.
    let mut jane = workload.initial.clone();
    jane[3] = workload.chains[3][1].clone();
    sys.commit_pipeline("jane-dev", &jane, "jane model", &clock)
        .unwrap();
    let mut frank = workload.initial.clone();
    frank[1] = workload.chains[1][1].clone();
    sys.commit_pipeline("frank-dev", &frank, "frank cleanse", &clock)
        .unwrap();
    // Neither branch sees the other's update; master sees neither.
    assert_eq!(
        sys.head_metafile("jane-dev")
            .unwrap()
            .component_version("data_cleanse"),
        Some(&workload.initial[1])
    );
    assert_eq!(
        sys.head_metafile("frank-dev")
            .unwrap()
            .component_version("cnn"),
        Some(&workload.initial[3])
    );
    assert_eq!(sys.graph().head("master").unwrap().seq, 0);
}

#[test]
fn fast_forward_merge_duplicates_merge_head() {
    let (workload, sys, clock) = readmission_system();
    sys.branch("master", "dev").unwrap();
    sys.commit_pipeline("dev", &workload.dev_updates[0], "dev", &clock)
        .unwrap();
    let dev_meta = sys.head_metafile("dev").unwrap();
    let outcome = sys
        .merge("master", "dev", MergeStrategy::Full, &clock)
        .unwrap();
    assert!(outcome.fast_forward);
    let master_meta = sys.head_metafile("master").unwrap();
    assert_eq!(master_meta.component_keys(), dev_meta.component_keys());
    assert_eq!(master_meta.score.unwrap().raw, dev_meta.score.unwrap().raw);
    // The fast-forward merge replays entirely from checkpoints: no new
    // artifact content should have been written for outputs.
    let commit = outcome.commit.unwrap();
    assert_eq!(commit.parents.len(), 2);
}

#[test]
fn incompatible_commit_is_rejected_before_running() {
    let (workload, sys, clock) = readmission_system();
    let before = clock.snapshot();
    let (slot, ref v1) = workload.incompat_update;
    let mut keys = workload.initial.clone();
    keys[slot] = v1.clone();
    let res = sys
        .commit_pipeline("master", &keys, "doomed", &clock)
        .unwrap();
    assert!(res.commit.is_none());
    assert!(matches!(
        res.report.outcome,
        RunOutcome::RejectedByPrecheck { .. }
    ));
    assert_eq!(clock.snapshot(), before, "zero cost for a rejected update");
}

#[test]
fn semver_rules_hold_across_workload_families() {
    for workload in all_workloads() {
        let (slot, ref v1) = workload.incompat_update;
        // The schema-changing update has a bumped schema and reset increment.
        assert_eq!(v1.version.schema, 1, "{}", workload.name);
        assert_eq!(v1.version.increment, 0, "{}", workload.name);
        // Chain versions are increment-only (same schema generation).
        for chain in &workload.chains {
            for key in chain {
                assert_eq!(key.version.schema, 0, "{}", workload.name);
            }
        }
        // The chain for the incompat slot starts at increment 0.
        assert_eq!(workload.chains[slot][0].version.increment, 0);
    }
}

#[test]
fn merge_commit_score_recorded_in_metafile() {
    let (workload, sys, clock) = readmission_system();
    sys.branch("master", "dev").unwrap();
    for (i, u) in workload.dev_updates.iter().enumerate() {
        sys.commit_pipeline("dev", u, &format!("dev {i}"), &clock)
            .unwrap();
    }
    for (i, u) in workload.head_updates.iter().enumerate() {
        sys.commit_pipeline("master", u, &format!("head {i}"), &clock)
            .unwrap();
    }
    let outcome = sys
        .merge("master", "dev", MergeStrategy::Full, &clock)
        .unwrap();
    let report = outcome.report.unwrap();
    let meta = sys.head_metafile("master").unwrap();
    assert_eq!(
        meta.score.unwrap().raw,
        report.best.as_ref().unwrap().1.raw,
        "committed metafile carries the winning score"
    );
}

#[test]
fn search_space_respects_common_ancestor_boundary() {
    let (workload, sys, clock) = readmission_system();
    // Advance master twice, then branch: pre-branch versions (other than the
    // fork point's) must not enter the merge search space.
    let mut keys = workload.initial.clone();
    keys[3] = workload.chains[3][1].clone();
    sys.commit_pipeline("master", &keys, "pre-branch model bump", &clock)
        .unwrap();
    sys.branch("master", "dev").unwrap();
    let mut dev_keys = keys.clone();
    dev_keys[1] = workload.chains[1][1].clone();
    sys.commit_pipeline("dev", &dev_keys, "dev cleanse", &clock)
        .unwrap();
    let mut head_keys = keys.clone();
    head_keys[3] = workload.chains[3][2].clone();
    sys.commit_pipeline("master", &head_keys, "head model", &clock)
        .unwrap();
    let spaces = sys.merge_search_spaces("master", "dev").unwrap();
    // CNN space: fork version + head's new one — NOT the pre-branch 0.0.
    let cnn_versions = &spaces.per_slot[3];
    assert_eq!(cnn_versions.len(), 2);
    assert!(!cnn_versions.contains(&workload.initial[3]));
}
