//! Persistence integration: the storage substrate against a real
//! filesystem backend, including artifact recovery after reopening the
//! store — the durability property a deployed MLCask relies on.

use mlcask::prelude::*;
use std::sync::Arc;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    // Pid + per-call counter: pid alone collides when one test process asks
    // for two directories under the same tag (or a test reuses a tag).
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mlcask-it-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn pipeline_artifacts_survive_store_reopen() {
    let dir = temp_dir("reopen");
    let workload = by_name("autolearn").unwrap();
    let handle_for = |key: &ComponentKey| {
        workload
            .handles
            .iter()
            .find(|h| &h.key() == key)
            .unwrap()
            .clone()
    };

    // Session 1: run the initial pipeline against a file-backed store.
    let (refs, ids) = {
        let store = ChunkStore::new(
            Arc::new(FileBackend::open(&dir).unwrap()),
            ChunkParams::DEFAULT,
            StorageCostModel::FORKBASE,
        );
        let dag = Arc::new(workload.dag());
        let components = workload.initial.iter().map(&handle_for).collect();
        let bound = BoundPipeline::new(dag, components).unwrap();
        let clock = ClockLedger::new();
        let report = Executor::new(&store)
            .run(&bound, &clock, None, ExecOptions::RERUN_ALL)
            .unwrap();
        assert!(report.outcome.is_completed());
        let refs: Vec<_> = report.stages.iter().map(|s| s.output).collect();
        let ids: Vec<_> = report.stages.iter().map(|s| s.artifact_id).collect();
        (refs, ids)
    }; // store dropped — "process exits"

    // Session 2: reopen the directory and recover every artifact.
    let store = ChunkStore::new(
        Arc::new(FileBackend::open(&dir).unwrap()),
        ChunkParams::DEFAULT,
        StorageCostModel::FORKBASE,
    );
    for (r, id) in refs.iter().zip(&ids) {
        let bytes = store.get_blob(r).unwrap();
        let artifact = mlcask::pipeline::artifact::Artifact::from_bytes(&bytes).unwrap();
        assert_eq!(&artifact.content_id(), id, "artifact recovered bit-exact");
    }
    // The final model artifact still carries its score.
    let bytes = store.get_blob(refs.last().unwrap()).unwrap();
    let model = mlcask::pipeline::artifact::Artifact::from_bytes(&bytes).unwrap();
    assert!(model.score().is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The same reopen scenario against the append-only cask backend with its
/// asynchronous writer pool: `flush` drains the pool and fsyncs, and a
/// fresh process (new `CaskBackend::open`) recovers every artifact.
#[test]
fn pipeline_artifacts_survive_cask_reopen() {
    let dir = temp_dir("cask-reopen");
    let workload = by_name("autolearn").unwrap();
    let handle_for = |key: &ComponentKey| {
        workload
            .handles
            .iter()
            .find(|h| &h.key() == key)
            .unwrap()
            .clone()
    };

    let (refs, ids) = {
        let store = ChunkStore::new(
            Arc::new(CaskBackend::open(&dir).unwrap()),
            ChunkParams::DEFAULT,
            StorageCostModel::FORKBASE,
        );
        let dag = Arc::new(workload.dag());
        let components = workload.initial.iter().map(&handle_for).collect();
        let bound = BoundPipeline::new(dag, components).unwrap();
        let clock = ClockLedger::new();
        let report = Executor::new(&store)
            .run(&bound, &clock, None, ExecOptions::RERUN_ALL)
            .unwrap();
        assert!(report.outcome.is_completed());
        store.flush().unwrap();
        let refs: Vec<_> = report.stages.iter().map(|s| s.output).collect();
        let ids: Vec<_> = report.stages.iter().map(|s| s.artifact_id).collect();
        (refs, ids)
    };

    let store = ChunkStore::new(
        Arc::new(CaskBackend::open(&dir).unwrap()),
        ChunkParams::DEFAULT,
        StorageCostModel::FORKBASE,
    );
    for (r, id) in refs.iter().zip(&ids) {
        let bytes = store.get_blob(r).unwrap();
        let artifact = mlcask::pipeline::artifact::Artifact::from_bytes(&bytes).unwrap();
        assert_eq!(&artifact.content_id(), id, "artifact recovered bit-exact");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `Workspace::durable` + `Workspace::flush`: blobs written through a
/// durable workspace survive reopening the same directory.
#[test]
fn durable_workspace_reopens_with_contents() {
    let dir = temp_dir("cask-ws");
    let payload = mlcask::core::registry::simulated_executable("lib", "0.0", 64 * 1024);
    let obj = {
        let ws = Workspace::durable(&dir).unwrap();
        let put = ws.store().put_blob(ObjectKind::Library, &payload).unwrap();
        ws.flush().unwrap();
        put.object
    };
    let ws = Workspace::durable(&dir).unwrap();
    assert_eq!(ws.store().get_blob(&obj).unwrap().as_ref(), &payload[..]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn duplicate_writes_are_free_on_disk_too() {
    let dir = temp_dir("dedup");
    let store = ChunkStore::new(
        Arc::new(FileBackend::open(&dir).unwrap()),
        ChunkParams::DEFAULT,
        StorageCostModel::FORKBASE,
    );
    let payload = mlcask::core::registry::simulated_executable("lib", "0.0", 256 * 1024);
    let first = store.put_blob(ObjectKind::Library, &payload).unwrap();
    let physical_after_first = store.physical_bytes();
    let second = store.put_blob(ObjectKind::Library, &payload).unwrap();
    assert_eq!(first.object, second.object);
    assert_eq!(second.physical_bytes, 0);
    assert_eq!(store.physical_bytes(), physical_after_first);
    // A new version shares the base region: small physical delta.
    let v2 = mlcask::core::registry::simulated_executable("lib", "0.1", 256 * 1024);
    let third = store.put_blob(ObjectKind::Library, &v2).unwrap();
    assert!(
        third.physical_bytes < first.physical_bytes / 4,
        "consecutive versions must dedup on disk: {} vs {}",
        third.physical_bytes,
        first.physical_bytes
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
