//! Crash-recovery matrix: kill the storage backend at every k-th write,
//! reopen, recover, and assert the **resumed** run is byte-identical to an
//! uninterrupted sequential run — report, ledger, store statistics, and
//! physical bytes — at worker counts {1, 2, 8}, on both the durable
//! [`CaskBackend`] (fault-injected torn/dropped writes, real reopen) and
//! an in-memory store behind the trait-level [`FaultBackend`].
//!
//! Protocol under test (see `mlcask_pipeline::resume`): completed
//! operations are journaled to a [`ResumeLog`]; recovery validates each
//! journaled operation against the blobs that actually survived, sweeps
//! unjournaled leftovers, and [`Executor::run_resumable`] adopts the
//! validated operations without re-executing them. Crashed attempts run
//! sequentially, so the journal always holds a canonical prefix of the
//! run; the *resumed* attempt is exercised at every worker count.

use mlcask::core::testkit::{toy_model, toy_scaler, toy_slots, toy_source};
use mlcask::prelude::*;
use mlcask::storage::backend::MemBackend;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-call-unique temp dir: pid alone is not enough because one process
/// runs many matrix cells (and the test harness runs tests concurrently).
fn temp_base(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mlcask-crash-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The toy source → scaler → model chain: small artifacts, so with
/// [`ChunkParams::SMALL`] the whole run issues a few dozen backend writes
/// — a crash matrix over *every* write stays fast.
fn bound_toy() -> BoundPipeline {
    let dag = Arc::new(PipelineDag::chain(&toy_slots()).unwrap());
    let comps = vec![
        toy_source(SemVer::master(0, 0), 4, 32),
        toy_scaler(SemVer::master(0, 0), 4, 4, 2.0),
        toy_model(SemVer::master(0, 0), 4, 0.8),
    ];
    BoundPipeline::new(dag, comps).unwrap()
}

/// The diamond fusion workload — real DAG width, so the resumed attempt's
/// parallel wavefront genuinely fans out.
fn bound_fusion() -> BoundPipeline {
    let w = mlcask::workloads::fusion::build();
    let comps = w
        .initial
        .iter()
        .map(|key| {
            w.handles
                .iter()
                .find(|h| &h.key() == key)
                .expect("initial key registered")
                .clone()
        })
        .collect();
    BoundPipeline::new(Arc::new(w.dag()), comps).unwrap()
}

fn run_once(
    pipeline: &BoundPipeline,
    store: &ChunkStore,
    policy: ParallelismPolicy,
    resume: &ResumeCtx<'_>,
) -> PipelineResult<(RunReport, ClockLedger)> {
    let ledger = ClockLedger::new();
    let report = Executor::new(store).run_resumable(
        pipeline,
        &ledger,
        None,
        ExecOptions::RERUN_ALL.with_parallelism(policy),
        resume,
    )?;
    Ok((report, ledger))
}

/// Every observable the determinism contract covers.
fn observe(report: &RunReport, ledger: &ClockLedger, store: &ChunkStore) -> String {
    format!(
        "report={} ledger={} stats={} physical={}",
        serde_json::to_string(report).unwrap(),
        serde_json::to_string(&ledger.snapshot()).unwrap(),
        serde_json::to_string(&store.stats()).unwrap(),
        store.physical_bytes(),
    )
}

/// Uninterrupted sequential run on a fresh in-memory store — the reference
/// every crashed-and-resumed run must reproduce byte-for-byte.
fn reference(pipeline: &BoundPipeline, params: ChunkParams) -> String {
    let store = ChunkStore::new(
        Arc::new(MemBackend::new()),
        params,
        StorageCostModel::FORKBASE,
    );
    let empty = ResumeSnapshot::empty();
    let ctx = ResumeCtx {
        snapshot: &empty,
        journal: None,
    };
    let (report, ledger) = run_once(pipeline, &store, ParallelismPolicy::Sequential, &ctx).unwrap();
    assert!(report.outcome.is_completed());
    observe(&report, &ledger, &store)
}

/// Runs the pipeline once against a clean synchronous cask to learn the
/// total number of segment appends the workload issues.
fn cask_total_appends(pipeline: &BoundPipeline, params: ChunkParams) -> u64 {
    let base = temp_base("count");
    let be = Arc::new(
        CaskBackend::open_with(
            base.join("store"),
            CaskOptions {
                shards: 8,
                writer_threads: 0,
                sync_every_append: false,
                ..CaskOptions::default()
            },
        )
        .unwrap(),
    );
    let store = ChunkStore::new(be.clone(), params, StorageCostModel::FORKBASE);
    let empty = ResumeSnapshot::empty();
    let ctx = ResumeCtx {
        snapshot: &empty,
        journal: None,
    };
    run_once(pipeline, &store, ParallelismPolicy::Sequential, &ctx).unwrap();
    store.flush().unwrap();
    let n = be.append_count();
    drop(store);
    let _ = std::fs::remove_dir_all(&base);
    n
}

fn fault_plan(k: u64, kind_sel: u64) -> FaultPlan {
    match kind_sel % 3 {
        0 => FaultPlan::torn(k, 0xC0FFEE ^ k),
        1 => FaultPlan::after_write(k),
        _ => FaultPlan::drop_unsynced(k),
    }
}

/// One cask matrix cell: crash the k-th segment append during a sequential
/// attempt, reopen the directory (torn-tail truncation), recover from the
/// journal, and finish the run under `policy`. Returns the resumed run's
/// observables plus the recovery report and the journal size it validated.
fn crash_then_resume_cask(
    pipeline: &BoundPipeline,
    params: ChunkParams,
    k: u64,
    kind_sel: u64,
    policy: ParallelismPolicy,
) -> (String, RecoveryReport, usize) {
    let base = temp_base("cask");
    let root = base.join("store");
    let journal = base.join("resume.log");

    // Attempt 1: journaled sequential run against the faulted backend.
    {
        let be = Arc::new(
            CaskBackend::open_with(
                &root,
                CaskOptions::default().with_fault(fault_plan(k, kind_sel)),
            )
            .unwrap(),
        );
        let store = ChunkStore::new(be, params, StorageCostModel::FORKBASE);
        let (log, entries) = ResumeLog::open(&journal).unwrap();
        assert!(entries.is_empty(), "fresh journal");
        let empty = ResumeSnapshot::empty();
        let ctx = ResumeCtx {
            snapshot: &empty,
            journal: Some(&log),
        };
        // Crashes mid-run for every fault kind except `AfterWrite` on the
        // run's final append (the crash point then fires with nothing left
        // to write) — in that case the "resume" below adopts every node.
        let _ = run_once(pipeline, &store, ParallelismPolicy::Sequential, &ctx);
    }

    // Recovery: reopen both logs, validate, sweep, resume.
    let be = Arc::new(CaskBackend::open(&root).unwrap());
    let store = ChunkStore::new(be, params, StorageCostModel::FORKBASE);
    let (log, entries) = ResumeLog::open(&journal).unwrap();
    let journaled = entries.len();
    let (snap, rec) = ResumeSnapshot::recover(&store, entries, []).unwrap();
    let ctx = ResumeCtx {
        snapshot: &snap,
        journal: Some(&log),
    };
    let (report, ledger) = run_once(pipeline, &store, policy, &ctx).unwrap();
    assert!(report.outcome.is_completed());
    let obs = observe(&report, &ledger, &store);
    let _ = std::fs::remove_dir_all(&base);
    (obs, rec, journaled)
}

const POLICIES: [ParallelismPolicy; 3] = [
    ParallelismPolicy::Sequential,
    ParallelismPolicy::Parallel(2),
    ParallelismPolicy::Parallel(8),
];

#[test]
fn cask_crash_at_every_append_resumes_byte_identical() {
    let pipeline = bound_toy();
    let expected = reference(&pipeline, ChunkParams::SMALL);
    let total = cask_total_appends(&pipeline, ChunkParams::SMALL);
    assert!(total > 8, "toy chain must issue enough writes to matter");

    let mut adopted_any = false;
    for k in 1..=total {
        // Rotate fault kind and resumed worker count so every append gets
        // killed under some combination while the matrix stays affordable.
        let policy = POLICIES[(k % 3) as usize];
        let (obs, rec, journaled) =
            crash_then_resume_cask(&pipeline, ChunkParams::SMALL, k, k / 3, policy);
        assert_eq!(
            rec.recovered_operations + rec.discarded_operations,
            journaled,
            "every journaled operation is either adopted or discarded (k={k})"
        );
        adopted_any |= rec.recovered_operations > 0;
        assert_eq!(
            obs, expected,
            "resumed run diverged after crash at append {k} ({policy:?})"
        );
    }
    assert!(
        adopted_any,
        "matrix never exercised adoption — journal validation is vacuous"
    );
}

#[test]
fn fusion_diamond_crash_resume_all_worker_counts() {
    let pipeline = bound_fusion();
    let expected = reference(&pipeline, ChunkParams::DEFAULT);
    let total = cask_total_appends(&pipeline, ChunkParams::DEFAULT);
    assert!(total > 4);

    for (i, k) in [1, total / 3, 2 * total / 3, total].into_iter().enumerate() {
        let k = k.max(1);
        for policy in POLICIES {
            let (obs, _, _) =
                crash_then_resume_cask(&pipeline, ChunkParams::DEFAULT, k, i as u64, policy);
            assert_eq!(
                obs, expected,
                "fusion resume diverged after crash at append {k} ({policy:?})"
            );
        }
    }
}

/// One in-memory matrix cell: the trait-level [`FaultBackend`] fails the
/// p-th put, the "process" survives (journal in memory), the backend heals
/// (simulated reopen — `MemBackend` keeps every acknowledged put), and a
/// fresh store view over the healed backend recovers and resumes.
fn crash_then_resume_mem(
    pipeline: &BoundPipeline,
    p: u64,
    policy: ParallelismPolicy,
) -> (String, RecoveryReport) {
    let fb = Arc::new(FaultBackend::new(Arc::new(MemBackend::new()), p));
    let store = ChunkStore::new(fb.clone(), ChunkParams::SMALL, StorageCostModel::FORKBASE);
    let log = ResumeLog::in_memory();
    let empty = ResumeSnapshot::empty();
    let ctx = ResumeCtx {
        snapshot: &empty,
        journal: Some(&log),
    };
    let first = run_once(pipeline, &store, ParallelismPolicy::Sequential, &ctx);
    assert!(first.is_err(), "armed backend must fail the run (p={p})");
    assert!(fb.crashed());
    fb.heal();

    // Fresh store view: recovery accounting starts from zero, exactly as a
    // reopened process's would.
    let store = ChunkStore::new(fb.clone(), ChunkParams::SMALL, StorageCostModel::FORKBASE);
    let entries = log.entries().unwrap();
    let journaled = entries.len();
    let (snap, rec) = ResumeSnapshot::recover(&store, entries, []).unwrap();
    assert_eq!(
        rec.recovered_operations + rec.discarded_operations,
        journaled
    );
    let ctx = ResumeCtx {
        snapshot: &snap,
        journal: Some(&log),
    };
    let (report, ledger) = run_once(pipeline, &store, policy, &ctx).unwrap();
    assert!(report.outcome.is_completed());
    (observe(&report, &ledger, &store), rec)
}

#[test]
fn mem_fault_crash_at_every_put_resumes_byte_identical() {
    let pipeline = bound_toy();
    let expected = reference(&pipeline, ChunkParams::SMALL);

    // Learn the workload's put count with a far-away crash point.
    let fb = Arc::new(FaultBackend::new(Arc::new(MemBackend::new()), u64::MAX));
    let store = ChunkStore::new(fb.clone(), ChunkParams::SMALL, StorageCostModel::FORKBASE);
    let empty = ResumeSnapshot::empty();
    let ctx = ResumeCtx {
        snapshot: &empty,
        journal: None,
    };
    run_once(&pipeline, &store, ParallelismPolicy::Sequential, &ctx).unwrap();
    let total = fb.puts();
    assert!(total > 8);

    let mut adopted_any = false;
    for p in 1..=total {
        let policy = POLICIES[(p % 3) as usize];
        let (obs, rec) = crash_then_resume_mem(&pipeline, p, policy);
        adopted_any |= rec.recovered_operations > 0;
        assert_eq!(
            obs, expected,
            "mem resume diverged after crash at put {p} ({policy:?})"
        );
    }
    assert!(adopted_any, "mem matrix never exercised adoption");
}

/// Group commit writes a whole batch as one contiguous segment write
/// followed by a single `sync_data`. If the machine dies mid-batch, only a
/// prefix of the concatenated frames reaches the disk; reopen must keep
/// every fully-written frame of the batch and truncate the torn one — the
/// per-append torn-tail protocol applied to a batched write.
///
/// Killing a live writer pool mid-batch is inherently racy, so the batch is
/// hand-crafted: three records framed exactly as `process_batch` lays them
/// out, appended to the shard file with the last frame cut short.
#[test]
fn group_commit_torn_mid_batch_truncates_to_last_full_frame() {
    use mlcask::storage::backend::StorageBackend;
    use mlcask::storage::cask::{frame, FRAME_HEADER};
    use std::io::Write;

    let base = temp_base("torn-batch");
    let root = base.join("store");

    // A durable base object, flushed through a single-shard cask so the
    // crafted batch lands in a known file.
    let base_blob = vec![7u8; 96];
    let base_key = Hash256::of(&base_blob);
    {
        let be = CaskBackend::open_with(
            &root,
            CaskOptions {
                shards: 1,
                writer_threads: 0,
                sync_every_append: false,
                ..CaskOptions::default()
            },
        )
        .unwrap();
        be.put(base_key, &base_blob).unwrap();
        be.flush().unwrap();
    }
    let path = root.join("shard-000.log");
    let base_len = std::fs::metadata(&path).unwrap().len();

    // One group-commit batch: record frames back to back, the third cut
    // mid-payload (its fsync never completed).
    let blobs: Vec<Vec<u8>> = (0u8..3)
        .map(|i| vec![i + 1; 64 + i as usize * 17])
        .collect();
    let mut batch = Vec::new();
    let mut full_ends = Vec::new();
    for b in &blobs {
        let mut payload = vec![0u8]; // FLAG_PUT
        payload.extend_from_slice(&Hash256::of(b).0);
        payload.extend_from_slice(b);
        batch.extend_from_slice(&frame(&payload));
        full_ends.push(batch.len());
    }
    let cut = full_ends[1] + FRAME_HEADER + 5;
    assert!(cut < batch.len(), "cut must land inside the third frame");
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&batch[..cut]).unwrap();
        f.sync_all().unwrap();
    }

    // Reopen: the two full frames survive, the torn third does not, the
    // base object is untouched, and the file is truncated to the last full
    // frame.
    {
        let be = CaskBackend::open(&root).unwrap();
        assert_eq!(be.get(base_key).unwrap().as_ref(), &base_blob[..]);
        for b in &blobs[..2] {
            assert_eq!(be.get(Hash256::of(b)).unwrap().as_ref(), &b[..]);
        }
        assert!(
            !be.contains(Hash256::of(&blobs[2])),
            "torn frame must not resurrect"
        );
        assert_eq!(be.len(), 3);
    }
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        base_len + full_ends[1] as u64,
        "recovery truncates to the last full frame of the batch"
    );

    // Truncation is idempotent: a second reopen sees the same state and
    // appends continue cleanly from the truncated tail.
    let be = CaskBackend::open(&root).unwrap();
    assert_eq!(be.len(), 3);
    let extra = vec![9u8; 40];
    be.put(Hash256::of(&extra), &extra).unwrap();
    be.flush().unwrap();
    assert_eq!(be.get(Hash256::of(&extra)).unwrap().as_ref(), &extra[..]);
    drop(be);
    let _ = std::fs::remove_dir_all(&base);
}

/// The durable backend is observationally identical to the in-memory one:
/// the same run on a cask store (async writer pool *and* synchronous mode)
/// produces byte-identical observables, and every artifact survives a real
/// close-and-reopen of the directory.
#[test]
fn cask_uninterrupted_matches_mem_and_survives_reopen() {
    let pipeline = bound_toy();
    let expected = reference(&pipeline, ChunkParams::SMALL);

    for opts in [CaskOptions::default(), CaskOptions::synchronous()] {
        let base = temp_base("parity");
        let root = base.join("store");
        let be = Arc::new(CaskBackend::open_with(&root, opts).unwrap());
        let store = ChunkStore::new(be, ChunkParams::SMALL, StorageCostModel::FORKBASE);
        let empty = ResumeSnapshot::empty();
        let ctx = ResumeCtx {
            snapshot: &empty,
            journal: None,
        };
        let (report, ledger) =
            run_once(&pipeline, &store, ParallelismPolicy::Sequential, &ctx).unwrap();
        assert_eq!(observe(&report, &ledger, &store), expected);
        store.flush().unwrap();
        let outputs: Vec<_> = report.stages.iter().map(|s| s.output).collect();
        drop(store);

        // Reopen and recover every artifact bit-exact.
        let be = Arc::new(CaskBackend::open(&root).unwrap());
        let store = ChunkStore::new(be, ChunkParams::SMALL, StorageCostModel::FORKBASE);
        for (r, s) in outputs.iter().zip(&report.stages) {
            let bytes = store.get_blob(r).unwrap();
            let artifact = mlcask::pipeline::artifact::Artifact::from_bytes(&bytes).unwrap();
            assert_eq!(artifact.content_id(), s.artifact_id);
        }
        let _ = std::fs::remove_dir_all(&base);
    }
}
