//! Cross-tenant collaboration semantics: permissioned fork/merge across
//! tenant namespaces, reservation-based quota enforcement, dedup
//! attribution of cross-tenant merges, and worker-count determinism of the
//! whole upstream/downstream workflow.

use mlcask_core::errors::CoreError;
use mlcask_core::merge::MergeStrategy;
use mlcask_core::registry::ComponentRegistry;
use mlcask_core::system::MlCask;
use mlcask_core::testkit::{toy_model, toy_scaler, toy_slots, toy_source};
use mlcask_core::workspace::{Tenant, Workspace};
use mlcask_pipeline::clock::ClockLedger;
use mlcask_pipeline::component::ComponentKey;
use mlcask_pipeline::dag::PipelineDag;
use mlcask_pipeline::errors::PipelineError;
use mlcask_pipeline::parallel::ParallelismPolicy;
use mlcask_pipeline::semver::SemVer;
use mlcask_storage::errors::StorageError;
use mlcask_storage::tenant::{QuotaPolicy, ShareRight};
use mlcask_workloads::readmission;
use mlcask_workloads::scenario::run_upstream_downstream;
use std::sync::Arc;

/// Opens the toy chain pipeline for a tenant (registry over its store view).
fn toy_system(t: &Tenant) -> MlCask {
    let registry = Arc::new(ComponentRegistry::with_exe_size(
        Arc::clone(t.store()),
        4096,
    ));
    for c in [
        toy_source(SemVer::master(0, 0), 4, 16),
        toy_scaler(SemVer::master(0, 0), 4, 4, 1.0),
        toy_scaler(SemVer::master(0, 1), 4, 4, 2.0),
        toy_model(SemVer::master(0, 0), 4, 0.5),
        toy_model(SemVer::master(0, 1), 4, 0.6),
        toy_model(SemVer::master(0, 2), 4, 0.7),
    ] {
        registry.register(c).unwrap();
    }
    let dag = PipelineDag::chain(&toy_slots()).unwrap();
    t.open_pipeline("toy", dag, registry)
}

fn keys(sys: &MlCask, scaler_inc: usize, model_inc: usize) -> Vec<ComponentKey> {
    let reg = sys.registry();
    vec![
        reg.versions_of("test_source")[0].clone(),
        reg.versions_of("test_scaler")[scaler_inc].clone(),
        reg.versions_of("test_model")[model_inc].clone(),
    ]
}

/// Serialized snapshot of everything a denied operation must not touch:
/// branch heads, commit count, per-tenant usages, fair-share view, and
/// open reservations.
fn accounting_fingerprint(ws: &Arc<Workspace>) -> String {
    let heads: Vec<String> = ws
        .graph()
        .branches()
        .iter()
        .map(|b| format!("{b}={}", ws.graph().head(b).unwrap().id.short()))
        .collect();
    format!(
        "commits={} heads={heads:?} usages={} shared={} reserved={}",
        ws.graph().len(),
        serde_json::to_string(&ws.usages()).unwrap(),
        serde_json::to_string(&ws.shared_view()).unwrap(),
        ws.store().tenant_accounts().open_reservations(),
    )
}

#[test]
fn denied_fork_and_merge_leave_graph_and_accounts_bit_unchanged() {
    let ws = Workspace::in_memory_small();
    let up = ws.add_tenant("up", QuotaPolicy::UNLIMITED).unwrap();
    let down = ws.add_tenant("down", QuotaPolicy::UNLIMITED).unwrap();
    let sys_up = toy_system(&up);
    let sys_down = toy_system(&down);
    let clock = ClockLedger::new();
    sys_up
        .commit_pipeline("master", &keys(&sys_up, 0, 0), "up initial", &clock)
        .unwrap();
    sys_down
        .commit_pipeline("master", &keys(&sys_down, 0, 1), "down initial", &clock)
        .unwrap();

    let before = accounting_fingerprint(&ws);
    // No grant at all: fork denied.
    assert!(matches!(
        down.fork_from("up", "master", "feature"),
        Err(CoreError::ShareDenied {
            needed: ShareRight::Fork,
            ..
        })
    ));
    // Fork grant is not enough to merge into the owner.
    up.grant_to("down", ShareRight::Fork).unwrap();
    assert!(matches!(
        sys_down.merge_into("up", "master", "master", MergeStrategy::Full, &clock),
        Err(CoreError::ShareDenied {
            needed: ShareRight::MergeInto,
            ..
        })
    ));
    up.revoke_from("down").unwrap();
    // Read is required even to pull a peer's branch into one's own.
    assert!(matches!(
        sys_down.merge_from("master", "up", "master", MergeStrategy::Full, &clock),
        Err(CoreError::ShareDenied {
            needed: ShareRight::Read,
            ..
        })
    ));
    // Unknown peers and solo systems are rejected up front.
    assert!(matches!(
        sys_down.merge_into("ghost", "master", "master", MergeStrategy::Full, &clock),
        Err(CoreError::UnknownTenant(_))
    ));
    assert_eq!(
        accounting_fingerprint(&ws),
        before,
        "denied operations must not move graph or accounts by a single byte"
    );
}

#[test]
fn raw_string_apis_cannot_touch_foreign_namespaces() {
    let ws = Workspace::in_memory_small();
    let up = ws.add_tenant("up", QuotaPolicy::UNLIMITED).unwrap();
    let down = ws.add_tenant("down", QuotaPolicy::UNLIMITED).unwrap();
    let sys_up = toy_system(&up);
    let sys_down = toy_system(&down);
    let clock = ClockLedger::new();
    sys_up
        .commit_pipeline("master", &keys(&sys_up, 0, 0), "up initial", &clock)
        .unwrap();
    let head = ws.graph().head("up/master").unwrap();
    let before = accounting_fingerprint(&ws);
    // Tenant views hitting a peer's namespace through the raw graph APIs.
    assert!(matches!(
        sys_down.graph().commit("up/master", head.payload, "hijack"),
        Err(StorageError::PermissionDenied { .. })
    ));
    assert!(matches!(
        sys_down
            .graph()
            .commit_root("up/evil", head.payload, "squat"),
        Err(StorageError::PermissionDenied { .. })
    ));
    assert!(matches!(
        sys_down.graph().branch("up/master", "down/steal"),
        Err(StorageError::PermissionDenied { .. })
    ));
    // The un-namespaced root view is equally powerless.
    assert!(matches!(
        ws.graph()
            .commit_root("up/evil", head.payload, "root bypass"),
        Err(StorageError::PermissionDenied { actor: None, .. })
    ));
    assert_eq!(accounting_fingerprint(&ws), before);
    // A matching grant opens exactly the granted operation.
    up.grant_to("down", ShareRight::Fork).unwrap();
    sys_down.graph().branch("up/master", "down/fork").unwrap();
    assert_eq!(down.branches(), vec!["fork"]);
}

#[test]
fn cross_tenant_merge_attribution_sums_to_store_totals() {
    let w = readmission::build();
    let c = run_upstream_downstream(&w, ParallelismPolicy::Sequential).unwrap();
    let usage = c.ws.usages();
    // First-writer-pays attribution stays exact through fork + cross merge.
    assert_eq!(
        usage.values().map(|u| u.physical_bytes).sum::<u64>(),
        c.ws.store().physical_bytes(),
        "attribution must sum to the store total after a cross-tenant merge"
    );
    // Downstream reused upstream's bytes rather than re-materializing them.
    assert!(usage["downstream"].physical_bytes < usage["upstream"].physical_bytes);
    // Both teams reference the shared chunks in the fair-share view.
    let shared = c.ws.shared_view();
    assert!(shared["downstream"].referenced_bytes > 0);
    // No reservation outlives the evaluation.
    assert_eq!(c.ws.store().tenant_accounts().open_reservations(), 0);
    // The merge commit carries the upstream label sequence.
    let commit = c.merge.commit.as_ref().unwrap();
    assert!(commit.label().starts_with("upstream/master."));
}

#[test]
fn cross_tenant_merge_deterministic_across_worker_counts() {
    let run = |policy: ParallelismPolicy| -> String {
        let w = readmission::build();
        let c = run_upstream_downstream(&w, policy).unwrap();
        let heads: Vec<String> =
            c.ws.graph()
                .branches()
                .iter()
                .map(|b| {
                    let h = c.ws.graph().head(b).unwrap();
                    format!("{b}={} seq={}", h.id.short(), h.seq)
                })
                .collect();
        format!(
            "report={} usages={} shared={} stats={} physical={} heads={heads:?} clock={}",
            serde_json::to_string(c.merge.report.as_ref().unwrap()).unwrap(),
            serde_json::to_string(&c.ws.usages()).unwrap(),
            serde_json::to_string(&c.ws.shared_view()).unwrap(),
            serde_json::to_string(&c.ws.store().stats()).unwrap(),
            c.ws.store().physical_bytes(),
            serde_json::to_string(&c.clock.snapshot()).unwrap(),
        )
    };
    let sequential = run(ParallelismPolicy::Sequential);
    for workers in [1, 2, 8] {
        let parallel = run(ParallelismPolicy::Parallel(workers));
        assert_eq!(
            sequential, parallel,
            "cross-tenant merge with {workers} workers diverged"
        );
    }
}

#[test]
fn quota_breach_mid_cross_merge_releases_reservations_and_leaves_accounts() {
    let ws = Workspace::in_memory_small();
    let up = ws.add_tenant("up", QuotaPolicy::UNLIMITED).unwrap();
    let down = ws.add_tenant("down", QuotaPolicy::UNLIMITED).unwrap();
    let sys_up = toy_system(&up);
    let sys_down = toy_system(&down);
    let clock = ClockLedger::new();
    sys_up
        .commit_pipeline("master", &keys(&sys_up, 0, 0), "up initial", &clock)
        .unwrap();
    up.grant_to("down", ShareRight::MergeInto).unwrap();
    down.fork_from("up", "master", "feature").unwrap();
    // Diverge both sides so the merge needs a real search.
    sys_up
        .commit_pipeline("master", &keys(&sys_up, 1, 0), "up scaler", &clock)
        .unwrap();
    sys_down
        .commit_pipeline("feature", &keys(&sys_down, 0, 1), "down model", &clock)
        .unwrap();
    sys_down
        .commit_pipeline("feature", &keys(&sys_down, 0, 2), "down model 2", &clock)
        .unwrap();

    // Clamp downstream's quota to its current usage: the merge search's
    // first attributed write must breach.
    ws.store()
        .tenant_accounts()
        .register(down.id(), QuotaPolicy::logical(down.usage().logical_bytes));
    let before = accounting_fingerprint(&ws);
    for policy in [
        ParallelismPolicy::Sequential,
        ParallelismPolicy::Parallel(8),
    ] {
        // Re-open over the same registry: opening writes nothing, so the
        // clamped quota stays exactly at current usage.
        let dag = PipelineDag::chain(&toy_slots()).unwrap();
        let sys = down
            .open_pipeline("toy", dag, Arc::clone(sys_down.registry()))
            .with_parallelism(policy);
        let err = sys
            .merge_into("up", "master", "feature", MergeStrategy::Full, &clock)
            .unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Pipeline(PipelineError::Storage(StorageError::QuotaExceeded { .. }))
            ),
            "unexpected error: {err}"
        );
        assert_eq!(
            accounting_fingerprint(&ws),
            before,
            "aborted merge must release every reservation and charge nothing"
        );
    }
    // Raising the quota unblocks the identical merge.
    ws.store()
        .tenant_accounts()
        .register(down.id(), QuotaPolicy::UNLIMITED);
    let merged = sys_down
        .merge_into("up", "master", "feature", MergeStrategy::Full, &clock)
        .unwrap();
    assert!(merged.commit.is_some());
    assert_eq!(ws.store().tenant_accounts().open_reservations(), 0);
}

#[test]
fn merge_from_pulls_peer_work_into_own_namespace() {
    let ws = Workspace::in_memory_small();
    let up = ws.add_tenant("up", QuotaPolicy::UNLIMITED).unwrap();
    let down = ws.add_tenant("down", QuotaPolicy::UNLIMITED).unwrap();
    let sys_up = toy_system(&up);
    let sys_down = toy_system(&down);
    let clock = ClockLedger::new();
    sys_up
        .commit_pipeline("master", &keys(&sys_up, 0, 0), "up initial", &clock)
        .unwrap();
    up.grant_to("down", ShareRight::Fork).unwrap();
    down.fork_from("up", "master", "main").unwrap();
    sys_up
        .commit_pipeline("master", &keys(&sys_up, 1, 0), "up scaler", &clock)
        .unwrap();
    sys_down
        .commit_pipeline("main", &keys(&sys_down, 0, 1), "down model", &clock)
        .unwrap();
    // Fork implies Read, so downstream can pull upstream's advance into its
    // own branch; the commit lands in *downstream's* namespace.
    let out = sys_down
        .merge_from("main", "up", "master", MergeStrategy::Full, &clock)
        .unwrap();
    let commit = out.commit.unwrap();
    assert_eq!(commit.branch, "down/main");
    assert_eq!(commit.parents.len(), 2);
    // The merged pipeline combines both teams' best components.
    let meta = sys_down.head_metafile("main").unwrap();
    assert_eq!(
        meta.component_version("test_scaler").unwrap(),
        &keys(&sys_down, 1, 0)[1]
    );
    assert_eq!(
        meta.component_version("test_model").unwrap(),
        &keys(&sys_down, 0, 1)[2]
    );
    // Upstream's branch is untouched by the pull.
    assert_eq!(ws.graph().head("up/master").unwrap().seq, 1);
}
