//! Provenance-keyed incremental re-evaluation: the frontier-cut fast path
//! must be an *invisible* optimisation. Reports stay byte-identical to full
//! re-evaluation at every worker count, data changes invalidate the cut,
//! and cross-tenant accounting cannot move by a byte when a peer's cached
//! prefix is reused.

use mlcask_core::history::HistoryIndex;
use mlcask_core::merge::{MergeEngine, MergeSearchReport, MergeStrategy};
use mlcask_core::registry::ComponentRegistry;
use mlcask_core::system::MlCask;
use mlcask_core::testkit::{toy_model, toy_scaler, toy_slots, toy_source};
use mlcask_core::workspace::{Tenant, Workspace};
use mlcask_pipeline::clock::ClockLedger;
use mlcask_pipeline::component::ComponentKey;
use mlcask_pipeline::dag::PipelineDag;
use mlcask_pipeline::executor::{ExecOptions, Executor};
use mlcask_pipeline::parallel::ParallelismPolicy;
use mlcask_pipeline::provenance::Incremental;
use mlcask_pipeline::replay::ProfileBook;
use mlcask_pipeline::semver::SemVer;
use mlcask_storage::store::ChunkStore;
use mlcask_storage::tenant::{QuotaPolicy, ShareRight};
use mlcask_workloads::whatif::{self, WhatIf};
use std::sync::Arc;

/// A primed what-if system: the base pipeline committed to history and
/// lifted into the provenance index, exactly as `MlCask::commit_pipeline`
/// leaves it.
struct Primed {
    w: WhatIf,
    reg: ComponentRegistry,
    history: HistoryIndex,
}

fn primed() -> Primed {
    let w = whatif::build();
    let store = Arc::new(ChunkStore::in_memory());
    let reg = ComponentRegistry::new(store);
    w.register_all(&reg).unwrap();
    let history = HistoryIndex::new();
    let engine = MergeEngine::new(&reg, reg.store(), Arc::new(w.dag()));
    let bound = engine.bind(&w.base).unwrap();
    Executor::new(reg.store())
        .run(
            &bound,
            &ClockLedger::new(),
            Some(&history),
            ExecOptions::MLCASK,
        )
        .unwrap();
    history.provenance().absorb(&bound, &history).unwrap();
    Primed { w, reg, history }
}

/// One what-if search on a *fresh* primed system — a search warms the
/// history it runs over, so comparable runs each get their own.
fn search(policy: ParallelismPolicy, incremental: bool) -> MergeSearchReport {
    let p = primed();
    let engine = MergeEngine::new(&p.reg, p.reg.store(), Arc::new(p.w.dag()))
        .with_parallelism(policy)
        .with_incremental(incremental);
    engine
        .search(
            &p.w.spaces(),
            &p.history,
            MergeStrategy::Full,
            &ClockLedger::new(),
        )
        .unwrap()
}

/// Serialized report with the frontier telemetry zeroed — the only field
/// allowed to differ between incremental and full re-evaluation.
fn normalized(report: &MergeSearchReport) -> String {
    let mut r = report.clone();
    r.skipped_by_frontier = 0;
    serde_json::to_string(&r).unwrap()
}

#[test]
fn incremental_report_byte_identical_to_full_reevaluation() {
    let full = search(ParallelismPolicy::Sequential, false);
    let inc = search(ParallelismPolicy::Sequential, true);
    assert_eq!(full.skipped_by_frontier, 0, "full re-evaluation never cuts");
    assert!(
        inc.skipped_by_frontier > 0,
        "the shared prefix must be cut out of the what-if candidates"
    );
    assert_eq!(
        normalized(&full),
        normalized(&inc),
        "frontier cuts must not move the report by a byte"
    );
}

#[test]
fn incremental_search_deterministic_across_worker_counts() {
    let reference = search(ParallelismPolicy::Sequential, true);
    let reference_obs = normalized(&reference);
    for workers in [1usize, 2, 8] {
        let policy = if workers == 1 {
            ParallelismPolicy::Sequential
        } else {
            ParallelismPolicy::Parallel(workers)
        };
        let report = search(policy, true);
        assert_eq!(
            normalized(&report),
            reference_obs,
            "incremental search diverged at {workers} workers"
        );
        assert_eq!(
            report.skipped_by_frontier, reference.skipped_by_frontier,
            "frontier telemetry must be worker-count independent"
        );
    }
}

#[test]
fn data_artifact_change_invalidates_the_frontier() {
    let p = primed();
    let engine = MergeEngine::new(&p.reg, p.reg.store(), Arc::new(p.w.dag()));
    let executor = Executor::new(p.reg.store());
    let snapshot = Arc::new(p.history.provenance().snapshot());
    let run = |keys: &[ComponentKey]| {
        let bound = engine.bind(keys).unwrap();
        let inc = Incremental {
            snapshot: Arc::clone(&snapshot),
            live: p.history.provenance(),
            gate: None,
        };
        executor
            .run_traced_incremental(
                &bound,
                &p.history,
                &ProfileBook::new(),
                false,
                ParallelismPolicy::Sequential,
                Some(&inc),
            )
            .unwrap()
    };
    // Re-evaluating the committed pipeline verbatim: everything is cut.
    let cached = run(&p.w.base);
    assert_eq!(cached.skipped_by_frontier, p.w.base.len());
    // Swapping the ingest version produces *different data*, so every
    // downstream fingerprint changes and nothing may be reused statically.
    let invalidated = run(&p.w.swap_ingest());
    assert_eq!(
        invalidated.skipped_by_frontier, 0,
        "a data-artifact change must invalidate the whole frontier"
    );
}

/// Opens the toy chain pipeline for a tenant (registry over its store view).
fn toy_system(t: &Tenant, incremental: bool) -> MlCask {
    let registry = Arc::new(ComponentRegistry::with_exe_size(
        Arc::clone(t.store()),
        4096,
    ));
    for c in [
        toy_source(SemVer::master(0, 0), 4, 16),
        toy_scaler(SemVer::master(0, 0), 4, 4, 1.0),
        toy_scaler(SemVer::master(0, 1), 4, 4, 2.0),
        toy_model(SemVer::master(0, 0), 4, 0.5),
        toy_model(SemVer::master(0, 1), 4, 0.6),
    ] {
        registry.register(c).unwrap();
    }
    let dag = PipelineDag::chain(&toy_slots()).unwrap();
    t.open_pipeline("toy", dag, registry)
        .with_incremental(incremental)
}

fn keys(sys: &MlCask, scaler_inc: usize, model_inc: usize) -> Vec<ComponentKey> {
    let reg = sys.registry();
    vec![
        reg.versions_of("test_source")[0].clone(),
        reg.versions_of("test_scaler")[scaler_inc].clone(),
        reg.versions_of("test_model")[model_inc].clone(),
    ]
}

/// Everything tenant accounting observes, plus the merge report with the
/// frontier telemetry zeroed.
fn cross_tenant_fingerprint(incremental: bool) -> (String, usize) {
    let ws = Workspace::in_memory_small();
    let up = ws.add_tenant("up", QuotaPolicy::UNLIMITED).unwrap();
    let down = ws.add_tenant("down", QuotaPolicy::UNLIMITED).unwrap();
    let sys_up = toy_system(&up, incremental);
    let sys_down = toy_system(&down, incremental);
    let clock = ClockLedger::new();
    sys_up
        .commit_pipeline("master", &keys(&sys_up, 0, 0), "up initial", &clock)
        .unwrap();
    up.grant_to("down", ShareRight::MergeInto).unwrap();
    down.fork_from("up", "master", "feature").unwrap();
    // Diverge both sides so the merge needs a real search; the shared
    // prefix (source + scaler 0) stays cached from upstream's commits.
    sys_up
        .commit_pipeline("master", &keys(&sys_up, 1, 0), "up scaler", &clock)
        .unwrap();
    sys_down
        .commit_pipeline("feature", &keys(&sys_down, 0, 1), "down model", &clock)
        .unwrap();
    let merged = sys_down
        .merge_into("up", "master", "feature", MergeStrategy::Full, &clock)
        .unwrap();
    let mut report = merged.report.unwrap();
    let skipped = report.skipped_by_frontier;
    report.skipped_by_frontier = 0;
    let heads: Vec<String> = ws
        .graph()
        .branches()
        .iter()
        .map(|b| format!("{b}={}", ws.graph().head(b).unwrap().id.short()))
        .collect();
    let fp = format!(
        "report={} usages={} shared={} physical={} reserved={} heads={heads:?} clock={}",
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&ws.usages()).unwrap(),
        serde_json::to_string(&ws.shared_view()).unwrap(),
        ws.store().physical_bytes(),
        ws.store().tenant_accounts().open_reservations(),
        serde_json::to_string(&clock.snapshot()).unwrap(),
    );
    (fp, skipped)
}

#[test]
fn cross_tenant_accounting_unchanged_when_peer_prefix_is_reused() {
    let (without, skipped_off) = cross_tenant_fingerprint(false);
    let (with, skipped_on) = cross_tenant_fingerprint(true);
    assert_eq!(skipped_off, 0, "disabled systems must never cut");
    assert!(
        skipped_on > 0,
        "the cross-tenant merge must reuse the peer's cached prefix via the frontier"
    );
    assert_eq!(
        with, without,
        "frontier reuse must not move tenant accounting by a byte"
    );
}
