//! Telemetry stays strictly outside the determinism observables.
//!
//! The repo's core invariant is that reports, ledgers, and served bytes
//! are identical at any worker count. This suite extends that invariant
//! over the new `mlcask_obs` layer: the full served script must be
//! byte-identical with span tracing on or off, at any flight-recorder
//! capacity, at workers {1, 2, 8} — and the observability RPCs
//! (`metrics.scrape`, `obs.spans`, `obs.slow`) must expose the telemetry
//! without perturbing a single served byte.

use mlcask_core::testkit::{toy_model, toy_scaler, toy_slots, toy_source};
use mlcask_obs::{trace, MetricsRegistry};
use mlcask_pipeline::parallel::ParallelismPolicy;
use mlcask_server::limits::AdmissionControl;
use mlcask_server::service::{Router, ServerOptions};
use mlcask_workloads::common::Workload;
use serde::Value;

/// Three-stage toy workload (source → scaler → model) with one head and
/// one dev update, so the cross-tenant merge runs a real search.
fn toy_workload() -> Workload {
    let source = toy_source(mlcask_pipeline::semver::SemVer::master(0, 0), 4, 32);
    let scalers = vec![
        toy_scaler(mlcask_pipeline::semver::SemVer::master(0, 0), 4, 4, 1.0),
        toy_scaler(mlcask_pipeline::semver::SemVer::master(0, 1), 4, 4, 1.5),
    ];
    let models = vec![
        toy_model(mlcask_pipeline::semver::SemVer::master(0, 0), 4, 0.6),
        toy_model(mlcask_pipeline::semver::SemVer::master(0, 1), 4, 0.8),
    ];
    let initial = vec![source.key(), scalers[0].key(), models[0].key()];
    let head_updates = vec![vec![source.key(), scalers[0].key(), models[1].key()]];
    let dev_updates = vec![vec![source.key(), scalers[1].key(), models[0].key()]];
    let chains = vec![
        vec![source.key()],
        scalers.iter().map(|h| h.key()).collect(),
        models.iter().map(|h| h.key()).collect(),
    ];
    let incompat_update = (1, scalers[1].key());
    let mut handles = vec![source];
    handles.extend(scalers);
    handles.extend(models);
    Workload {
        name: "obs_toy".to_string(),
        slots: toy_slots().into_iter().map(String::from).collect(),
        handles,
        initial,
        chains,
        model_slot: 2,
        incompat_update,
        head_updates,
        dev_updates,
        edges: vec![],
    }
}

fn router(workers: usize) -> Router {
    Router::in_memory(
        toy_workload(),
        ServerOptions {
            parallelism: if workers <= 1 {
                ParallelismPolicy::Sequential
            } else {
                ParallelismPolicy::Parallel(workers)
            },
            coarse_lock: false,
            admission: AdmissionControl::unlimited(),
        },
    )
}

fn rpc(router: &Router, method: &str, params: &str) -> String {
    let line = format!(r#"{{"id":0,"method":"{method}","params":{params}}}"#);
    let resp = router.handle_text(&line);
    assert!(!resp.contains(r#""error""#), "rpc {method} failed: {resp}");
    resp
}

fn result_of(line: &str) -> Value {
    let v: Value = serde_json::from_str(line).expect("response parses");
    serde::map_get(v.as_map().expect("response is an object"), "result")
        .cloned()
        .expect("response has a result")
}

/// The full served script — sessions, commits, grant/fork, merge, log,
/// usages — returning the concatenated response lines (the determinism
/// observation).
fn served_script(workers: usize) -> String {
    let r = router(workers);
    let w = toy_workload();
    let spec = |keys: &[mlcask_pipeline::component::ComponentKey]| -> String {
        let items: Vec<String> = keys
            .iter()
            .map(|k| format!(r#""{}@{}""#, k.name, k.version))
            .collect();
        format!("[{}]", items.join(","))
    };
    let mut out = Vec::new();
    out.push(rpc(&r, "session.open", r#"{"tenant":"upstream"}"#));
    out.push(rpc(&r, "session.open", r#"{"tenant":"downstream"}"#));
    out.push(rpc(
        &r,
        "commit",
        &format!(
            r#"{{"session":1,"branch":"master","components":{},"message":"initial"}}"#,
            spec(&w.initial)
        ),
    ));
    out.push(rpc(
        &r,
        "grant",
        r#"{"session":1,"peer":"downstream","right":"merge_into"}"#,
    ));
    out.push(rpc(
        &r,
        "fork",
        r#"{"session":2,"peer":"upstream","branch":"master","new_branch":"feature"}"#,
    ));
    for keys in &w.head_updates {
        out.push(rpc(
            &r,
            "commit",
            &format!(
                r#"{{"session":1,"branch":"master","components":{},"message":"head"}}"#,
                spec(keys)
            ),
        ));
    }
    for keys in &w.dev_updates {
        out.push(rpc(
            &r,
            "commit",
            &format!(
                r#"{{"session":2,"branch":"feature","components":{},"message":"dev"}}"#,
                spec(keys)
            ),
        ));
    }
    out.push(rpc(
        &r,
        "merge.into",
        r#"{"session":2,"peer":"upstream","peer_branch":"master","merging":"feature","strategy":"full"}"#,
    ));
    out.push(rpc(
        &r,
        "log",
        r#"{"session":1,"branch":"master","limit":50}"#,
    ));
    out.push(rpc(&r, "usage", r#"{"session":1}"#));
    out.push(rpc(&r, "usage", r#"{"session":2}"#));
    out.push(rpc(&r, "workspace.usage", "{}"));
    out.join("\n")
}

/// The tentpole's hard constraint, as one sweep: tracing {off, on} ×
/// recorder capacity {0, 64, 4096} × workers {1, 2, 8} must serve
/// byte-identical scripts. Afterwards (tracing on) the obs RPCs must see
/// the spans the sweep recorded.
///
/// One test (not several) because the flight recorder is process-global:
/// sequential cells can't race another test's `configure`.
#[test]
fn served_bytes_identical_across_tracing_and_capacity() {
    let rec = trace::recorder();
    let (restore_enabled, restore_capacity) = (rec.is_enabled(), rec.capacity());
    let mut reference: Option<String> = None;
    for enabled in [false, true] {
        for capacity in [0usize, 64, 4096] {
            rec.configure(enabled, capacity);
            for workers in [1usize, 2, 8] {
                let obs = served_script(workers);
                match &reference {
                    None => reference = Some(obs),
                    Some(r) => assert_eq!(
                        &obs, r,
                        "served bytes diverged: tracing={enabled} capacity={capacity} workers={workers}"
                    ),
                }
            }
            if enabled && capacity > 0 {
                assert!(
                    !rec.recent(16).is_empty(),
                    "tracing-on cells must retain spans (capacity={capacity})"
                );
            }
            if enabled && capacity == 0 {
                assert!(
                    rec.recent(16).is_empty(),
                    "capacity 0 must retain nothing (seq still advances)"
                );
            }
        }
    }

    // With spans retained from the last (enabled, 4096) cell, the obs RPCs
    // expose them — through the same daemon surface the sweep measured.
    let r = router(1);
    let spans = result_of(&rpc(&r, "obs.spans", r#"{"n":32}"#));
    let m = spans.as_map().expect("obs.spans returns an object");
    assert_eq!(serde::map_get(m, "enabled"), Some(&Value::Bool(true)));
    let listed = serde::map_get(m, "spans")
        .and_then(|s| s.as_seq())
        .expect("spans field is an array");
    assert!(!listed.is_empty(), "recent spans are exposed");
    for span in listed {
        let sm = span.as_map().expect("span is an object");
        for field in ["seq", "name", "thread", "end_unix_micros", "duration_nanos"] {
            assert!(serde::map_get(sm, field).is_some(), "span has `{field}`");
        }
    }
    let slow = result_of(&rpc(&r, "obs.slow", r#"{"n":3}"#));
    let slow = slow.as_seq().expect("obs.slow returns an array");
    assert!(slow.len() <= 3, "obs.slow honours n");
    // Slowest-first ordering.
    let dur = |v: &Value| -> u64 {
        match serde::map_get(v.as_map().unwrap(), "duration_nanos") {
            Some(Value::U64(n)) => *n,
            other => panic!("duration_nanos: {other:?}"),
        }
    };
    for pair in slow.windows(2) {
        assert!(dur(&pair[0]) >= dur(&pair[1]), "obs.slow sorts descending");
    }

    rec.configure(restore_enabled, restore_capacity);
}

/// `metrics.scrape` over the daemon surface returns a Prometheus text
/// exposition carrying the per-method/per-tenant request series the serving
/// instrumentation records.
#[test]
fn metrics_scrape_exposes_request_series() {
    let r = router(1);
    rpc(&r, "session.open", r#"{"tenant":"scrape_tenant"}"#);
    // Find this router's session id (the registry is global; other tests
    // may have opened sessions first).
    let info = result_of(&rpc(&r, "server.info", "{}"));
    assert!(serde::map_get(info.as_map().unwrap(), "open_sessions").is_some());
    let text = match result_of(&rpc(&r, "metrics.scrape", "{}")) {
        Value::Str(s) => s,
        other => panic!("scrape returns text: {other:?}"),
    };
    for needle in [
        "# TYPE mlcask_server_request_seconds histogram",
        "# TYPE mlcask_server_requests_total counter",
        r#"method="session.open""#,
        "mlcask_server_request_seconds_bucket",
        "mlcask_server_request_seconds_sum",
        "mlcask_server_request_seconds_count",
    ] {
        assert!(text.contains(needle), "scrape missing `{needle}`:\n{text}");
    }
    // The session-scoped request recorded under its tenant label. (The
    // `usage` call below lands after this scrape; scrape again to see it.)
    rpc(&r, "usage", r#"{"session":1}"#);
    let text = match result_of(&rpc(&r, "metrics.scrape", "{}")) {
        Value::Str(s) => s,
        other => panic!("scrape returns text: {other:?}"),
    };
    assert!(
        text.contains(r#"tenant="scrape_tenant""#),
        "per-tenant series missing:\n{text}"
    );
}

/// Golden scrape: exact Prometheus text for a hand-built (local, not
/// global) registry — families sorted by name, series by label set,
/// cumulative buckets with `+Inf`, and label values escaped.
#[test]
fn prometheus_rendering_matches_golden() {
    let reg = MetricsRegistry::new();
    reg.counter(
        "t_requests_total",
        "Requests served",
        &[("tenant", "a\"b\\c\nd"), ("method", "log")],
    )
    .add(3);
    reg.gauge("t_hit_rate", "Hit rate", &[]).set(0.5);
    let h = reg.histogram(
        "t_lat_seconds",
        "Latency",
        &[("stage", "merge")],
        &[0.3, 1.0],
    );
    h.observe(0.25);
    h.observe(0.5);
    h.observe(4.0);
    let golden = "# HELP t_hit_rate Hit rate\n\
                  # TYPE t_hit_rate gauge\n\
                  t_hit_rate 0.5\n\
                  # HELP t_lat_seconds Latency\n\
                  # TYPE t_lat_seconds histogram\n\
                  t_lat_seconds_bucket{stage=\"merge\",le=\"0.3\"} 1\n\
                  t_lat_seconds_bucket{stage=\"merge\",le=\"1\"} 2\n\
                  t_lat_seconds_bucket{stage=\"merge\",le=\"+Inf\"} 3\n\
                  t_lat_seconds_sum{stage=\"merge\"} 4.75\n\
                  t_lat_seconds_count{stage=\"merge\"} 3\n\
                  # HELP t_requests_total Requests served\n\
                  # TYPE t_requests_total counter\n\
                  t_requests_total{method=\"log\",tenant=\"a\\\"b\\\\c\\nd\"} 3\n";
    assert_eq!(reg.render_prometheus(), golden);
}

/// Registry-backed storage counters keep their pre-registry accessor
/// semantics: two backends in one process count independently.
#[test]
fn per_instance_counters_stay_independent() {
    let a = tempdir("obs-cask-a");
    let b = tempdir("obs-cask-b");
    let ba = mlcask_storage::cask::CaskBackend::open(&a).expect("cask backend opens");
    let bb = mlcask_storage::cask::CaskBackend::open(&b).expect("cask backend opens");
    use mlcask_storage::backend::StorageBackend;
    ba.put(mlcask_storage::hash::Hash256::of(b"a"), b"a")
        .unwrap();
    ba.flush().unwrap();
    assert!(ba.append_count() >= 1);
    assert_eq!(bb.append_count(), 0, "instances must not share series");
    drop(ba);
    drop(bb);
    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mlcask-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
