//! Serving-path integration: concurrent reader sessions against the
//! JSON-RPC router while a cross-tenant merge runs live, plus byte
//! determinism of the full served script across worker counts.
//!
//! These tests drive the daemon surface (`mlcask_server::service::Router`)
//! rather than the library API: every assertion is over response *lines*,
//! so the protocol encoding, the session machinery, and the snapshot-
//! isolated read path are all in the loop.

use mlcask_core::testkit::{toy_model, toy_scaler, toy_slots, toy_source};
use mlcask_pipeline::parallel::ParallelismPolicy;
use mlcask_pipeline::semver::SemVer;
use mlcask_server::limits::AdmissionControl;
use mlcask_server::service::{Router, ServerOptions};
use mlcask_workloads::common::Workload;
use serde::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

/// A three-stage toy workload (source → scaler → model) cheap enough to
/// merge in debug builds, with one head update and one dev update so the
/// cross-tenant merge runs a real (non-fast-forward) search.
fn toy_workload() -> Workload {
    let source = toy_source(SemVer::master(0, 0), 4, 32);
    let scalers = vec![
        toy_scaler(SemVer::master(0, 0), 4, 4, 1.0),
        toy_scaler(SemVer::master(0, 1), 4, 4, 1.5),
    ];
    let models = vec![
        toy_model(SemVer::master(0, 0), 4, 0.6),
        toy_model(SemVer::master(0, 1), 4, 0.8),
    ];
    let initial = vec![source.key(), scalers[0].key(), models[0].key()];
    let head_updates = vec![vec![source.key(), scalers[0].key(), models[1].key()]];
    let dev_updates = vec![vec![source.key(), scalers[1].key(), models[0].key()]];
    let chains = vec![
        vec![source.key()],
        scalers.iter().map(|h| h.key()).collect(),
        models.iter().map(|h| h.key()).collect(),
    ];
    let incompat_update = (1, scalers[1].key());
    let mut handles = vec![source];
    handles.extend(scalers);
    handles.extend(models);
    Workload {
        name: "serving_toy".to_string(),
        slots: toy_slots().into_iter().map(String::from).collect(),
        handles,
        initial,
        chains,
        model_slot: 2,
        incompat_update,
        head_updates,
        dev_updates,
        edges: vec![],
    }
}

fn router(workers: usize) -> Router {
    Router::in_memory(
        toy_workload(),
        ServerOptions {
            parallelism: if workers <= 1 {
                ParallelismPolicy::Sequential
            } else {
                ParallelismPolicy::Parallel(workers)
            },
            coarse_lock: false,
            admission: AdmissionControl::unlimited(),
        },
    )
}

/// Issues one request and asserts the response carries no error.
fn rpc(router: &Router, method: &str, params: &str) -> String {
    let line = format!(r#"{{"id":0,"method":"{method}","params":{params}}}"#);
    let resp = router.handle_text(&line);
    assert!(!resp.contains(r#""error""#), "rpc {method} failed: {resp}");
    resp
}

/// `result` field of a response line.
fn result_of(line: &str) -> Value {
    let v: Value = serde_json::from_str(line).expect("response parses");
    serde::map_get(v.as_map().expect("response is an object"), "result")
        .cloned()
        .expect("response has a result")
}

fn str_field(v: &Value, key: &str) -> String {
    match serde::map_get(v.as_map().unwrap(), key) {
        Some(Value::Str(s)) => s.clone(),
        other => panic!("field {key}: {other:?}"),
    }
}

fn u64_field(v: &Value, key: &str) -> u64 {
    match serde::map_get(v.as_map().unwrap(), key) {
        Some(Value::U64(n)) => *n,
        other => panic!("field {key}: {other:?}"),
    }
}

/// Upstream (session 1) commits its history, grants downstream
/// (session 2), which forks `feature` and diverges — the point where a
/// non-fast-forward merge back into `upstream/master` is pending.
fn setup_collaboration(r: &Router, w: &Workload) -> Vec<String> {
    let spec = |keys: &[mlcask_pipeline::component::ComponentKey]| -> String {
        let items: Vec<String> = keys
            .iter()
            .map(|k| format!(r#""{}@{}""#, k.name, k.version))
            .collect();
        format!("[{}]", items.join(","))
    };
    let mut out = Vec::new();
    out.push(rpc(r, "session.open", r#"{"tenant":"upstream"}"#));
    out.push(rpc(r, "session.open", r#"{"tenant":"downstream"}"#));
    out.push(rpc(
        r,
        "commit",
        &format!(
            r#"{{"session":1,"branch":"master","components":{},"message":"initial"}}"#,
            spec(&w.initial)
        ),
    ));
    out.push(rpc(
        r,
        "grant",
        r#"{"session":1,"peer":"downstream","right":"merge_into"}"#,
    ));
    out.push(rpc(
        r,
        "fork",
        r#"{"session":2,"peer":"upstream","branch":"master","new_branch":"feature"}"#,
    ));
    for (i, keys) in w.head_updates.iter().enumerate() {
        out.push(rpc(
            r,
            "commit",
            &format!(
                r#"{{"session":1,"branch":"master","components":{},"message":"head {i}"}}"#,
                spec(keys)
            ),
        ));
    }
    for (i, keys) in w.dev_updates.iter().enumerate() {
        out.push(rpc(
            r,
            "commit",
            &format!(
                r#"{{"session":2,"branch":"feature","components":{},"message":"dev {i}"}}"#,
                spec(keys)
            ),
        ));
    }
    out
}

const MERGE: &str = r#"{"session":2,"peer":"upstream","peer_branch":"master","merging":"feature","strategy":"full"}"#;

/// Asserts one `log` response is an untorn lineage: entries linked by
/// first parent, sequence numbers strictly descending to the root.
fn assert_consistent_lineage(log: &Value) {
    let entries = log.as_seq().expect("log is an array");
    assert!(!entries.is_empty(), "log never comes back empty");
    for pair in entries.windows(2) {
        let parents = serde::map_get(pair[0].as_map().unwrap(), "parents")
            .and_then(|p| p.as_seq())
            .expect("commit has parents");
        let first_parent = match &parents[0] {
            Value::Str(id) => id.clone(),
            other => panic!("parent id: {other:?}"),
        };
        assert_eq!(
            first_parent,
            str_field(&pair[1], "id"),
            "log entries must chain by first parent"
        );
        assert_eq!(
            u64_field(&pair[0], "seq"),
            u64_field(&pair[1], "seq") + 1,
            "first-parent walk descends one seq per step"
        );
    }
    let last = entries.last().unwrap();
    assert_eq!(u64_field(last, "seq"), 0, "walk reaches the branch root");
}

/// N reader sessions walk `upstream/master` (log + head + branches +
/// usage) while downstream's full merge search runs. Every response each
/// reader sees must be internally consistent — a torn branch→commit read
/// would either error or break the first-parent chain.
#[test]
fn readers_never_tear_under_live_merge() {
    const READERS: usize = 6;
    let r = Arc::new(router(1));
    let w = toy_workload();
    setup_collaboration(&r, &w);
    for _ in 0..READERS {
        rpc(&r, "session.open", r#"{"tenant":"upstream"}"#);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(READERS + 1));
    let mut handles = Vec::new();
    for i in 0..READERS {
        let r = Arc::clone(&r);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        let session = 3 + i as u64;
        handles.push(std::thread::spawn(move || {
            let mut walks = 0u64;
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                let log = result_of(&rpc(
                    &r,
                    "log",
                    &format!(r#"{{"session":{session},"branch":"master","limit":50}}"#),
                ));
                assert_consistent_lineage(&log);
                let head = result_of(&rpc(
                    &r,
                    "head",
                    &format!(r#"{{"session":{session},"branch":"master"}}"#),
                ));
                assert_eq!(str_field(&head, "branch"), "upstream/master");
                rpc(&r, "branches", &format!(r#"{{"session":{session}}}"#));
                rpc(&r, "usage", &format!(r#"{{"session":{session}}}"#));
                walks += 1;
            }
            walks
        }));
    }
    barrier.wait();
    let merged = result_of(&rpc(&r, "merge.into", MERGE));
    stop.store(true, Ordering::Relaxed);
    let walks: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(walks > 0, "readers made progress during the merge");
    assert_eq!(
        serde::map_get(merged.as_map().unwrap(), "committed"),
        Some(&Value::Bool(true)),
        "live merge commits"
    );
    // After the merge lands, a fresh walk sees it at the head with both
    // parents, still a consistent lineage.
    let log = result_of(&rpc(
        &r,
        "log",
        r#"{"session":3,"branch":"master","limit":50}"#,
    ));
    assert_consistent_lineage(&log);
    let head = &log.as_seq().unwrap()[0];
    let parents = serde::map_get(head.as_map().unwrap(), "parents")
        .and_then(|p| p.as_seq())
        .unwrap();
    assert_eq!(parents.len(), 2, "head is the merge commit");
}

/// The complete served script — setup, merge, log, usages — must produce
/// byte-identical response lines at workers {1, 2, 8}: parallel merge
/// search changes wall-clock only, never a served byte.
#[test]
fn served_bytes_identical_across_worker_counts() {
    let run = |workers: usize| -> Vec<String> {
        let r = router(workers);
        let w = toy_workload();
        let mut out = setup_collaboration(&r, &w);
        out.push(rpc(&r, "merge.into", MERGE));
        out.push(rpc(
            &r,
            "log",
            r#"{"session":1,"branch":"master","limit":50}"#,
        ));
        out.push(rpc(&r, "usage", r#"{"session":1}"#));
        out.push(rpc(&r, "usage", r#"{"session":2}"#));
        out.push(rpc(&r, "workspace.usage", "{}"));
        out
    };
    let reference = run(1);
    for workers in [2usize, 8] {
        assert_eq!(
            run(workers),
            reference,
            "served bytes diverged at {workers} workers"
        );
    }
}
