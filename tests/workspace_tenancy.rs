//! Multi-tenant workspace semantics: shared-store dedup attribution,
//! quota enforcement, batched-commit equivalence, orphan GC, and parallel
//! determinism of a multi-tenant workload.

use mlcask_core::errors::CoreError;
use mlcask_core::registry::ComponentRegistry;
use mlcask_core::system::MlCask;
use mlcask_core::testkit::{toy_model, toy_scaler, toy_slots, toy_source};
use mlcask_core::workspace::{Tenant, Workspace};
use mlcask_pipeline::clock::ClockLedger;
use mlcask_pipeline::component::ComponentKey;
use mlcask_pipeline::dag::PipelineDag;
use mlcask_pipeline::errors::PipelineError;
use mlcask_pipeline::parallel::ParallelismPolicy;
use mlcask_pipeline::semver::SemVer;
use mlcask_storage::errors::StorageError;
use mlcask_storage::tenant::QuotaPolicy;
use mlcask_workloads::fusion;
use mlcask_workloads::scenario::{build_multi_tenant, setup_nonlinear};
use std::sync::Arc;

/// Opens the toy chain pipeline for a tenant (registry over its store view).
fn toy_system(t: &Tenant) -> MlCask {
    let registry = Arc::new(ComponentRegistry::with_exe_size(
        Arc::clone(t.store()),
        4096,
    ));
    for c in [
        toy_source(SemVer::master(0, 0), 4, 16),
        toy_scaler(SemVer::master(0, 0), 4, 4, 1.0),
        toy_scaler(SemVer::master(0, 1), 4, 4, 2.0),
        toy_model(SemVer::master(0, 0), 4, 0.5),
        toy_model(SemVer::master(0, 1), 4, 0.6),
        toy_model(SemVer::master(0, 2), 4, 0.7),
    ] {
        registry.register(c).unwrap();
    }
    let dag = PipelineDag::chain(&toy_slots()).unwrap();
    t.open_pipeline("toy", dag, registry)
}

fn keys(sys: &MlCask, scaler_inc: usize, model_inc: usize) -> Vec<ComponentKey> {
    let reg = sys.registry();
    vec![
        reg.versions_of("test_source")[0].clone(),
        reg.versions_of("test_scaler")[scaler_inc].clone(),
        reg.versions_of("test_model")[model_inc].clone(),
    ]
}

fn is_quota_error(err: &CoreError) -> bool {
    matches!(
        err,
        CoreError::Pipeline(PipelineError::Storage(StorageError::QuotaExceeded { .. }))
    )
}

#[test]
fn dedup_attribution_across_two_tenants() {
    let ws = Workspace::in_memory_small();
    let a = ws.add_tenant("team_a", QuotaPolicy::UNLIMITED).unwrap();
    let b = ws.add_tenant("team_b", QuotaPolicy::UNLIMITED).unwrap();
    let sys_a = toy_system(&a);
    let sys_b = toy_system(&b);
    let clock = ClockLedger::new();
    // Both tenants commit the identical pipeline: identical library
    // executables and identical component outputs.
    sys_a
        .commit_pipeline("master", &keys(&sys_a, 0, 0), "a initial", &clock)
        .unwrap();
    let physical_after_a = ws.store().physical_bytes();
    sys_b
        .commit_pipeline("master", &keys(&sys_b, 0, 0), "b initial", &clock)
        .unwrap();
    // The shared chunks are stored once: tenant B added almost nothing
    // physically (only its namespaced metafile differs).
    let usage = ws.usages();
    assert!(usage["team_a"].physical_bytes > 0);
    assert!(
        usage["team_b"].physical_bytes < physical_after_a / 20,
        "tenant B re-paid {} of {}",
        usage["team_b"].physical_bytes,
        physical_after_a
    );
    // First-writer-pays attribution is conservative: tenant sums equal the
    // backend's physical bytes exactly.
    assert_eq!(
        usage["team_a"].physical_bytes + usage["team_b"].physical_bytes,
        ws.store().physical_bytes()
    );
    // Both tenants reference the shared chunks in the fair-share view.
    let shared = ws.shared_view();
    assert!(shared["team_b"].referenced_bytes > 0);
    assert!(shared["team_a"].amortized_bytes > shared["team_b"].amortized_bytes);
    // Isolation: each tenant sees only its own branches under its names.
    assert_eq!(
        ws.graph().branches(),
        vec!["team_a/master", "team_b/master"]
    );
    assert_eq!(
        sys_a.head_metafile("master").unwrap().label,
        "team_a/master.0"
    );
    assert_eq!(
        sys_b.head_metafile("master").unwrap().label,
        "team_b/master.0"
    );
}

#[test]
fn quota_breach_aborts_commit_and_search_without_corrupting_graph() {
    let ws = Workspace::in_memory_small();
    let t = ws.add_tenant("team", QuotaPolicy::UNLIMITED).unwrap();
    let sys = toy_system(&t);
    let clock = ClockLedger::new();
    sys.commit_pipeline("master", &keys(&sys, 0, 0), "initial", &clock)
        .unwrap();
    sys.branch("master", "dev").unwrap();
    sys.commit_pipeline("master", &keys(&sys, 1, 0), "head scaler", &clock)
        .unwrap();
    sys.commit_pipeline("dev", &keys(&sys, 0, 1), "dev model", &clock)
        .unwrap();
    let head_before = sys.graph().head("team/master").unwrap();
    let commits_before = sys.graph().len();

    // Clamp the quota to the bytes already used: the next attributed write
    // breaches.
    let used = t.usage().logical_bytes;
    ws.store()
        .tenant_accounts()
        .register(t.id(), QuotaPolicy::logical(used));

    // A fresh commit aborts mid-run...
    let err = sys
        .commit_pipeline("master", &keys(&sys, 1, 2), "over quota", &clock)
        .unwrap_err();
    assert!(is_quota_error(&err), "unexpected error: {err}");
    // ...and so does the merge search, whose candidate evaluations write
    // through the same tenant view.
    let err = sys
        .merge(
            "master",
            "dev",
            mlcask_core::merge::MergeStrategy::Full,
            &clock,
        )
        .unwrap_err();
    assert!(is_quota_error(&err), "unexpected error: {err}");

    // The graph is untouched: same head, same commit count, and the
    // workspace still works once the quota is raised.
    assert_eq!(sys.graph().head("team/master").unwrap().id, head_before.id);
    assert_eq!(sys.graph().len(), commits_before);
    ws.store()
        .tenant_accounts()
        .register(t.id(), QuotaPolicy::UNLIMITED);
    let merged = sys
        .merge(
            "master",
            "dev",
            mlcask_core::merge::MergeStrategy::Full,
            &clock,
        )
        .unwrap();
    assert!(merged.commit.is_some(), "raised quota unblocks the merge");
}

#[test]
fn quota_of_one_tenant_does_not_throttle_another() {
    let ws = Workspace::in_memory_small();
    let starved = ws.add_tenant("starved", QuotaPolicy::UNLIMITED).unwrap();
    let healthy = ws.add_tenant("healthy", QuotaPolicy::UNLIMITED).unwrap();
    let clock = ClockLedger::new();
    let sys_starved = toy_system(&starved);
    let sys_healthy = toy_system(&healthy);
    // Starve the first tenant after registration: its next write breaches.
    ws.store().tenant_accounts().register(
        starved.id(),
        QuotaPolicy::logical(starved.usage().logical_bytes),
    );
    let err = sys_starved
        .commit_pipeline("master", &keys(&sys_starved, 0, 0), "nope", &clock)
        .unwrap_err();
    assert!(is_quota_error(&err), "{err}");
    // The healthy tenant shares the store but not the quota.
    sys_healthy
        .commit_pipeline("master", &keys(&sys_healthy, 0, 0), "fine", &clock)
        .unwrap();
    assert_eq!(ws.graph().branches(), vec!["healthy/master"]);
}

#[test]
fn batched_commits_equal_sequential_commits() {
    let updates = |sys: &MlCask| -> Vec<(Vec<ComponentKey>, String)> {
        vec![
            (keys(sys, 0, 0), "initial".into()),
            (keys(sys, 0, 1), "bump model".into()),
            (keys(sys, 1, 1), "bump scaler".into()),
            (keys(sys, 1, 2), "bump model again".into()),
        ]
    };
    // Sequential reference.
    let ws_seq = Workspace::in_memory_small();
    let t_seq = ws_seq.add_tenant("team", QuotaPolicy::UNLIMITED).unwrap();
    let sys_seq = toy_system(&t_seq);
    let clock_seq = ClockLedger::new();
    for (k, m) in updates(&sys_seq) {
        let res = sys_seq
            .commit_pipeline("master", &k, &m, &clock_seq)
            .unwrap();
        assert!(res.commit.is_some());
    }
    // Batched.
    let ws_b = Workspace::in_memory_small();
    let t_b = ws_b.add_tenant("team", QuotaPolicy::UNLIMITED).unwrap();
    let sys_b = toy_system(&t_b);
    let clock_b = ClockLedger::new();
    let results = ws_b
        .commit_batch(&sys_b, "master", &updates(&sys_b), &clock_b)
        .unwrap();
    assert!(results.iter().all(|r| r.commit.is_some()));

    // Same heads, same history: commit ids (which cover parents, seq,
    // payloads, messages, and ticks) match one for one.
    let head_seq = sys_seq.graph().head("team/master").unwrap();
    let head_b = sys_b.graph().head("team/master").unwrap();
    assert_eq!(head_seq.id, head_b.id);
    assert_eq!(head_seq.seq, 3);
    let anc_seq = sys_seq.graph().ancestors(head_seq.id).unwrap();
    let anc_b = sys_b.graph().ancestors(head_b.id).unwrap();
    assert_eq!(anc_seq, anc_b);
    // Same labels and metafiles at every commit.
    for r in &results {
        let c = r.commit.as_ref().unwrap();
        let meta_b = sys_b.metafile_of(c).unwrap();
        let meta_seq = sys_seq
            .metafile_of(&sys_seq.graph().get(c.id).unwrap())
            .unwrap();
        assert_eq!(
            serde_json::to_string(&meta_b).unwrap(),
            serde_json::to_string(&meta_seq).unwrap()
        );
    }
    // Same store statistics and history side-state; fewer graph appends.
    assert_eq!(
        serde_json::to_string(&ws_seq.store().stats()).unwrap(),
        serde_json::to_string(&ws_b.store().stats()).unwrap()
    );
    assert_eq!(
        ws_seq.store().physical_bytes(),
        ws_b.store().physical_bytes()
    );
    assert_eq!(sys_seq.history().len(), sys_b.history().len());
    assert_eq!(sys_seq.graph().append_ops(), 4);
    assert_eq!(sys_b.graph().append_ops(), 1, "one append for the batch");
}

#[test]
fn batch_with_rejected_update_commits_the_rest() {
    let ws = Workspace::in_memory_small();
    let t = ws.add_tenant("team", QuotaPolicy::UNLIMITED).unwrap();
    // Add a schema-changing scaler without a matching model: statically
    // doomed, so the precheck rejects that update inside the batch.
    let registry = Arc::new(ComponentRegistry::with_exe_size(
        Arc::clone(t.store()),
        4096,
    ));
    for c in [
        toy_source(SemVer::master(0, 0), 4, 16),
        toy_scaler(SemVer::master(0, 0), 4, 4, 1.0),
        toy_scaler(SemVer::master(1, 0), 4, 6, 3.0),
        toy_model(SemVer::master(0, 0), 4, 0.5),
        toy_model(SemVer::master(0, 1), 4, 0.6),
    ] {
        registry.register(c).unwrap();
    }
    let dag = PipelineDag::chain(&toy_slots()).unwrap();
    let sys = t.open_pipeline("toy", dag, registry);
    let reg = sys.registry();
    let src = reg.versions_of("test_source")[0].clone();
    let s00 = reg.versions_of("test_scaler")[0].clone();
    let s10 = reg.versions_of("test_scaler")[1].clone();
    let m00 = reg.versions_of("test_model")[0].clone();
    let m01 = reg.versions_of("test_model")[1].clone();
    let clock = ClockLedger::new();
    let updates = vec![
        (
            vec![src.clone(), s00.clone(), m00.clone()],
            "ok 1".to_string(),
        ),
        (
            vec![src.clone(), s10.clone(), m00.clone()],
            "doomed".to_string(),
        ),
        (
            vec![src.clone(), s00.clone(), m01.clone()],
            "ok 2".to_string(),
        ),
    ];
    let results = ws.commit_batch(&sys, "master", &updates, &clock).unwrap();
    assert_eq!(results.len(), 3);
    assert!(results[0].commit.is_some());
    assert!(
        results[1].commit.is_none(),
        "rejected update commits nothing"
    );
    assert!(results[2].commit.is_some());
    // The rejected update consumed no label: the survivors are seq 0 and 1.
    assert_eq!(results[2].commit.as_ref().unwrap().seq, 1);
    assert_eq!(sys.graph().head("team/master").unwrap().seq, 1);
    assert_eq!(sys.graph().append_ops(), 1);
}

#[test]
fn batch_hard_error_commits_completed_prefix() {
    // A hard error mid-batch (unregistered component) must mirror the
    // sequential driver: the updates that already completed land, then the
    // error surfaces — the graph ends where N sequential calls would.
    let ws = Workspace::in_memory_small();
    let t = ws.add_tenant("team", QuotaPolicy::UNLIMITED).unwrap();
    let sys = toy_system(&t);
    let clock = ClockLedger::new();
    let ghost = ComponentKey::new("test_model", SemVer::master(9, 9));
    let mut ghost_keys = keys(&sys, 0, 0);
    ghost_keys[2] = ghost;
    let updates = vec![
        (keys(&sys, 0, 0), "ok 1".to_string()),
        (keys(&sys, 0, 1), "ok 2".to_string()),
        (ghost_keys, "unresolvable".to_string()),
        (keys(&sys, 0, 2), "never reached".to_string()),
    ];
    let err = ws
        .commit_batch(&sys, "master", &updates, &clock)
        .unwrap_err();
    assert!(matches!(err, CoreError::UnknownComponent(_)), "{err}");
    let head = sys.graph().head("team/master").unwrap();
    assert_eq!(head.seq, 1, "the completed prefix committed");
    assert_eq!(head.message, "ok 2");
    assert_eq!(sys.graph().append_ops(), 1);
}

/// Orphan GC: a schema-dishonest node failing mid-DAG under parallel
/// execution lets racing siblings persist blobs a sequential run never
/// writes; `Workspace::sweep_orphans` restores byte-level parity.
mod orphan_gc {
    use super::*;
    use mlcask_ml::metrics::{MetricKind, Score};
    use mlcask_ml::tensor::Matrix;
    use mlcask_pipeline::artifact::{Artifact, ArtifactData, Features, ModelArtifact};
    use mlcask_pipeline::component::{Component, ComponentHandle, StageKind};
    use mlcask_pipeline::errors::{IncompatibleSchemaDetail, Result as PipelineResult};
    use mlcask_pipeline::schema::{Schema, SchemaId};

    const DIM: usize = 5;

    fn feature_schema() -> SchemaId {
        Schema::FeatureMatrix {
            dim: DIM,
            n_classes: 2,
        }
        .id()
    }

    struct Src;

    impl Component for Src {
        fn name(&self) -> &str {
            "src"
        }
        fn version(&self) -> SemVer {
            SemVer::master(0, 0)
        }
        fn stage(&self) -> StageKind {
            StageKind::Ingest
        }
        fn input_schema(&self) -> Option<SchemaId> {
            None
        }
        fn output_schema(&self) -> SchemaId {
            feature_schema()
        }
        fn run(&self, _inputs: &[Artifact]) -> PipelineResult<Artifact> {
            let x = Matrix::from_fn(32, DIM, |r, c| ((r * 7 + c * 3) % 13) as f32 / 13.0);
            let y = (0..32).map(|r| r % 2).collect();
            Ok(Artifact::new(
                ArtifactData::Features(Features { x, y, n_classes: 2 }),
                self.output_schema(),
            ))
        }
        fn work_units(&self, _inputs: &[Artifact]) -> u64 {
            32 * DIM as u64
        }
    }

    /// Declares compatible schemas but fails at run time — invisible to the
    /// static failure frontier, so it exercises the dynamic-failure path.
    struct Liar;

    impl Component for Liar {
        fn name(&self) -> &str {
            "liar"
        }
        fn version(&self) -> SemVer {
            SemVer::master(0, 0)
        }
        fn stage(&self) -> StageKind {
            StageKind::PreProcess
        }
        fn input_schema(&self) -> Option<SchemaId> {
            Some(feature_schema())
        }
        fn output_schema(&self) -> SchemaId {
            feature_schema()
        }
        fn run(&self, _inputs: &[Artifact]) -> PipelineResult<Artifact> {
            Err(mlcask_pipeline::errors::PipelineError::IncompatibleSchema(
                Box::new(IncompatibleSchemaDetail {
                    component: self.key(),
                    input_index: 0,
                    expected: feature_schema(),
                    actual: Schema::Model {
                        family: "surprise".into(),
                    }
                    .id(),
                }),
            ))
        }
        fn work_units(&self, _inputs: &[Artifact]) -> u64 {
            1
        }
    }

    struct Good {
        name: &'static str,
        factor: f32,
    }

    impl Component for Good {
        fn name(&self) -> &str {
            self.name
        }
        fn version(&self) -> SemVer {
            SemVer::master(0, 0)
        }
        fn stage(&self) -> StageKind {
            StageKind::PreProcess
        }
        fn input_schema(&self) -> Option<SchemaId> {
            Some(feature_schema())
        }
        fn output_schema(&self) -> SchemaId {
            feature_schema()
        }
        fn run(&self, inputs: &[Artifact]) -> PipelineResult<Artifact> {
            self.check_compatibility(inputs)?;
            let ArtifactData::Features(f) = &inputs[0].data else {
                unreachable!("schema-checked input");
            };
            let x = Matrix::from_fn(f.x.rows(), DIM, |r, c| f.x.get(r, c) * self.factor);
            Ok(Artifact::new(
                ArtifactData::Features(Features {
                    x,
                    y: f.y.clone(),
                    n_classes: f.n_classes,
                }),
                self.output_schema(),
            ))
        }
        fn work_units(&self, inputs: &[Artifact]) -> u64 {
            inputs.first().map(|a| a.byte_len()).unwrap_or(1)
        }
    }

    struct Join;

    impl Component for Join {
        fn name(&self) -> &str {
            "join"
        }
        fn version(&self) -> SemVer {
            SemVer::master(0, 0)
        }
        fn stage(&self) -> StageKind {
            StageKind::PreProcess
        }
        fn input_schema(&self) -> Option<SchemaId> {
            Some(feature_schema())
        }
        fn output_schema(&self) -> SchemaId {
            feature_schema()
        }
        fn run(&self, inputs: &[Artifact]) -> PipelineResult<Artifact> {
            self.check_compatibility(inputs)?;
            let feats: Vec<&Features> = inputs
                .iter()
                .map(|a| match &a.data {
                    ArtifactData::Features(f) => f,
                    _ => unreachable!("schema-checked input"),
                })
                .collect();
            let first = feats[0];
            let x = Matrix::from_fn(first.x.rows(), DIM, |r, c| {
                feats.iter().map(|f| f.x.get(r, c)).sum::<f32>()
            });
            Ok(Artifact::new(
                ArtifactData::Features(Features {
                    x,
                    y: first.y.clone(),
                    n_classes: first.n_classes,
                }),
                self.output_schema(),
            ))
        }
        fn work_units(&self, inputs: &[Artifact]) -> u64 {
            inputs.iter().map(|a| a.byte_len()).sum::<u64>().max(1)
        }
    }

    struct Model;

    impl Component for Model {
        fn name(&self) -> &str {
            "model"
        }
        fn version(&self) -> SemVer {
            SemVer::master(0, 0)
        }
        fn stage(&self) -> StageKind {
            StageKind::ModelTraining
        }
        fn input_schema(&self) -> Option<SchemaId> {
            Some(feature_schema())
        }
        fn output_schema(&self) -> SchemaId {
            Schema::Model {
                family: "gc-test".into(),
            }
            .id()
        }
        fn run(&self, inputs: &[Artifact]) -> PipelineResult<Artifact> {
            self.check_compatibility(inputs)?;
            Ok(Artifact::new(
                ArtifactData::Model(ModelArtifact {
                    family: "gc-test".into(),
                    blob: vec![3u8; 24],
                    score: Score::new(MetricKind::Accuracy, 0.5),
                }),
                self.output_schema(),
            ))
        }
        fn work_units(&self, inputs: &[Artifact]) -> u64 {
            inputs.first().map(|a| a.byte_len()).unwrap_or(1)
        }
    }

    /// `src → {liar, good_a, good_b} → join → model`, the liar listed
    /// *before* its siblings in topological order: a sequential run stops at
    /// the liar before touching the siblings, a parallel run races them.
    fn open_system(t: &Tenant, policy: ParallelismPolicy) -> MlCask {
        let mut dag = PipelineDag::new();
        for n in ["src", "liar", "good_a", "good_b", "join", "model"] {
            dag.add_node(n).unwrap();
        }
        for b in ["liar", "good_a", "good_b"] {
            dag.add_edge("src", b).unwrap();
            dag.add_edge(b, "join").unwrap();
        }
        dag.add_edge("join", "model").unwrap();
        let registry = Arc::new(ComponentRegistry::with_exe_size(
            Arc::clone(t.store()),
            2048,
        ));
        let comps: Vec<ComponentHandle> = vec![
            Arc::new(Src),
            Arc::new(Liar),
            Arc::new(Good {
                name: "good_a",
                factor: 2.0,
            }),
            Arc::new(Good {
                name: "good_b",
                factor: 3.0,
            }),
            Arc::new(Join),
            Arc::new(Model),
        ];
        for c in &comps {
            registry.register(Arc::clone(c)).unwrap();
        }
        t.open_pipeline("gc", dag, registry)
            .with_parallelism(policy)
    }

    fn run_failing_commit(policy: ParallelismPolicy) -> (Arc<Workspace>, u64) {
        let ws = Workspace::in_memory_small();
        let t = ws.add_tenant("team", QuotaPolicy::UNLIMITED).unwrap();
        let sys = open_system(&t, policy);
        let keys: Vec<ComponentKey> = ["src", "liar", "good_a", "good_b", "join", "model"]
            .iter()
            .map(|n| sys.registry().versions_of(n)[0].clone())
            .collect();
        let clock = ClockLedger::new();
        let res = sys
            .commit_pipeline("master", &keys, "doomed", &clock)
            .unwrap();
        assert!(res.commit.is_none(), "dynamic failure must not commit");
        let physical = ws.store().physical_bytes();
        (ws, physical)
    }

    #[test]
    fn sweep_restores_parity_after_dynamic_failure() {
        let (_ws_seq, seq_bytes) = run_failing_commit(ParallelismPolicy::Sequential);
        let (ws_par, par_bytes) = run_failing_commit(ParallelismPolicy::Parallel(8));
        assert!(
            par_bytes > seq_bytes,
            "racing siblings should have persisted orphans ({par_bytes} vs {seq_bytes})"
        );
        let report = ws_par.sweep_orphans().unwrap();
        assert!(report.removed_objects > 0);
        assert_eq!(
            ws_par.store().physical_bytes(),
            seq_bytes,
            "sweep restores byte-level parity with the sequential run"
        );
        // Sweeping again finds nothing; live data still reads back.
        let again = ws_par.sweep_orphans().unwrap();
        assert_eq!(again.removed_objects, 0);
    }

    #[test]
    fn sweep_keeps_committed_state_intact() {
        let ws = Workspace::in_memory_small();
        let t = ws.add_tenant("team", QuotaPolicy::UNLIMITED).unwrap();
        let sys = toy_system(&t);
        let clock = ClockLedger::new();
        sys.commit_pipeline("master", &keys(&sys, 0, 0), "initial", &clock)
            .unwrap();
        sys.commit_pipeline("master", &keys(&sys, 0, 1), "bump", &clock)
            .unwrap();
        let before = ws.store().physical_bytes();
        let report = ws.sweep_orphans().unwrap();
        assert_eq!(report.removed_objects, 0, "nothing live may be swept");
        assert_eq!(ws.store().physical_bytes(), before);
        // Every committed metafile still resolves (from the store).
        let head = sys.graph().head("team/master").unwrap();
        assert!(sys.metafile_of(&head).is_ok());
    }
}

#[test]
fn multi_tenant_workload_deterministic_across_worker_counts() {
    let run = |policy: ParallelismPolicy| -> String {
        let w = fusion::build();
        let (ws, teams) = build_multi_tenant(&w, &["alpha", "beta"]).unwrap();
        let teams: Vec<mlcask_workloads::scenario::TenantSystem> = teams
            .into_iter()
            .map(|t| mlcask_workloads::scenario::TenantSystem {
                tenant: t.tenant,
                registry: t.registry,
                sys: t.sys.with_parallelism(policy),
            })
            .collect();
        for t in &teams {
            setup_nonlinear(&t.sys, &w).unwrap();
            let clock = ClockLedger::new();
            let merged = t
                .sys
                .merge(
                    "master",
                    "dev",
                    mlcask_core::merge::MergeStrategy::Full,
                    &clock,
                )
                .unwrap();
            assert!(merged.commit.is_some());
        }
        let heads: Vec<String> = ws
            .graph()
            .branches()
            .iter()
            .map(|b| {
                let h = ws.graph().head(b).unwrap();
                format!("{b}={} seq={}", h.payload.short(), h.seq)
            })
            .collect();
        format!(
            "usages={} shared={} stats={} physical={} history={} heads={heads:?} metas={:?}",
            serde_json::to_string(&ws.usages()).unwrap(),
            serde_json::to_string(&ws.shared_view()).unwrap(),
            serde_json::to_string(&ws.store().stats()).unwrap(),
            ws.store().physical_bytes(),
            ws.history().len(),
            teams
                .iter()
                .map(|t| serde_json::to_string(&t.sys.head_metafile("master").unwrap()).unwrap())
                .collect::<Vec<_>>(),
        )
    };
    let sequential = run(ParallelismPolicy::Sequential);
    for workers in [1, 2, 8] {
        let parallel = run(ParallelismPolicy::Parallel(workers));
        assert_eq!(
            sequential, parallel,
            "multi-tenant workload with {workers} workers diverged"
        );
    }
}
