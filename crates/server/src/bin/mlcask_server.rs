//! The MLCask serving daemon.
//!
//! ```text
//! mlcask_server [--stdio | --listen ADDR] [--workload NAME] [--workers N]
//!               [--root DIR] [--coarse-lock]
//!               [--max-sessions N] [--max-inflight N] [--rate BURST:PER_SEC]
//! ```
//!
//! Defaults: stdio transport, `readmission` workload, sequential
//! execution, in-memory store (honouring `MLCASK_BACKEND`), no limits.
//! `--root DIR` opens (or creates) a durable cask workspace instead.

use mlcask_pipeline::parallel::ParallelismPolicy;
use mlcask_server::limits::{AdmissionControl, RateLimit};
use mlcask_server::service::{Router, ServerOptions};
use mlcask_server::transport::{serve_stdio, serve_tcp};
use mlcask_workloads::common::Workload;
use std::sync::Arc;

fn workload_by_name(name: &str) -> Option<Workload> {
    match name {
        "readmission" => Some(mlcask_workloads::readmission::build()),
        "dpm" => Some(mlcask_workloads::dpm::build()),
        "sa" => Some(mlcask_workloads::sa::build()),
        "autolearn" => Some(mlcask_workloads::autolearn::build()),
        "fusion" => Some(mlcask_workloads::fusion::build()),
        _ => None,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: mlcask_server [--stdio | --listen ADDR] [--workload NAME] \
         [--workers N] [--root DIR] [--coarse-lock] [--max-sessions N] \
         [--max-inflight N] [--rate BURST:PER_SEC]"
    );
    std::process::exit(2);
}

fn parse_or_usage<T: std::str::FromStr>(v: Option<String>, flag: &str) -> T {
    match v.and_then(|x| x.parse().ok()) {
        Some(x) => x,
        None => {
            eprintln!("bad or missing value for {flag}");
            usage();
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut listen: Option<String> = None;
    let mut workload = "readmission".to_string();
    let mut workers = 1usize;
    let mut root: Option<String> = None;
    let mut coarse = false;
    let mut admission = AdmissionControl::unlimited();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => listen = None,
            "--listen" => listen = Some(parse_or_usage(args.next(), "--listen")),
            "--workload" => workload = parse_or_usage(args.next(), "--workload"),
            "--workers" => workers = parse_or_usage(args.next(), "--workers"),
            "--root" => root = Some(parse_or_usage(args.next(), "--root")),
            "--coarse-lock" => coarse = true,
            "--max-sessions" => {
                admission.max_sessions = Some(parse_or_usage(args.next(), "--max-sessions"))
            }
            "--max-inflight" => {
                admission.max_inflight = Some(parse_or_usage(args.next(), "--max-inflight"))
            }
            "--rate" => {
                let spec: String = parse_or_usage(args.next(), "--rate");
                let (burst, per_sec) = match spec.split_once(':') {
                    Some((b, r)) => match (b.parse(), r.parse()) {
                        (Ok(b), Ok(r)) => (b, r),
                        _ => usage(),
                    },
                    None => usage(),
                };
                admission.per_tenant_rate = Some(RateLimit { burst, per_sec });
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    let w = match workload_by_name(&workload) {
        Some(w) => w,
        None => {
            eprintln!("unknown workload `{workload}` (readmission|dpm|sa|autolearn|fusion)");
            std::process::exit(2);
        }
    };
    let opts = ServerOptions {
        parallelism: if workers <= 1 {
            ParallelismPolicy::Sequential
        } else {
            ParallelismPolicy::Parallel(workers)
        },
        coarse_lock: coarse,
        admission,
    };
    let router = match &root {
        Some(dir) => match mlcask_core::workspace::Workspace::durable(dir) {
            Ok(ws) => Router::over(ws, w, opts),
            Err(e) => {
                eprintln!("cannot open durable workspace at {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => Router::in_memory(w, opts),
    };
    let result = match listen {
        Some(addr) => serve_tcp(Arc::new(router), &addr),
        None => serve_stdio(&router).map(|_| ()),
    };
    // With MLCASK_TRACE=<path> set, leave a chrome-trace of the flight
    // recorder's retained spans behind on shutdown.
    if let Some((path, n)) = mlcask_obs::trace::maybe_dump_env() {
        eprintln!("wrote {n} spans to {path}");
    }
    if let Err(e) = result {
        eprintln!("transport error: {e}");
        std::process::exit(1);
    }
}
