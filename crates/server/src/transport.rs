//! Transports: line-delimited JSON over stdio or a TCP socket.
//!
//! Both transports share the same contract: one request per line in, one
//! response per line out, connection-order within a connection, no framing
//! beyond `\n`. The TCP transport serves each connection on its own thread
//! over one shared [`Router`] — which is the point: every connection's
//! reads resolve against the workspace's published snapshots, so a merge
//! on one connection never blocks a walk on another.

use crate::service::Router;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

/// Serves requests from `input` to `output` until EOF. Returns the number
/// of requests served.
pub fn serve_lines(
    router: &Router,
    input: impl std::io::Read,
    mut output: impl Write,
) -> std::io::Result<u64> {
    let reader = BufReader::new(input);
    let mut served = 0u64;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = router.handle_text(&line);
        output.write_all(response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        served += 1;
    }
    Ok(served)
}

/// Serves stdin→stdout until EOF.
pub fn serve_stdio(router: &Router) -> std::io::Result<u64> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_lines(router, stdin.lock(), stdout.lock())
}

/// Binds `addr` and serves each connection on its own thread. Blocks
/// forever (the daemon's main loop); panics in connection threads are
/// contained per connection.
pub fn serve_tcp(router: Arc<Router>, addr: &str) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("mlcask_server listening on {}", listener.local_addr()?);
    for stream in listener.incoming() {
        match stream {
            Ok(conn) => {
                let router = Arc::clone(&router);
                std::thread::spawn(move || {
                    let _ = serve_connection(&router, conn);
                });
            }
            Err(e) => eprintln!("accept failed: {e}"),
        }
    }
    Ok(())
}

fn serve_connection(router: &Router, conn: TcpStream) -> std::io::Result<u64> {
    let reader = conn.try_clone()?;
    serve_lines(router, reader, conn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limits::AdmissionControl;
    use crate::service::{Router, ServerOptions};
    use mlcask_pipeline::parallel::ParallelismPolicy;

    fn test_router() -> Router {
        Router::in_memory(
            mlcask_workloads::readmission::build(),
            ServerOptions {
                parallelism: ParallelismPolicy::Sequential,
                coarse_lock: false,
                admission: AdmissionControl::unlimited(),
            },
        )
    }

    #[test]
    fn serve_lines_round_trips() {
        let router = test_router();
        let input = b"{\"id\":1,\"method\":\"ping\"}\n\n{\"id\":2,\"method\":\"nope\",\"params\":{\"session\":1}}\n".to_vec();
        let mut output = Vec::new();
        let served = serve_lines(&router, &input[..], &mut output).unwrap();
        assert_eq!(served, 2, "blank lines are skipped");
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("pong"), "{}", lines[0]);
        assert!(lines[1].contains("-32000"), "{}", lines[1]);
    }

    #[test]
    fn tcp_serves_concurrent_connections() {
        let router = Arc::new(test_router());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        {
            let router = Arc::clone(&router);
            std::thread::spawn(move || {
                for conn in listener.incoming().flatten() {
                    let router = Arc::clone(&router);
                    std::thread::spawn(move || {
                        let _ = serve_connection(&router, conn);
                    });
                }
            });
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles.push(std::thread::spawn(move || {
                let conn = TcpStream::connect(addr).unwrap();
                let mut writer = conn.try_clone().unwrap();
                let mut reader = BufReader::new(conn);
                writer
                    .write_all(b"{\"id\":9,\"method\":\"ping\"}\n")
                    .unwrap();
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                assert!(line.contains("pong"), "{line}");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
