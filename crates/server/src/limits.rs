//! Admission control and per-tenant rate limiting.
//!
//! Three independent knobs, each optional (absent = unlimited):
//!
//! * **session cap** — `session.open` beyond the cap is refused with
//!   [`crate::protocol::ADMISSION_DENIED`]; existing sessions are
//!   untouched.
//! * **in-flight cap** — server-wide backpressure: at most N operations
//!   executing at once, the rest refused with
//!   [`crate::protocol::OVERLOADED`] (clients retry).
//! * **per-tenant token bucket** — each tenant name refills at `per_sec`
//!   tokens up to `burst`; an op costs one token. A hot writer exhausting
//!   its bucket is throttled with [`crate::protocol::RATE_LIMITED`]
//!   without slowing the read-heavy tail of other tenants.
//!
//! The limits layer sits *in front of* the storage-level
//! [`QuotaPolicy`](mlcask_storage::tenant::QuotaPolicy): quotas bound how
//! many bytes a tenant may ever persist, admission bounds how fast it may
//! ask. Deterministic runs (the identity sweep, the tests) use
//! [`AdmissionControl::unlimited`], which never consults a clock.

use crate::protocol::{Failure, ADMISSION_DENIED, OVERLOADED, RATE_LIMITED};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Token-bucket parameters applied per tenant name.
#[derive(Debug, Clone, Copy)]
pub struct RateLimit {
    /// Bucket capacity (maximum burst of back-to-back ops).
    pub burst: f64,
    /// Refill rate in tokens per second.
    pub per_sec: f64,
}

/// The admission-control configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmissionControl {
    /// Cap on concurrently open sessions.
    pub max_sessions: Option<usize>,
    /// Cap on operations executing at once, server-wide.
    pub max_inflight: Option<usize>,
    /// Per-tenant token bucket.
    pub per_tenant_rate: Option<RateLimit>,
}

impl AdmissionControl {
    /// No limits and no clock reads — the deterministic configuration.
    pub fn unlimited() -> AdmissionControl {
        AdmissionControl::default()
    }
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Runtime state enforcing an [`AdmissionControl`] configuration.
#[derive(Debug)]
pub struct Limiter {
    cfg: AdmissionControl,
    open_sessions: AtomicUsize,
    inflight: AtomicUsize,
    buckets: Mutex<HashMap<String, Bucket>>,
    /// Sessions refused by the session cap.
    pub sessions_refused: AtomicU64,
    /// Ops refused by the in-flight cap.
    pub ops_shed: AtomicU64,
    /// Ops refused by a tenant's token bucket.
    pub ops_throttled: AtomicU64,
}

impl Limiter {
    /// A limiter enforcing `cfg`.
    pub fn new(cfg: AdmissionControl) -> Limiter {
        Limiter {
            cfg,
            open_sessions: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            buckets: Mutex::new(HashMap::new()),
            sessions_refused: AtomicU64::new(0),
            ops_shed: AtomicU64::new(0),
            ops_throttled: AtomicU64::new(0),
        }
    }

    /// Currently open sessions.
    pub fn open_sessions(&self) -> usize {
        self.open_sessions.load(Ordering::Relaxed)
    }

    /// Admits a new session or refuses with `ADMISSION_DENIED`.
    pub fn open_session(&self) -> Result<(), Failure> {
        if let Some(cap) = self.cfg.max_sessions {
            // Optimistic increment with rollback keeps this lock-free.
            let prev = self.open_sessions.fetch_add(1, Ordering::AcqRel);
            if prev >= cap {
                self.open_sessions.fetch_sub(1, Ordering::AcqRel);
                self.sessions_refused.fetch_add(1, Ordering::Relaxed);
                return Err(Failure::new(
                    ADMISSION_DENIED,
                    format!("session cap reached ({cap})"),
                ));
            }
        } else {
            self.open_sessions.fetch_add(1, Ordering::AcqRel);
        }
        Ok(())
    }

    /// Releases a session slot.
    pub fn close_session(&self) {
        self.open_sessions.fetch_sub(1, Ordering::AcqRel);
    }

    /// Admits one operation for `tenant`, returning a guard that releases
    /// the in-flight slot on drop.
    pub fn begin_op(&self, tenant: &str) -> Result<OpGuard<'_>, Failure> {
        if let Some(cap) = self.cfg.max_inflight {
            let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
            if prev >= cap {
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                self.ops_shed.fetch_add(1, Ordering::Relaxed);
                return Err(Failure::new(
                    OVERLOADED,
                    format!("too many operations in flight (cap {cap})"),
                ));
            }
        } else {
            self.inflight.fetch_add(1, Ordering::AcqRel);
        }
        if let Some(rate) = self.cfg.per_tenant_rate {
            if !self.take_token(tenant, rate) {
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                self.ops_throttled.fetch_add(1, Ordering::Relaxed);
                return Err(Failure::new(
                    RATE_LIMITED,
                    format!("tenant `{tenant}` rate limited"),
                ));
            }
        }
        Ok(OpGuard { limiter: self })
    }

    fn take_token(&self, tenant: &str, rate: RateLimit) -> bool {
        let now = Instant::now();
        let mut buckets = self.buckets.lock();
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: rate.burst,
            last: now,
        });
        let elapsed = now.duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * rate.per_sec).min(rate.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Releases one in-flight slot when dropped.
#[derive(Debug)]
pub struct OpGuard<'a> {
    limiter: &'a Limiter,
}

impl Drop for OpGuard<'_> {
    fn drop(&mut self) {
        self.limiter.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_cap_enforced() {
        let l = Limiter::new(AdmissionControl {
            max_sessions: Some(2),
            ..AdmissionControl::default()
        });
        l.open_session().unwrap();
        l.open_session().unwrap();
        let err = l.open_session().unwrap_err();
        assert_eq!(err.code, ADMISSION_DENIED);
        assert_eq!(l.sessions_refused.load(Ordering::Relaxed), 1);
        l.close_session();
        l.open_session().unwrap();
        assert_eq!(l.open_sessions(), 2);
    }

    #[test]
    fn inflight_cap_sheds_and_releases() {
        let l = Limiter::new(AdmissionControl {
            max_inflight: Some(1),
            ..AdmissionControl::default()
        });
        let g = l.begin_op("t").unwrap();
        assert_eq!(l.begin_op("t").unwrap_err().code, OVERLOADED);
        drop(g);
        let _g2 = l.begin_op("t").unwrap();
    }

    #[test]
    fn token_bucket_throttles_bursts_per_tenant() {
        let l = Limiter::new(AdmissionControl {
            per_tenant_rate: Some(RateLimit {
                burst: 3.0,
                per_sec: 0.0001, // effectively no refill within the test
            }),
            ..AdmissionControl::default()
        });
        for _ in 0..3 {
            l.begin_op("hot").unwrap();
        }
        assert_eq!(l.begin_op("hot").unwrap_err().code, RATE_LIMITED);
        // A different tenant has its own bucket.
        l.begin_op("cold").unwrap();
        assert_eq!(l.ops_throttled.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn unlimited_never_refuses() {
        let l = Limiter::new(AdmissionControl::unlimited());
        for _ in 0..100 {
            l.open_session().unwrap();
            let _g = l.begin_op("x").unwrap();
        }
    }
}
