//! The serving front-end: a [`Router`] mapping JSON-RPC requests onto a
//! shared [`Workspace`].
//!
//! Every connection (or in-process caller) opens *sessions*; a session is
//! bound to one tenant and carries its own virtual-clock ledger. All
//! sessions of a tenant share one pipeline system ([`MlCask`]) — and all
//! tenants share one workspace: one deduplicating store, one
//! snapshot-published commit graph, one checkpoint history.
//!
//! **Why reads scale under live merges.** Read methods (`branches`, `log`,
//! `head`, `usage`) resolve everything against one frozen
//! [`GraphView`](mlcask_storage::commit::GraphView) pulled from the commit
//! graph's atomically-published snapshot: no lock is held while the reply
//! is assembled, and a concurrent merge commit simply publishes the next
//! snapshot pointer. The `coarse_lock` option recreates the pre-refactor
//! design — one workspace-wide reader/writer lock, held in write mode for
//! the full duration of every mutation — and exists purely as the baseline
//! the `serving_load` bench measures against.

use crate::limits::{AdmissionControl, Limiter};
use crate::protocol::{
    self, obj, s, Failure, Params, Request, INVALID_PARAMS, METHOD_NOT_FOUND, OP_FAILED,
};
use mlcask_core::merge::MergeStrategy;
use mlcask_core::system::{CommitResult, MergeOutcome, MlCask};
use mlcask_core::workspace::{Tenant, Workspace};
use mlcask_obs::metrics::LATENCY_SECONDS;
use mlcask_obs::{trace, MetricsRegistry};
use mlcask_pipeline::clock::ClockLedger;
use mlcask_pipeline::component::ComponentKey;
use mlcask_pipeline::parallel::ParallelismPolicy;
use mlcask_pipeline::semver::SemVer;
use mlcask_storage::commit::Commit;
use mlcask_storage::tenant::{QuotaPolicy, ShareRight, TenantUsage};
use mlcask_workloads::common::Workload;
use mlcask_workloads::scenario::join_workspace;
use parking_lot::{Mutex, RwLock};
use serde::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Worker pool for pipeline execution and merge-search candidates
    /// (`Sequential` keeps single-threaded semantics).
    pub parallelism: ParallelismPolicy,
    /// Serve every request under one workspace-wide RwLock, mutations in
    /// write mode for their full duration. **Baseline only** — this is the
    /// lock discipline the snapshot refactor removed.
    pub coarse_lock: bool,
    /// Admission control and rate limiting.
    pub admission: AdmissionControl,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            parallelism: ParallelismPolicy::Sequential,
            coarse_lock: false,
            admission: AdmissionControl::unlimited(),
        }
    }
}

/// One tenant's serving state: the tenant handle plus the pipeline system
/// every session of that tenant shares.
pub struct TenantEntry {
    /// Tenant handle (accounting, shares, forks).
    pub tenant: Tenant,
    /// The tenant's pipeline system over the shared workspace.
    pub sys: MlCask,
}

struct Session {
    tenant: String,
    ledger: ClockLedger,
}

/// The request router: a shared-workspace JSON-RPC service.
pub struct Router {
    ws: Arc<Workspace>,
    workload: Workload,
    opts: ServerOptions,
    limiter: Limiter,
    tenants: Mutex<HashMap<String, Arc<TenantEntry>>>,
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
    next_session: AtomicU64,
    ops_served: AtomicU64,
    /// The coarse-lock baseline's single workspace-wide lock.
    coarse: RwLock<()>,
}

impl Router {
    /// A router serving `workload` pipelines out of `ws`.
    pub fn over(ws: Arc<Workspace>, workload: Workload, opts: ServerOptions) -> Router {
        Router {
            ws,
            workload,
            limiter: Limiter::new(opts.admission),
            opts,
            tenants: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(0),
            ops_served: AtomicU64::new(0),
            coarse: RwLock::new(()),
        }
    }

    /// A router over a fresh workspace whose store backend honours
    /// `MLCASK_BACKEND` (`mem` default, `cask`, `file`).
    pub fn in_memory(workload: Workload, opts: ServerOptions) -> Router {
        use mlcask_storage::chunk::ChunkParams;
        use mlcask_storage::costmodel::StorageCostModel;
        use mlcask_storage::store::ChunkStore;
        let store = Arc::new(ChunkStore::new(
            mlcask_storage::backend::backend_from_env(&workload.name),
            ChunkParams::DEFAULT,
            StorageCostModel::FORKBASE,
        ));
        Router::over(Workspace::over(store), workload, opts)
    }

    /// The shared workspace.
    pub fn workspace(&self) -> &Arc<Workspace> {
        &self.ws
    }

    /// Total operations served (successful or not, past admission).
    pub fn ops_served(&self) -> u64 {
        self.ops_served.load(Ordering::Relaxed)
    }

    /// Serves one raw request line, returning one response line (no
    /// trailing newline).
    pub fn handle_text(&self, line: &str) -> String {
        let response = match protocol::parse_request(line) {
            Ok(req) => self.handle(&req),
            Err(failure) => protocol::error_response(&Value::Null, &failure),
        };
        serde_json::to_string(&response).expect("response values always render")
    }

    /// Serves one parsed request.
    pub fn handle(&self, req: &Request) -> Value {
        match self.dispatch(req) {
            Ok(result) => protocol::ok_response(&req.id, result),
            Err(failure) => protocol::error_response(&req.id, &failure),
        }
    }

    /// Serves the request and records per-method/per-tenant telemetry:
    /// a latency histogram and an outcome-labelled counter, both strictly
    /// outside the response (admission rejections count too). The tenant
    /// label is known only once the session resolves; control-plane and
    /// failed-before-session requests record under tenant `"-"`.
    fn dispatch(&self, req: &Request) -> Result<Value, Failure> {
        let start = Instant::now();
        let mut tenant: Option<String> = None;
        let result = self.dispatch_inner(req, &mut tenant);
        let reg = MetricsRegistry::global();
        let tenant = tenant.as_deref().unwrap_or("-");
        let outcome = match &result {
            Ok(_) => "ok",
            Err(f) => match f.code {
                protocol::ADMISSION_DENIED | protocol::RATE_LIMITED | protocol::OVERLOADED => {
                    "rejected"
                }
                _ => "error",
            },
        };
        reg.histogram(
            "mlcask_server_request_seconds",
            "Server request latency by method and tenant",
            &[("method", req.method.as_str()), ("tenant", tenant)],
            LATENCY_SECONDS,
        )
        .observe_duration(start.elapsed());
        reg.counter(
            "mlcask_server_requests_total",
            "Server requests by method, tenant, and outcome",
            &[
                ("method", req.method.as_str()),
                ("tenant", tenant),
                ("outcome", outcome),
            ],
        )
        .inc();
        result
    }

    fn dispatch_inner(
        &self,
        req: &Request,
        tenant_out: &mut Option<String>,
    ) -> Result<Value, Failure> {
        self.ops_served.fetch_add(1, Ordering::Relaxed);
        let p = Params::of(req)?;
        match req.method.as_str() {
            // Control-plane methods: no session, no admission.
            "ping" => Ok(s("pong")),
            "server.info" => Ok(self.info()),
            "metrics.scrape" => Ok(self.metrics_scrape()),
            "obs.spans" => Ok(obs_spans(&p)?),
            "obs.slow" => Ok(obs_slow(&p)?),
            "session.open" => self.session_open(&p),
            "session.close" => self.session_close(&p),
            "workspace.usage" => {
                let _r = self.read_guard();
                Ok(workspace_usage_json(&self.ws))
            }
            // Session-scoped methods: admission-checked, rate-limited.
            method => {
                let (session, entry) = self.session(&p)?;
                *tenant_out = Some(session.tenant.clone());
                let _op = self.limiter.begin_op(&session.tenant)?;
                match method {
                    "branches" => {
                        let _r = self.read_guard();
                        Ok(Value::Seq(
                            entry.tenant.branches().into_iter().map(s).collect(),
                        ))
                    }
                    "head" => {
                        let _r = self.read_guard();
                        let branch = p.str("branch")?;
                        let head = self.head_of(&entry, branch)?;
                        Ok(commit_json(&head))
                    }
                    "log" => {
                        let _r = self.read_guard();
                        self.log(&entry, &p)
                    }
                    "usage" => {
                        let _r = self.read_guard();
                        Ok(usage_json(&entry.tenant.usage()))
                    }
                    "commit" => {
                        let _w = self.write_guard();
                        self.commit(&session, &entry, &p)
                    }
                    "branch" => {
                        let _w = self.write_guard();
                        let from = p.str("from")?;
                        let to = p.str("to")?;
                        let c = entry.sys.branch(from, to).map_err(Failure::op)?;
                        Ok(commit_json(&c))
                    }
                    "grant" => {
                        let _w = self.write_guard();
                        let peer = p.str("peer")?;
                        let right = parse_right(p.str("right")?)?;
                        entry.tenant.grant_to(peer, right).map_err(Failure::op)?;
                        Ok(Value::Bool(true))
                    }
                    "revoke" => {
                        let _w = self.write_guard();
                        let peer = p.str("peer")?;
                        entry.tenant.revoke_from(peer).map_err(Failure::op)?;
                        Ok(Value::Bool(true))
                    }
                    "fork" => {
                        let _w = self.write_guard();
                        let peer = p.str("peer")?;
                        let branch = p.str("branch")?;
                        let new_branch = p.str("new_branch")?;
                        let c = entry
                            .tenant
                            .fork_from(peer, branch, new_branch)
                            .map_err(Failure::op)?;
                        Ok(commit_json(&c))
                    }
                    "merge" => {
                        let _w = self.write_guard();
                        let base = p.str("base")?;
                        let merging = p.str("merging")?;
                        let strategy = parse_strategy(p.str_opt("strategy")?)?;
                        let outcome = entry
                            .sys
                            .merge(base, merging, strategy, &session.ledger)
                            .map_err(Failure::op)?;
                        Ok(merge_json(&outcome))
                    }
                    "merge.into" => {
                        let _w = self.write_guard();
                        let peer = p.str("peer")?;
                        let peer_branch = p.str("peer_branch")?;
                        let merging = p.str("merging")?;
                        let strategy = parse_strategy(p.str_opt("strategy")?)?;
                        let outcome = entry
                            .sys
                            .merge_into(peer, peer_branch, merging, strategy, &session.ledger)
                            .map_err(Failure::op)?;
                        Ok(merge_json(&outcome))
                    }
                    other => Err(Failure::new(
                        METHOD_NOT_FOUND,
                        format!("unknown method `{other}`"),
                    )),
                }
            }
        }
    }

    // -- method implementations ---------------------------------------

    fn info(&self) -> Value {
        let mut tenants: Vec<String> = self.tenants.lock().keys().cloned().collect();
        tenants.sort();
        let workers = match self.opts.parallelism {
            ParallelismPolicy::Sequential => 1,
            ParallelismPolicy::Parallel(n) => n as u64,
        };
        obj(vec![
            ("workload", s(&self.workload.name)),
            ("workers", Value::U64(workers)),
            ("coarse_lock", Value::Bool(self.opts.coarse_lock)),
            ("tenants", Value::Seq(tenants.into_iter().map(s).collect())),
            (
                "open_sessions",
                Value::U64(self.limiter.open_sessions() as u64),
            ),
            ("ops_served", Value::U64(self.ops_served())),
            (
                "sessions_refused",
                Value::U64(self.limiter.sessions_refused.load(Ordering::Relaxed)),
            ),
            (
                "ops_shed",
                Value::U64(self.limiter.ops_shed.load(Ordering::Relaxed)),
            ),
            (
                "ops_throttled",
                Value::U64(self.limiter.ops_throttled.load(Ordering::Relaxed)),
            ),
        ])
    }

    /// Prometheus text scrape of the global registry. Derived gauges (cache
    /// hit rate, resident bytes) are refreshed from a stats snapshot first,
    /// so the exported values are current as of this scrape.
    fn metrics_scrape(&self) -> Value {
        let _ = self.ws.cache_stats();
        s(MetricsRegistry::global().render_prometheus())
    }

    fn session_open(&self, p: &Params<'_>) -> Result<Value, Failure> {
        let tenant = p.str("tenant")?;
        let quota = QuotaPolicy {
            max_logical_bytes: p.u64_opt("max_logical_bytes")?,
            max_physical_bytes: p.u64_opt("max_physical_bytes")?,
        };
        self.limiter.open_session()?;
        let entry = match self.tenant_entry(tenant, quota) {
            Ok(entry) => entry,
            Err(failure) => {
                self.limiter.close_session();
                return Err(failure);
            }
        };
        let id = self.next_session.fetch_add(1, Ordering::Relaxed) + 1;
        self.sessions.lock().insert(
            id,
            Arc::new(Session {
                tenant: entry.tenant.name().to_string(),
                ledger: ClockLedger::new(),
            }),
        );
        Ok(obj(vec![
            ("session", Value::U64(id)),
            ("tenant", s(tenant)),
        ]))
    }

    fn session_close(&self, p: &Params<'_>) -> Result<Value, Failure> {
        let id = p.u64("session")?;
        match self.sessions.lock().remove(&id) {
            Some(_) => {
                self.limiter.close_session();
                Ok(Value::Bool(true))
            }
            None => Err(Failure::new(OP_FAILED, format!("no such session {id}"))),
        }
    }

    /// Resolves the session id in `params` to its state and tenant entry.
    fn session(&self, p: &Params<'_>) -> Result<(Arc<Session>, Arc<TenantEntry>), Failure> {
        let id = p.u64("session")?;
        let session = self
            .sessions
            .lock()
            .get(&id)
            .cloned()
            .ok_or_else(|| Failure::new(OP_FAILED, format!("no such session {id}")))?;
        let entry = self
            .tenants
            .lock()
            .get(&session.tenant)
            .cloned()
            .ok_or_else(|| Failure::new(OP_FAILED, "tenant entry vanished"))?;
        Ok((session, entry))
    }

    /// The tenant's serving entry, registering it with the workspace (and
    /// the workload's components) on first use.
    fn tenant_entry(&self, name: &str, quota: QuotaPolicy) -> Result<Arc<TenantEntry>, Failure> {
        let mut tenants = self.tenants.lock();
        if let Some(entry) = tenants.get(name) {
            return Ok(Arc::clone(entry));
        }
        let ts = join_workspace(&self.ws, &self.workload, name, quota)
            .map_err(|e| Failure::new(OP_FAILED, e))?;
        let entry = Arc::new(TenantEntry {
            tenant: ts.tenant,
            sys: ts.sys.with_parallelism(self.opts.parallelism),
        });
        tenants.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    fn head_of(&self, entry: &TenantEntry, branch: &str) -> Result<Commit, Failure> {
        let q = entry.sys.qualified_branch(branch);
        entry.sys.graph().view().head(&q).map_err(Failure::op)
    }

    /// Walks the first-parent chain from the branch head — all of it
    /// resolved against **one** frozen graph view, so a merge landing
    /// mid-walk can never produce a torn lineage.
    fn log(&self, entry: &TenantEntry, p: &Params<'_>) -> Result<Value, Failure> {
        let branch = p.str("branch")?;
        let limit = p.u64_opt("limit")?.unwrap_or(50) as usize;
        let view = entry.sys.graph().view();
        let q = entry.sys.qualified_branch(branch);
        let mut commit = view.head(&q).map_err(Failure::op)?;
        let mut out = Vec::new();
        loop {
            if out.len() >= limit {
                break;
            }
            out.push(commit_json(&commit));
            match commit.parents.first() {
                Some(&parent) => commit = view.get(parent).map_err(Failure::op)?,
                None => break,
            }
        }
        Ok(Value::Seq(out))
    }

    fn commit(
        &self,
        session: &Session,
        entry: &TenantEntry,
        p: &Params<'_>,
    ) -> Result<Value, Failure> {
        let branch = p.str("branch")?;
        let message = p.str_opt("message")?.unwrap_or("serving commit");
        let keys = p
            .str_seq("components")?
            .into_iter()
            .map(parse_component)
            .collect::<Result<Vec<_>, _>>()?;
        let result = entry
            .sys
            .commit_pipeline(branch, &keys, message, &session.ledger)
            .map_err(Failure::op)?;
        Ok(commit_result_json(&result))
    }

    // -- coarse-lock baseline guards ----------------------------------

    fn read_guard(&self) -> Option<parking_lot::RwLockReadGuard<'_, ()>> {
        self.opts.coarse_lock.then(|| self.coarse.read())
    }

    fn write_guard(&self) -> Option<parking_lot::RwLockWriteGuard<'_, ()>> {
        self.opts.coarse_lock.then(|| self.coarse.write())
    }
}

// -- parameter parsing ------------------------------------------------

/// `obs.spans`: the most recent `n` (default 64) flight-recorder spans.
/// Introspection only — span payloads carry wall-clock times and must never
/// feed back into determinism observables.
fn obs_spans(p: &Params<'_>) -> Result<Value, Failure> {
    let n = p.u64_opt("n")?.unwrap_or(64) as usize;
    let rec = trace::recorder();
    Ok(obj(vec![
        ("enabled", Value::Bool(rec.is_enabled())),
        ("capacity", Value::U64(rec.capacity() as u64)),
        ("recorded", Value::U64(rec.recorded())),
        (
            "spans",
            Value::Seq(rec.recent(n).iter().map(span_json).collect()),
        ),
    ]))
}

/// `obs.slow`: the `n` (default 10) slowest retained spans.
fn obs_slow(p: &Params<'_>) -> Result<Value, Failure> {
    let n = p.u64_opt("n")?.unwrap_or(10) as usize;
    Ok(Value::Seq(
        trace::recorder().slowest(n).iter().map(span_json).collect(),
    ))
}

fn span_json(rec: &mlcask_obs::SpanRecord) -> Value {
    obj(vec![
        ("seq", Value::U64(rec.seq)),
        ("name", s(rec.name)),
        (
            "labels",
            obj(rec
                .labels
                .iter()
                .map(|(k, v)| (*k, s(v)))
                .collect::<Vec<_>>()),
        ),
        ("thread", Value::U64(rec.thread)),
        ("end_unix_micros", Value::U64(rec.end_unix_micros)),
        ("duration_nanos", Value::U64(rec.duration_nanos)),
    ])
}

/// Parses `"name@<semver>"` (e.g. `"model@0.2"`, `"impute@dev@1.0"`).
fn parse_component(spec: &str) -> Result<ComponentKey, Failure> {
    let (name, version) = spec.split_once('@').ok_or_else(|| {
        Failure::new(
            INVALID_PARAMS,
            format!("component `{spec}` must be `name@version`"),
        )
    })?;
    let version: SemVer = version
        .parse()
        .map_err(|e| Failure::new(INVALID_PARAMS, format!("component `{spec}`: {e}")))?;
    Ok(ComponentKey::new(name, version))
}

fn parse_right(name: &str) -> Result<ShareRight, Failure> {
    match name {
        "read" => Ok(ShareRight::Read),
        "fork" => Ok(ShareRight::Fork),
        "merge_into" => Ok(ShareRight::MergeInto),
        other => Err(Failure::params(format!(
            "unknown share right `{other}` (read|fork|merge_into)"
        ))),
    }
}

fn parse_strategy(name: Option<&str>) -> Result<MergeStrategy, Failure> {
    match name.unwrap_or("full") {
        "naive" => Ok(MergeStrategy::Naive),
        "without_pc_pr" => Ok(MergeStrategy::WithoutPcPr),
        "without_pr" => Ok(MergeStrategy::WithoutPr),
        "full" => Ok(MergeStrategy::Full),
        other => Err(Failure::params(format!(
            "unknown strategy `{other}` (naive|without_pc_pr|without_pr|full)"
        ))),
    }
}

// -- response rendering -----------------------------------------------

fn commit_json(c: &Commit) -> Value {
    obj(vec![
        ("id", s(c.id.to_hex())),
        ("branch", s(&c.branch)),
        ("seq", Value::U64(c.seq as u64)),
        ("message", s(&c.message)),
        (
            "parents",
            Value::Seq(c.parents.iter().map(|p| s(p.to_hex())).collect()),
        ),
        ("tick", Value::U64(c.tick)),
    ])
}

fn commit_result_json(r: &CommitResult) -> Value {
    let mut pairs = vec![("committed", Value::Bool(r.commit.is_some()))];
    if let Some(c) = &r.commit {
        pairs.push(("commit", commit_json(c)));
    }
    pairs.push(("executed", Value::U64(r.report.executed_count() as u64)));
    pairs.push(("reused", Value::U64(r.report.reused_count() as u64)));
    obj(pairs)
}

/// Merge outcome; `skipped_by_frontier` is deliberately excluded — it is
/// the one search statistic that may vary with worker count (see the
/// read-path bench's normalization), and serving responses must stay
/// byte-identical across workers.
fn merge_json(o: &MergeOutcome) -> Value {
    let mut pairs = vec![
        ("committed", Value::Bool(o.commit.is_some())),
        ("fast_forward", Value::Bool(o.fast_forward)),
    ];
    if let Some(c) = &o.commit {
        pairs.push(("commit", commit_json(c)));
    }
    if let Some(r) = &o.report {
        pairs.push((
            "search",
            obj(vec![
                ("candidates_total", Value::U64(r.candidates_total as u64)),
                (
                    "candidates_evaluated",
                    Value::U64(r.candidates_evaluated as u64),
                ),
                ("candidates_pruned", Value::U64(r.candidates_pruned as u64)),
                (
                    "executed_components",
                    Value::U64(r.executed_components as u64),
                ),
                ("reused_components", Value::U64(r.reused_components as u64)),
                ("failed_candidates", Value::U64(r.failed_candidates as u64)),
            ]),
        ));
    }
    obj(pairs)
}

fn usage_json(u: &TenantUsage) -> Value {
    obj(vec![
        ("blobs_written", Value::U64(u.blobs_written)),
        ("logical_bytes", Value::U64(u.logical_bytes)),
        ("physical_bytes", Value::U64(u.physical_bytes)),
    ])
}

fn workspace_usage_json(ws: &Workspace) -> Value {
    let usages = ws.usages();
    let shared = ws.shared_view();
    Value::Map(
        usages
            .into_iter()
            .map(|(name, u)| {
                let mut fields = usage_json(&u);
                if let (Value::Map(pairs), Some(sh)) = (&mut fields, shared.get(&name)) {
                    pairs.push((
                        "referenced_bytes".to_string(),
                        Value::U64(sh.referenced_bytes),
                    ));
                }
                (name, fields)
            })
            .collect(),
    )
}
