//! Serving front-end for a shared MLCask workspace.
//!
//! A long-running daemon exposing session-scoped pipeline operations —
//! open/commit/log/merge/usage — as line-delimited JSON-RPC over stdio or
//! TCP, with admission control and per-tenant rate limiting layered over
//! the storage-level quotas.
//!
//! The crate exists to *serve reads while merges run*. The workspace's
//! commit graph publishes immutable snapshots at commit points
//! (`mlcask_storage::commit::GraphView`), so every read request resolves
//! against a frozen view without holding any lock across the reply; the
//! only coarse lock in this crate is the opt-in baseline mode the
//! `serving_load` bench measures against.
//!
//! Module map:
//! * [`protocol`] — request/response encoding and error codes;
//! * [`limits`] — admission control (session cap, in-flight cap,
//!   per-tenant token buckets);
//! * [`service`] — the [`Router`](service::Router): sessions, tenants,
//!   method dispatch;
//! * [`transport`] — stdio and TCP loops.

pub mod limits;
pub mod protocol;
pub mod service;
pub mod transport;

/// Common re-exports.
pub mod prelude {
    pub use crate::limits::{AdmissionControl, RateLimit};
    pub use crate::protocol::{Failure, Request};
    pub use crate::service::{Router, ServerOptions};
    pub use crate::transport::{serve_stdio, serve_tcp};
}

#[cfg(test)]
mod tests {
    use crate::limits::AdmissionControl;
    use crate::service::{Router, ServerOptions};
    use mlcask_pipeline::parallel::ParallelismPolicy;
    use serde::Value;

    fn router(coarse: bool) -> Router {
        Router::in_memory(
            mlcask_workloads::readmission::build(),
            ServerOptions {
                parallelism: ParallelismPolicy::Sequential,
                coarse_lock: coarse,
                admission: AdmissionControl::unlimited(),
            },
        )
    }

    /// Extracts `result` from a response line, panicking on `error`.
    fn result_of(line: &str) -> Value {
        let v: Value = serde_json::from_str(line).unwrap();
        let m = v.as_map().unwrap();
        if let Some(err) = serde::map_get(m, "error") {
            panic!("unexpected error response: {err:?} in {line}");
        }
        serde::map_get(m, "result").cloned().unwrap()
    }

    fn u64_field(v: &Value, key: &str) -> u64 {
        match serde::map_get(v.as_map().unwrap(), key) {
            Some(Value::U64(n)) => *n,
            other => panic!("field {key}: {other:?}"),
        }
    }

    #[test]
    fn end_to_end_session_lifecycle() {
        let r = router(false);
        assert!(r
            .handle_text(r#"{"id":0,"method":"ping"}"#)
            .contains("pong"));

        let open = result_of(
            &r.handle_text(r#"{"id":1,"method":"session.open","params":{"tenant":"alpha"}}"#),
        );
        let sid = u64_field(&open, "session");
        assert_eq!(sid, 1);

        // Initial commit over the workload's starting pipeline.
        let commit = result_of(&r.handle_text(
            r#"{"id":2,"method":"commit","params":{"session":1,"branch":"master","components":["readmission_data@0.0","data_cleanse@0.0","feature_extract@0.0","cnn@0.0"],"message":"initial"}}"#,
        ));
        assert_eq!(
            serde::map_get(commit.as_map().unwrap(), "committed"),
            Some(&Value::Bool(true))
        );

        let branches =
            result_of(&r.handle_text(r#"{"id":3,"method":"branches","params":{"session":1}}"#));
        assert_eq!(branches, Value::Seq(vec![Value::Str("master".into())]));

        let log = result_of(
            &r.handle_text(r#"{"id":4,"method":"log","params":{"session":1,"branch":"master"}}"#),
        );
        assert_eq!(log.as_seq().unwrap().len(), 1);

        let usage =
            result_of(&r.handle_text(r#"{"id":5,"method":"usage","params":{"session":1}}"#));
        assert!(u64_field(&usage, "logical_bytes") > 0);

        assert!(r
            .handle_text(r#"{"id":6,"method":"session.close","params":{"session":1}}"#)
            .contains("true"));
        // Closed sessions are gone.
        assert!(r
            .handle_text(r#"{"id":7,"method":"log","params":{"session":1,"branch":"master"}}"#)
            .contains("no such session"));
    }

    #[test]
    fn unknown_method_and_bad_params() {
        let r = router(false);
        r.handle_text(r#"{"id":1,"method":"session.open","params":{"tenant":"a"}}"#);
        assert!(r
            .handle_text(r#"{"id":2,"method":"frobnicate","params":{"session":1}}"#)
            .contains("-32601"));
        assert!(r
            .handle_text(r#"{"id":3,"method":"commit","params":{"session":1}}"#)
            .contains("-32602"));
        assert!(r
            .handle_text(
                r#"{"id":4,"method":"commit","params":{"session":1,"branch":"b","components":["nope"]}}"#
            )
            .contains("-32602"));
    }

    #[test]
    fn session_cap_refuses_with_admission_code() {
        let r = Router::in_memory(
            mlcask_workloads::readmission::build(),
            ServerOptions {
                parallelism: ParallelismPolicy::Sequential,
                coarse_lock: false,
                admission: AdmissionControl {
                    max_sessions: Some(1),
                    ..AdmissionControl::default()
                },
            },
        );
        r.handle_text(r#"{"id":1,"method":"session.open","params":{"tenant":"a"}}"#);
        let refused = r.handle_text(r#"{"id":2,"method":"session.open","params":{"tenant":"b"}}"#);
        assert!(refused.contains("-32050"), "{refused}");
        // Closing frees the slot.
        r.handle_text(r#"{"id":3,"method":"session.close","params":{"session":1}}"#);
        let ok = r.handle_text(r#"{"id":4,"method":"session.open","params":{"tenant":"b"}}"#);
        assert!(ok.contains("result"), "{ok}");
    }

    #[test]
    fn coarse_and_snapshot_modes_serve_identical_bytes() {
        // The baseline differs only in lock discipline, never in results.
        let script = [
            r#"{"id":1,"method":"session.open","params":{"tenant":"team"}}"#,
            r#"{"id":2,"method":"commit","params":{"session":1,"branch":"master","components":["readmission_data@0.0","data_cleanse@0.0","feature_extract@0.0","cnn@0.0"],"message":"initial"}}"#,
            r#"{"id":3,"method":"branch","params":{"session":1,"from":"master","to":"dev"}}"#,
            r#"{"id":4,"method":"commit","params":{"session":1,"branch":"dev","components":["readmission_data@0.0","data_cleanse@0.1","feature_extract@0.0","cnn@0.0"],"message":"dev update"}}"#,
            r#"{"id":5,"method":"merge","params":{"session":1,"base":"master","merging":"dev"}}"#,
            r#"{"id":6,"method":"log","params":{"session":1,"branch":"master"}}"#,
            r#"{"id":7,"method":"usage","params":{"session":1}}"#,
        ];
        let run = |coarse: bool| -> Vec<String> {
            let r = router(coarse);
            script.iter().map(|line| r.handle_text(line)).collect()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn cross_tenant_grant_fork_merge_via_rpc() {
        let r = router(false);
        r.handle_text(r#"{"id":1,"method":"session.open","params":{"tenant":"upstream"}}"#);
        r.handle_text(r#"{"id":2,"method":"session.open","params":{"tenant":"downstream"}}"#);
        result_of(&r.handle_text(
            r#"{"id":3,"method":"commit","params":{"session":1,"branch":"master","components":["readmission_data@0.0","data_cleanse@0.0","feature_extract@0.0","cnn@0.0"],"message":"initial"}}"#,
        ));
        result_of(&r.handle_text(
            r#"{"id":4,"method":"grant","params":{"session":1,"peer":"downstream","right":"merge_into"}}"#,
        ));
        result_of(&r.handle_text(
            r#"{"id":5,"method":"fork","params":{"session":2,"peer":"upstream","branch":"master","new_branch":"feature"}}"#,
        ));
        result_of(&r.handle_text(
            r#"{"id":6,"method":"commit","params":{"session":2,"branch":"feature","components":["readmission_data@0.0","data_cleanse@0.0","feature_extract@0.0","cnn@0.1"],"message":"feature"}}"#,
        ));
        let merged = result_of(&r.handle_text(
            r#"{"id":7,"method":"merge.into","params":{"session":2,"peer":"upstream","peer_branch":"master","merging":"feature"}}"#,
        ));
        assert_eq!(
            serde::map_get(merged.as_map().unwrap(), "committed"),
            Some(&Value::Bool(true))
        );
        // The workspace view shows both tenants.
        let usage = result_of(&r.handle_text(r#"{"id":8,"method":"workspace.usage"}"#));
        let names: Vec<&String> = usage.as_map().unwrap().iter().map(|(k, _)| k).collect();
        assert_eq!(names, ["downstream", "upstream"]);
    }
}
