//! Line-delimited JSON-RPC protocol: request parsing and response
//! rendering over the vendored [`serde::Value`] tree.
//!
//! One request per line, one response per line. Requests carry an opaque
//! `id` (echoed verbatim), a `method` string, and an optional `params`
//! object. Responses carry either a `result` value or an `error` object
//! `{code, message}` with JSON-RPC style codes (negative integers; the
//! `-3205x` range is the daemon's admission-control band).

use serde::Value;

/// Malformed request line (invalid JSON).
pub const PARSE_ERROR: i64 = -32700;
/// Structurally invalid request object.
pub const INVALID_REQUEST: i64 = -32600;
/// Unknown method name.
pub const METHOD_NOT_FOUND: i64 = -32601;
/// Missing or ill-typed parameters.
pub const INVALID_PARAMS: i64 = -32602;
/// The operation itself failed (store/graph/quota errors).
pub const OP_FAILED: i64 = -32000;
/// Admission control refused a new session (session cap reached).
pub const ADMISSION_DENIED: i64 = -32050;
/// Per-tenant rate limiter refused the operation.
pub const RATE_LIMITED: i64 = -32051;
/// Too many operations in flight (server-wide backpressure).
pub const OVERLOADED: i64 = -32052;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen correlation id, echoed back verbatim.
    pub id: Value,
    /// Method name (e.g. `"session.open"`).
    pub method: String,
    /// Parameter object (`Value::Null` when omitted).
    pub params: Value,
}

/// A method failure: the error code plus a human-readable message.
#[derive(Debug, Clone)]
pub struct Failure {
    /// One of the code constants above.
    pub code: i64,
    /// Description rendered into the `error.message` field.
    pub msg: String,
}

impl Failure {
    /// Builds a failure from any displayable message.
    pub fn new(code: i64, msg: impl std::fmt::Display) -> Failure {
        Failure {
            code,
            msg: msg.to_string(),
        }
    }

    /// Shorthand for a `-32602` parameter error.
    pub fn params(msg: impl std::fmt::Display) -> Failure {
        Failure::new(INVALID_PARAMS, msg)
    }

    /// Shorthand for a `-32000` operation error.
    pub fn op(msg: impl std::fmt::Display) -> Failure {
        Failure::new(OP_FAILED, msg)
    }
}

/// Builds an object value from key/value pairs (insertion-ordered, so the
/// rendered JSON is deterministic).
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Map(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// String value shorthand.
pub fn s(x: impl Into<String>) -> Value {
    Value::Str(x.into())
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, Failure> {
    let v: Value = serde_json::from_str(line).map_err(|e| Failure::new(PARSE_ERROR, e))?;
    let m = v
        .as_map()
        .ok_or_else(|| Failure::new(INVALID_REQUEST, "request must be an object"))?;
    let method = match serde::map_get(m, "method") {
        Some(Value::Str(name)) => name.clone(),
        Some(other) => {
            return Err(Failure::new(
                INVALID_REQUEST,
                format!("method must be a string, got {}", other.type_name()),
            ))
        }
        None => return Err(Failure::new(INVALID_REQUEST, "missing `method`")),
    };
    let id = serde::map_get(m, "id").cloned().unwrap_or(Value::Null);
    let params = serde::map_get(m, "params").cloned().unwrap_or(Value::Null);
    Ok(Request { id, method, params })
}

/// A success response value.
pub fn ok_response(id: &Value, result: Value) -> Value {
    obj(vec![("id", id.clone()), ("result", result)])
}

/// An error response value.
pub fn error_response(id: &Value, failure: &Failure) -> Value {
    obj(vec![
        ("id", id.clone()),
        (
            "error",
            obj(vec![
                ("code", Value::I64(failure.code)),
                ("message", s(&failure.msg)),
            ]),
        ),
    ])
}

/// Typed parameter accessors over the request's `params` object.
pub struct Params<'a> {
    map: &'a [(String, Value)],
}

impl<'a> Params<'a> {
    /// Wraps the request's params; errors unless it is an object.
    pub fn of(req: &'a Request) -> Result<Params<'a>, Failure> {
        match &req.params {
            Value::Map(m) => Ok(Params { map: m }),
            Value::Null => Ok(Params { map: &[] }),
            other => Err(Failure::params(format!(
                "params must be an object, got {}",
                other.type_name()
            ))),
        }
    }

    /// Raw field lookup.
    pub fn get(&self, key: &str) -> Option<&'a Value> {
        serde::map_get(self.map, key)
    }

    /// Required string field.
    pub fn str(&self, key: &str) -> Result<&'a str, Failure> {
        match self.get(key) {
            Some(Value::Str(v)) => Ok(v),
            Some(other) => Err(Failure::params(format!(
                "`{key}` must be a string, got {}",
                other.type_name()
            ))),
            None => Err(Failure::params(format!("missing `{key}`"))),
        }
    }

    /// Optional string field.
    pub fn str_opt(&self, key: &str) -> Result<Option<&'a str>, Failure> {
        match self.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(Value::Str(v)) => Ok(Some(v)),
            Some(other) => Err(Failure::params(format!(
                "`{key}` must be a string, got {}",
                other.type_name()
            ))),
        }
    }

    /// Required unsigned integer field.
    pub fn u64(&self, key: &str) -> Result<u64, Failure> {
        match self.get(key) {
            Some(Value::U64(v)) => Ok(*v),
            Some(Value::I64(v)) if *v >= 0 => Ok(*v as u64),
            Some(other) => Err(Failure::params(format!(
                "`{key}` must be a non-negative integer, got {}",
                other.type_name()
            ))),
            None => Err(Failure::params(format!("missing `{key}`"))),
        }
    }

    /// Optional unsigned integer field.
    pub fn u64_opt(&self, key: &str) -> Result<Option<u64>, Failure> {
        match self.get(key) {
            None | Some(Value::Null) => Ok(None),
            _ => self.u64(key).map(Some),
        }
    }

    /// Required array-of-strings field.
    pub fn str_seq(&self, key: &str) -> Result<Vec<&'a str>, Failure> {
        let seq = match self.get(key) {
            Some(Value::Seq(items)) => items,
            Some(other) => {
                return Err(Failure::params(format!(
                    "`{key}` must be an array, got {}",
                    other.type_name()
                )))
            }
            None => return Err(Failure::params(format!("missing `{key}`"))),
        };
        seq.iter()
            .map(|v| match v {
                Value::Str(x) => Ok(x.as_str()),
                other => Err(Failure::params(format!(
                    "`{key}` items must be strings, got {}",
                    other.type_name()
                ))),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_request() {
        let req = parse_request(r#"{"id": 7, "method": "commit", "params": {"branch": "master"}}"#)
            .unwrap();
        assert_eq!(req.id, Value::U64(7));
        assert_eq!(req.method, "commit");
        let p = Params::of(&req).unwrap();
        assert_eq!(p.str("branch").unwrap(), "master");
        assert!(p.str("missing").is_err());
    }

    #[test]
    fn rejects_bad_shapes() {
        assert_eq!(parse_request("not json").unwrap_err().code, PARSE_ERROR);
        assert_eq!(parse_request("[1,2]").unwrap_err().code, INVALID_REQUEST);
        assert_eq!(
            parse_request(r#"{"id": 1}"#).unwrap_err().code,
            INVALID_REQUEST
        );
        assert_eq!(
            parse_request(r#"{"method": 3}"#).unwrap_err().code,
            INVALID_REQUEST
        );
    }

    #[test]
    fn responses_round_trip() {
        let id = Value::Str("abc".into());
        let ok = ok_response(&id, s("pong"));
        let text = serde_json::to_string(&ok).unwrap();
        assert_eq!(text, r#"{"id":"abc","result":"pong"}"#);
        let err = error_response(&id, &Failure::new(METHOD_NOT_FOUND, "no such method"));
        let text = serde_json::to_string(&err).unwrap();
        assert!(text.contains("-32601"), "{text}");
    }
}
