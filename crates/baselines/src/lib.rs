//! # mlcask-baselines
//!
//! The comparison systems of the MLCask evaluation (§VII-B):
//!
//! * **ModelDB-like** — tracking APIs without automatic intermediate reuse;
//!   every retraining starts from scratch; outputs archived to per-iteration
//!   folders.
//! * **MLflow-like** — intermediate-result reuse, but folder-archive storage
//!   without chunk-level dedup and no compatibility precheck.
//!
//! Both are *policy-faithful simulators* built on the same executor as
//! MLCask so measured differences isolate exactly the policies the paper
//! compares (see DESIGN.md §2). [`runner`] drives the linear-versioning
//! scenario across all three systems; [`nonlinear`] drives the merge
//! ablations (MLCask vs "w/o PCPR" vs "w/o PR").

#![warn(missing_docs)]

pub mod archive;
pub mod nonlinear;
pub mod runner;

/// Common imports for downstream crates.
pub mod prelude {
    pub use crate::archive::FolderArchive;
    pub use crate::nonlinear::{run_merge, MergeRunResult, FIG8_STRATEGIES};
    pub use crate::runner::{run_linear, IterationRecord, LinearRunResult, SystemKind};
}
