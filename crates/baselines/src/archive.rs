//! Folder-archive storage accounting (§VII-B baselines).
//!
//! ModelDB and MLflow "archive different versions of libraries and
//! intermediate results into separate folders": no content addressing, no
//! dedup — every archived object costs its full logical size, and identical
//! content archived twice costs twice. The only difference between the two
//! baselines is *what* gets archived (ModelDB re-archives every output every
//! iteration; MLflow archives each distinct intermediate once).

use mlcask_storage::costmodel::StorageCostModel;
use mlcask_storage::hash::Hash256;
use std::collections::HashSet;
use std::time::Duration;

/// Cumulative folder-archive accounting.
#[derive(Debug, Default)]
pub struct FolderArchive {
    bytes: u64,
    objects: u64,
    seen: HashSet<Hash256>,
}

impl FolderArchive {
    /// Empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Archives an object unconditionally (ModelDB semantics). Returns the
    /// modeled copy time.
    pub fn archive(&mut self, len: u64) -> Duration {
        self.bytes += len;
        self.objects += 1;
        StorageCostModel::FOLDER_COPY.write_cost(len, len)
    }

    /// Archives an object only if its content id is new (MLflow reuse
    /// semantics). Returns the copy time (zero when skipped).
    pub fn archive_once(&mut self, id: Hash256, len: u64) -> Duration {
        if self.seen.insert(id) {
            self.archive(len)
        } else {
            Duration::ZERO
        }
    }

    /// Total bytes archived (the CSS contribution).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of archived objects.
    pub fn objects(&self) -> u64 {
        self.objects
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archive_accumulates_every_copy() {
        let mut a = FolderArchive::new();
        let t1 = a.archive(1000);
        let t2 = a.archive(1000);
        assert_eq!(a.bytes(), 2000);
        assert_eq!(a.objects(), 2);
        assert_eq!(t1, t2);
        assert!(t1 > Duration::ZERO);
    }

    #[test]
    fn archive_once_skips_duplicates() {
        let mut a = FolderArchive::new();
        let id = Hash256::of(b"artifact");
        let first = a.archive_once(id, 500);
        let second = a.archive_once(id, 500);
        assert!(first > Duration::ZERO);
        assert_eq!(second, Duration::ZERO);
        assert_eq!(a.bytes(), 500);
        // Different content still archives.
        a.archive_once(Hash256::of(b"other"), 300);
        assert_eq!(a.bytes(), 800);
    }

    #[test]
    fn copy_time_scales_with_size() {
        let mut a = FolderArchive::new();
        let small = a.archive(1 << 10);
        let large = a.archive(1 << 30);
        assert!(large > small);
    }
}
