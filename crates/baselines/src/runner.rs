//! The linear-versioning experiment runner (Figs. 5–7).
//!
//! Replays one update sequence through each system under test and collects
//! per-iteration time composition and cumulative storage. The three systems
//! differ only in their policies:
//!
//! | System | Intermediate reuse | Incompat. precheck | Storage |
//! |---|---|---|---|
//! | ModelDB | no | no | folder archive, re-archives every output every iteration |
//! | MLflow | yes | no | folder archive, archives each distinct output once |
//! | MLCask | yes | yes | ForkBase chunk store (dedup, physical bytes) |

use crate::archive::FolderArchive;
use mlcask_core::errors::Result;
use mlcask_core::registry::{simulated_executable, ComponentRegistry};
use mlcask_core::system::MlCask;
use mlcask_pipeline::clock::{ClockLedger, ClockSnapshot};
use mlcask_pipeline::component::ComponentKey;
use mlcask_pipeline::dag::BoundPipeline;
use mlcask_pipeline::executor::{ExecOptions, Executor, MemoryCache, RunOutcome};
use mlcask_storage::chunk::ChunkParams;
use mlcask_storage::costmodel::StorageCostModel;
use mlcask_storage::store::ChunkStore;
use mlcask_workloads::common::Workload;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// The systems compared in the linear-versioning experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystemKind {
    /// ModelDB-like: tracking only, rerun everything, folder archive.
    ModelDb,
    /// MLflow-like: intermediate reuse, folder archive.
    Mlflow,
    /// MLCask: reuse + precheck + deduplicating store.
    MlCask,
}

impl SystemKind {
    /// Legend label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::ModelDb => "ModelDB",
            SystemKind::Mlflow => "MLflow",
            SystemKind::MlCask => "MLCask",
        }
    }

    /// All three systems in figure order.
    pub const ALL: [SystemKind; 3] = [SystemKind::ModelDb, SystemKind::Mlflow, SystemKind::MlCask];
}

/// One iteration's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration number (0-based; iteration 0 is the initial training).
    pub iteration: usize,
    /// This iteration's time composition.
    pub delta: ClockSnapshot,
    /// Cumulative time composition up to and including this iteration.
    pub cumulative: ClockSnapshot,
    /// Cumulative storage size (CSS) in bytes after this iteration.
    pub cumulative_storage_bytes: u64,
    /// Whether the pipeline completed (false at the incompatible iteration).
    pub completed: bool,
    /// Component executions performed.
    pub executed_components: usize,
    /// Component executions skipped via reuse.
    pub reused_components: usize,
    /// Final metric score when completed.
    pub score: Option<f64>,
}

/// Result of replaying a full update sequence through one system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearRunResult {
    /// System under test.
    pub system: SystemKind,
    /// Workload name.
    pub workload: String,
    /// Per-iteration measurements.
    pub iterations: Vec<IterationRecord>,
}

impl LinearRunResult {
    /// Total time (seconds) after the final iteration — Fig. 5's y-axis.
    pub fn total_time_secs(&self) -> f64 {
        self.iterations
            .last()
            .map(|r| r.cumulative.total_secs())
            .unwrap_or(0.0)
    }

    /// Final CSS in MiB — Fig. 7's y-axis.
    pub fn final_css_mib(&self) -> f64 {
        self.iterations
            .last()
            .map(|r| r.cumulative_storage_bytes as f64 / (1024.0 * 1024.0))
            .unwrap_or(0.0)
    }
}

/// Runs the linear-versioning scenario for one system.
pub fn run_linear(
    system: SystemKind,
    workload: &Workload,
    sequence: &[Vec<ComponentKey>],
) -> Result<LinearRunResult> {
    match system {
        SystemKind::MlCask => run_linear_mlcask(workload, sequence),
        SystemKind::ModelDb | SystemKind::Mlflow => run_linear_baseline(system, workload, sequence),
    }
}

fn run_linear_mlcask(
    workload: &Workload,
    sequence: &[Vec<ComponentKey>],
) -> Result<LinearRunResult> {
    // Fresh ForkBase-like store; components registered on first use so
    // library storage lands in the iteration that introduces the version.
    let store = Arc::new(ChunkStore::new(
        Arc::new(mlcask_storage::backend::MemBackend::new()),
        ChunkParams::DEFAULT,
        StorageCostModel::FORKBASE,
    ));
    let registry = Arc::new(ComponentRegistry::new(Arc::clone(&store)));
    let sys = MlCask::new(&workload.name, workload.dag(), Arc::clone(&registry));
    let handle_for = |key: &ComponentKey| {
        workload
            .handles
            .iter()
            .find(|h| &h.key() == key)
            .cloned()
            .expect("sequence references a known version")
    };

    let clock = ClockLedger::new();
    let mut iterations = Vec::with_capacity(sequence.len());
    for (it, keys) in sequence.iter().enumerate() {
        let before = clock.snapshot();
        for key in keys {
            let (_, cost) = registry.register_timed(handle_for(key))?;
            clock.charge_storage(cost);
        }
        let result = sys.commit_pipeline("master", keys, &format!("iteration {it}"), &clock)?;
        let completed = result.report.outcome.is_completed();
        iterations.push(IterationRecord {
            iteration: it,
            delta: clock.delta_since(&before),
            cumulative: clock.snapshot(),
            cumulative_storage_bytes: store.stats().total().physical_bytes,
            completed,
            executed_components: result.report.executed_count(),
            reused_components: result.report.reused_count(),
            score: result.report.outcome.score().map(|s| s.value),
        });
    }
    Ok(LinearRunResult {
        system: SystemKind::MlCask,
        workload: workload.name.clone(),
        iterations,
    })
}

fn run_linear_baseline(
    system: SystemKind,
    workload: &Workload,
    sequence: &[Vec<ComponentKey>],
) -> Result<LinearRunResult> {
    // Mechanical store (free cost model): persistence is required so MLflow
    // can materialise reused intermediates, but all storage *accounting* is
    // done by the folder archive below.
    let store = ChunkStore::new(
        Arc::new(mlcask_storage::backend::MemBackend::new()),
        ChunkParams::DEFAULT,
        StorageCostModel::FREE,
    );
    let executor = Executor::new(&store);
    let cache = MemoryCache::new();
    let dag = Arc::new(workload.dag());
    let handle_for = |key: &ComponentKey| {
        workload
            .handles
            .iter()
            .find(|h| &h.key() == key)
            .cloned()
            .expect("sequence references a known version")
    };
    let options = match system {
        SystemKind::Mlflow => ExecOptions::REUSE_ONLY,
        _ => ExecOptions::RERUN_ALL,
    };

    let mut archive = FolderArchive::new();
    let mut libs_seen: HashSet<ComponentKey> = HashSet::new();
    let clock = ClockLedger::new();
    let mut iterations = Vec::with_capacity(sequence.len());
    for (it, keys) in sequence.iter().enumerate() {
        let before = clock.snapshot();
        // Library archiving: full folder copy the first time a version
        // appears.
        for key in keys {
            if libs_seen.insert(key.clone()) {
                let size = simulated_executable(
                    &key.name,
                    &key.version.to_string(),
                    ComponentRegistry::DEFAULT_EXE_SIZE,
                )
                .len() as u64;
                clock.charge_storage(archive.archive(size));
            }
        }
        let components = keys.iter().map(&handle_for).collect();
        let bound = BoundPipeline::new(Arc::clone(&dag), components)?;
        let cache_ref = if options.reuse { Some(&cache) } else { None };
        let report = executor.run(
            &bound,
            &clock,
            cache_ref.map(|c| c as &dyn mlcask_pipeline::executor::OutputCache),
            options,
        )?;
        // Output archiving per policy.
        for stage in &report.stages {
            if stage.reused {
                continue; // MLflow skipped it entirely
            }
            let t: Duration = match system {
                SystemKind::ModelDb => archive.archive(stage.artifact_bytes),
                SystemKind::Mlflow => archive.archive_once(stage.artifact_id, stage.artifact_bytes),
                SystemKind::MlCask => unreachable!(),
            };
            clock.charge_storage(t);
        }
        // ModelDB re-archives previously produced outputs of reused... no:
        // ModelDB never reuses, so every stage re-executes and re-archives —
        // exactly the linear CSS growth of Fig. 7.
        let completed = report.outcome.is_completed();
        let failed_mid_run = matches!(report.outcome, RunOutcome::Failed { .. });
        debug_assert!(
            it != sequence.len() - 1 || failed_mid_run,
            "the final iteration must fail mid-run for the baselines"
        );
        iterations.push(IterationRecord {
            iteration: it,
            delta: clock.delta_since(&before),
            cumulative: clock.snapshot(),
            cumulative_storage_bytes: archive.bytes(),
            completed,
            executed_components: report.executed_count(),
            reused_components: report.reused_count(),
            score: report.outcome.score().map(|s| s.value),
        });
    }
    Ok(LinearRunResult {
        system,
        workload: workload.name.clone(),
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcask_workloads::readmission;
    use mlcask_workloads::scenario::{linear_update_sequence, LinearScenario};

    fn run_all() -> Vec<LinearRunResult> {
        let w = readmission::build();
        let seq = linear_update_sequence(&w, &LinearScenario::default());
        SystemKind::ALL
            .iter()
            .map(|&s| run_linear(s, &w, &seq).unwrap())
            .collect()
    }

    #[test]
    fn all_systems_complete_ten_iterations() {
        for r in run_all() {
            assert_eq!(r.iterations.len(), 10, "{}", r.system.label());
            // Cumulative time monotone.
            for w in r.iterations.windows(2) {
                assert!(w[1].cumulative.total_ns() >= w[0].cumulative.total_ns());
                assert!(w[1].cumulative_storage_bytes >= w[0].cumulative_storage_bytes);
            }
        }
    }

    #[test]
    fn modeldb_slowest_mlcask_fastest() {
        let rs = run_all();
        let (modeldb, mlflow, mlcask) = (&rs[0], &rs[1], &rs[2]);
        assert!(
            modeldb.total_time_secs() > mlflow.total_time_secs(),
            "ModelDB {} vs MLflow {}",
            modeldb.total_time_secs(),
            mlflow.total_time_secs()
        );
        assert!(
            mlflow.total_time_secs() > mlcask.total_time_secs(),
            "MLflow {} vs MLCask {}",
            mlflow.total_time_secs(),
            mlcask.total_time_secs()
        );
    }

    #[test]
    fn storage_ordering_matches_fig7() {
        let rs = run_all();
        let (modeldb, mlflow, mlcask) = (&rs[0], &rs[1], &rs[2]);
        assert!(modeldb.final_css_mib() > mlflow.final_css_mib());
        assert!(mlflow.final_css_mib() > mlcask.final_css_mib());
    }

    #[test]
    fn final_iteration_fails_for_baselines_rejected_for_mlcask() {
        let rs = run_all();
        for r in &rs {
            let last = r.iterations.last().unwrap();
            assert!(!last.completed, "{}", r.system.label());
            match r.system {
                SystemKind::MlCask => {
                    // Precheck: zero execution time spent.
                    assert_eq!(last.delta.exec_ns(), 0);
                    assert_eq!(last.executed_components, 0);
                }
                _ => {
                    // Baselines ran until the error (paid pre-processing).
                    assert!(last.delta.exec_ns() > 0);
                    assert!(last.executed_components > 0);
                }
            }
        }
    }

    #[test]
    fn mlcask_reuses_unchanged_components() {
        let rs = run_all();
        let mlcask = &rs[2];
        // After iteration 0, every iteration reuses at least the dataset.
        for it in &mlcask.iterations[1..] {
            if it.completed {
                assert!(it.reused_components >= 1, "iteration {}", it.iteration);
            }
        }
        // ModelDB never reuses.
        for it in &rs[0].iterations {
            assert_eq!(it.reused_components, 0);
        }
    }
}
