//! The non-linear (merge) experiment runner (Figs. 8–9).
//!
//! For each merge strategy, a fresh system replays the Fig. 3 branch
//! history and then performs the merge; the report isolates merge-only
//! cumulative pipeline time (CPT), execution time (CET), storage time (CST),
//! and storage size (CSS).
//!
//! CSS is reported on a consistent *logical-bytes* basis for all three
//! systems: full MLCask executes (and therefore archives) every distinct
//! tree node once — "saves the final optimal pipeline only once" — while
//! the ablations re-archive every candidate's outputs from scratch. The
//! additional chunk-level dedup of the ForkBase store is reported
//! separately as `css_physical_bytes`.

use mlcask_core::errors::Result;
use mlcask_core::merge::{MergeSearchReport, MergeStrategy};
use mlcask_pipeline::clock::ClockLedger;
use mlcask_workloads::common::Workload;
use mlcask_workloads::scenario::{build_system, setup_nonlinear};
use serde::{Deserialize, Serialize};

/// Measurements of one merge under one strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MergeRunResult {
    /// Workload name.
    pub workload: String,
    /// Strategy used.
    pub strategy: MergeStrategy,
    /// Merge-only cumulative pipeline time in seconds (CPT).
    pub cpt_secs: f64,
    /// Merge-only cumulative execution time in seconds (CET).
    pub cet_secs: f64,
    /// Merge-only cumulative storage time in seconds (CST).
    pub cst_secs: f64,
    /// Merge-only cumulative storage size in bytes (CSS, logical basis).
    pub css_bytes: u64,
    /// Physical bytes after chunk dedup (MLCask's additional saving).
    pub css_physical_bytes: u64,
    /// The underlying search report.
    pub report: MergeSearchReport,
}

/// Runs one workload's merge under one strategy on a fresh system.
pub fn run_merge(workload: &Workload, strategy: MergeStrategy) -> Result<MergeRunResult> {
    let (_registry, sys) = build_system(workload)?;
    setup_nonlinear(&sys, workload)?;
    let clock = ClockLedger::new();
    let outcome = sys.merge("master", "dev", strategy, &clock)?;
    let report = outcome.report.expect("diverged merge produces a report");
    Ok(MergeRunResult {
        workload: workload.name.clone(),
        strategy,
        cpt_secs: report.clock.total_secs(),
        cet_secs: report.clock.exec_ns() as f64 / 1e9,
        cst_secs: report.clock.storage_ns as f64 / 1e9,
        css_bytes: report.logical_bytes,
        css_physical_bytes: report.physical_bytes,
        report,
    })
}

/// The three strategies of Fig. 8, in legend order.
pub const FIG8_STRATEGIES: [MergeStrategy; 3] = [
    MergeStrategy::Full,
    MergeStrategy::WithoutPcPr,
    MergeStrategy::WithoutPr,
];

#[cfg(test)]
mod tests {
    use super::*;
    use mlcask_workloads::readmission;

    #[test]
    fn fig8_ordering_holds_for_readmission() {
        let w = readmission::build();
        let full = run_merge(&w, MergeStrategy::Full).unwrap();
        let no_pcpr = run_merge(&w, MergeStrategy::WithoutPcPr).unwrap();
        let no_pr = run_merge(&w, MergeStrategy::WithoutPr).unwrap();
        // Fig. 8: MLCask dominates; w/o PR gives minor gains over w/o PCPR.
        assert!(full.cpt_secs < no_pr.cpt_secs);
        assert!(no_pr.cpt_secs < no_pcpr.cpt_secs);
        assert!(full.cet_secs < no_pr.cet_secs);
        assert!(full.css_bytes < no_pr.css_bytes);
        assert!(no_pr.css_bytes <= no_pcpr.css_bytes);
        // All agree on the winner's score (same search space).
        let s_full = full.report.best.as_ref().unwrap().1.value;
        let s_no = no_pcpr.report.best.as_ref().unwrap().1.value;
        assert!((s_full - s_no).abs() < 1e-12);
    }

    #[test]
    fn headline_speedup_is_substantial() {
        // Abstract: "the proposed merge operation is up to 7.8x faster and
        // saves up to 11.9x storage" vs the no-history baseline. We assert
        // the direction and a >2x margin for one workload here; the bench
        // harness reports exact ratios for all four.
        let w = readmission::build();
        let full = run_merge(&w, MergeStrategy::Full).unwrap();
        let no_pcpr = run_merge(&w, MergeStrategy::WithoutPcPr).unwrap();
        assert!(no_pcpr.cpt_secs / full.cpt_secs > 2.0);
        assert!(no_pcpr.css_bytes as f64 / full.css_bytes as f64 > 2.0);
    }
}
