//! Deterministic replay of traced pipeline executions.
//!
//! The parallel engines split every evaluation into two phases:
//!
//! 1. **Execute (parallel, racy order)** — work runs concurrently via
//!    [`Executor::run_traced`](crate::executor::Executor::run_traced) /
//!    [`run_traced_with`](crate::executor::Executor::run_traced_with).
//!    Component outputs, scores, and chunk layouts are pure functions of the
//!    candidate, so the *results* are order-independent; only timing and
//!    dedup attribution would be racy. Each distinct `(component, inputs)`
//!    execution is recorded once in a shared [`ProfileBook`].
//! 2. **Account (sequential, canonical order)** — [`replay_run`] walks the
//!    work in canonical order and recomputes exactly what a fully
//!    sequential engine would have charged: cache hits against the
//!    sequentially-evolving checkpoint state, materialisation reads,
//!    execution time from profiles, and storage writes replayed chunk-by-
//!    chunk against a simulated "not yet persisted" set
//!    ([`PutTrace::replay`]).
//!
//! The protocol is applied at two granularities:
//!
//! * **Across candidates** — `MergeEngine::search` and
//!   `PrioritizedSearcher::run_trials` trace candidates concurrently, then
//!   replay them in candidate-index order.
//! * **Within one pipeline** — the executor's wavefront path
//!   ([`Executor::run`](crate::executor::Executor::run) with a parallel
//!   policy on a non-chain DAG) traces independent DAG nodes concurrently,
//!   then replays that *single* candidate: [`replay_run`] walks its nodes
//!   in canonical topological order, which is the per-node half of the same
//!   argument.
//!
//! The key order-independence argument: a chunk was present in the store
//! *before* the whole evaluation iff **no** traced write observed it as new,
//! which is invariant under phase-1 scheduling. Everything else the replay
//! consumes (work units, artifact ids, blob layouts, failure points) is
//! deterministic per candidate. Reports produced through this path are
//! therefore byte-identical for `ParallelismPolicy::Sequential` and
//! `ParallelismPolicy::Parallel(n)` — the property the
//! `parallel_determinism` integration test pins down.

use crate::clock::ClockLedger;
use crate::dag::BoundPipeline;
use crate::errors::{PipelineError, Result};
use crate::executor::{CacheKey, CachedOutput, ExecOptions, RunOutcome, RunReport, StageReport};
use crate::parallel::ShardedMap;
use mlcask_storage::hash::Hash256;
use mlcask_storage::object::ObjectRef;
use mlcask_storage::store::{ChunkStore, PutTrace};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// Everything the accounting replay needs to know about one component
/// execution observed during phase 1.
///
/// Serializable so a [`ResumeLog`](crate::resume::ResumeLog) can journal
/// completed executions durably; note a journaled profile's write trace
/// round-trips with its quota reservation stripped (see
/// [`PutTrace`]'s serialization).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StageProfile {
    /// The checkpoint the execution produced.
    pub cached: CachedOutput,
    /// Logical artifact size (`Artifact::byte_len`), independent of the
    /// persisted blob encoding.
    pub artifact_bytes: u64,
    /// Deterministic execution cost in virtual nanoseconds.
    pub exec_ns: u64,
    /// Chunk-level trace of the persisted output blob, if any.
    pub write: Option<PutTrace>,
}

/// Concurrent record of phase-1 executions, shared by all workers of one
/// search. Profile inserts are first-wins (racing executions of the same
/// key produce identical profiles up to `was_new` flags, which are
/// aggregated separately in `new_chunks`).
#[derive(Default)]
pub struct ProfileBook {
    profiles: ShardedMap<CacheKey, StageProfile>,
    failures: RwLock<HashSet<CacheKey>>,
    new_chunks: Mutex<HashSet<Hash256>>,
}

impl ProfileBook {
    /// Empty book.
    pub fn new() -> ProfileBook {
        ProfileBook::default()
    }

    /// Records an execution profile (first writer wins). When a racing
    /// execution of the same key already recorded one, the rejected profile
    /// is returned so the caller can release its write trace's quota
    /// reservation — the book will never settle a trace it did not keep.
    #[must_use = "a rejected duplicate's reservation must be released"]
    pub fn record_profile(&self, key: CacheKey, profile: StageProfile) -> Option<StageProfile> {
        if let Some(w) = &profile.write {
            self.observe_write(w);
        }
        self.profiles.insert_if_absent(key, profile)
    }

    /// Records that executing `key` fails with a schema incompatibility.
    pub fn record_failure(&self, key: CacheKey) {
        self.failures.write().insert(key);
    }

    /// Folds a write trace's newly-persisted chunk hashes into the "new
    /// during this evaluation" set.
    pub fn observe_write(&self, trace: &PutTrace) {
        let mut set = self.new_chunks.lock();
        for c in &trace.chunks {
            if c.was_new {
                set.insert(c.hash);
            }
        }
        if trace.manifest.was_new {
            set.insert(trace.manifest.hash);
        }
    }

    /// The profile recorded for `key`, if any.
    pub fn profile(&self, key: &CacheKey) -> Option<StageProfile> {
        self.profiles.get(key)
    }

    /// True if phase 1 observed `key` failing.
    pub fn is_failure(&self, key: &CacheKey) -> bool {
        self.failures.read().contains(key)
    }

    /// Starts a replay cursor over this book's observations: the simulated
    /// set of chunks that the canonical sequential order has not yet
    /// persisted.
    pub fn replay_cursor(&self) -> ReplayCursor {
        ReplayCursor {
            unseen: self.new_chunks.lock().clone(),
        }
    }

    /// Releases the quota reservations of every traced write recorded in
    /// this book that has not been settled by a replay.
    ///
    /// Engines call this when an evaluation aborts before (or during) its
    /// accounting replay — a quota breach, an unresolvable component, a
    /// storage fault — so in-flight reservations never outlive the
    /// evaluation that took them: tenant accounts end exactly where they
    /// started. Safe to call unconditionally; settled traces are no-ops.
    pub fn release_reservations(&self, store: &ChunkStore) {
        self.profiles.for_each_value(|profile| {
            if let Some(trace) = &profile.write {
                store.release_trace(trace);
            }
        });
    }

    /// Runs one evaluation (phase 1 and its accounting replay) against this
    /// book, then releases whatever reservations remain unsettled —
    /// unconditionally, success and failure alike.
    ///
    /// Traces the replay charged are already settled, so releasing them is
    /// a no-op; what this scope actually reclaims are the traces the
    /// canonical order never replays: nodes past a dynamic failure
    /// frontier (a run that *completes* with `RunOutcome::Failed`),
    /// racing duplicates, and everything recorded before a hard error.
    /// The invariant engines get for free by wrapping their evaluation
    /// here: **no reservation outlives the evaluation that took it.**
    pub fn reservation_scope<T, E>(
        &self,
        store: &ChunkStore,
        f: impl FnOnce() -> std::result::Result<T, E>,
    ) -> std::result::Result<T, E> {
        let result = f();
        self.release_reservations(store);
        result
    }
}

/// Mutable chunk-dedup state threaded through a replay in canonical order.
#[derive(Debug, Clone)]
pub struct ReplayCursor {
    /// Chunks phase 1 persisted that the replay has not yet attributed.
    pub unseen: HashSet<Hash256>,
}

/// Checkpoint contents keyed like an `OutputCache`, used for the replay's
/// sequential cache simulation.
pub type CacheSnapshot = HashMap<CacheKey, CachedOutput>;

struct ReplayNode {
    cached: CachedOutput,
    in_memory: bool,
}

/// Replays one candidate's execution for accounting, mirroring
/// [`Executor::run`](crate::executor::Executor::run) charge-for-charge.
///
/// * `pre` — checkpoints that existed before the whole search (sequential
///   runs would hit these from the first candidate on).
/// * `sim` — checkpoints "created so far" in replay order; grown by this
///   call when `use_cache` is set.
/// * `cursor` — chunk-dedup state in replay order (shared across all
///   candidates of the search, in index order).
///
/// Charges land on `ledger`; stats deltas are recorded on `store` exactly
/// as the sequential engine would have recorded them.
#[allow(clippy::too_many_arguments)]
pub fn replay_run(
    store: &ChunkStore,
    pipeline: &BoundPipeline,
    book: &ProfileBook,
    pre: &CacheSnapshot,
    sim: &mut CacheSnapshot,
    cursor: &mut ReplayCursor,
    ledger: &ClockLedger,
    options: ExecOptions,
    use_cache: bool,
) -> Result<RunReport> {
    let order = pipeline.dag.topo_order()?;
    let mut stages: Vec<StageReport> = Vec::with_capacity(order.len());

    if options.precheck {
        if let Err(PipelineError::IncompatibleSchema(detail)) = pipeline.precheck_compatibility() {
            return Ok(RunReport {
                stages,
                outcome: RunOutcome::RejectedByPrecheck {
                    at: detail.component,
                },
            });
        }
    }

    let mut outputs: HashMap<usize, ReplayNode> = HashMap::new();
    let mut final_score = None;

    for node in order {
        let comp = &pipeline.components[node];
        let preds = pipeline.dag.pre(node);
        let input_ids: Vec<Hash256> = preds
            .iter()
            .map(|p| outputs[p].cached.artifact_id)
            .collect();
        let key = CacheKey {
            component: comp.key(),
            inputs: input_ids,
        };

        // Reuse path under the *sequential* cache state.
        if options.reuse && use_cache {
            let hit = sim.get(&key).or_else(|| pre.get(&key)).cloned();
            if let Some(hit) = hit {
                stages.push(StageReport {
                    component: comp.key(),
                    stage: comp.stage(),
                    reused: true,
                    exec_ns: 0,
                    storage_ns: 0,
                    output: hit.object,
                    artifact_id: hit.artifact_id,
                    artifact_bytes: hit.object.len,
                });
                if let Some(s) = hit.score {
                    final_score = Some(s);
                }
                outputs.insert(
                    node,
                    ReplayNode {
                        cached: hit,
                        in_memory: false,
                    },
                );
                continue;
            }
        }

        // Materialise checkpointed inputs, exactly like the live executor.
        let mut materialise_ns: u64 = 0;
        for p in &preds {
            let out = outputs.get_mut(p).expect("topological order");
            if !out.in_memory {
                if out.cached.object.is_null() {
                    return Err(PipelineError::Storage(
                        mlcask_storage::errors::StorageError::NotFound(out.cached.artifact_id),
                    ));
                }
                materialise_ns += store.read_cost(&out.cached.object).as_nanos() as u64;
                out.in_memory = true;
            }
        }
        if materialise_ns > 0 {
            ledger.charge_storage(Duration::from_nanos(materialise_ns));
        }

        // Failure point observed in phase 1: inputs were materialised (and
        // paid for) but the component never charged execution time.
        if book.is_failure(&key) {
            let at = comp.key();
            return Ok(RunReport {
                stages,
                outcome: RunOutcome::Failed {
                    reason: format!("schema incompatibility at {at}"),
                    at,
                },
            });
        }

        let prof = book.profile(&key).ok_or_else(|| {
            PipelineError::InvalidDag(format!(
                "replay invariant violated: no phase-1 profile for {}",
                key.component
            ))
        })?;

        ledger.charge_exec(comp.stage(), Duration::from_nanos(prof.exec_ns));
        if let Some(s) = prof.cached.score {
            final_score = Some(s);
        }
        let (cached, storage_ns) = if options.persist_outputs {
            let trace = prof.write.as_ref().ok_or_else(|| {
                PipelineError::InvalidDag(
                    "replay invariant violated: phase 1 did not persist an output".into(),
                )
            })?;
            let (cost, stats) = trace.replay(&store.cost_model(), &mut cursor.unseen);
            ledger.charge_storage(cost);
            // Stats *and* per-tenant attribution land here, in canonical
            // replay order, so tenant usage is deterministic too.
            store.record_replayed_write(trace, stats);
            (prof.cached.clone(), cost.as_nanos() as u64)
        } else {
            (
                CachedOutput {
                    object: ObjectRef::null(mlcask_storage::object::ObjectKind::Output),
                    ..prof.cached.clone()
                },
                0,
            )
        };
        if use_cache {
            sim.insert(key, cached.clone());
        }
        stages.push(StageReport {
            component: comp.key(),
            stage: comp.stage(),
            reused: false,
            exec_ns: prof.exec_ns,
            storage_ns: storage_ns + materialise_ns,
            output: cached.object,
            artifact_id: cached.artifact_id,
            artifact_bytes: prof.artifact_bytes,
        });
        outputs.insert(
            node,
            ReplayNode {
                cached,
                in_memory: true,
            },
        );
    }

    match final_score {
        Some(score) => Ok(RunReport {
            stages,
            outcome: RunOutcome::Completed { score },
        }),
        None => Err(PipelineError::NoScore),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ComponentKey;
    use crate::schema::Schema;
    use crate::semver::SemVer;
    use mlcask_storage::object::ObjectKind;
    use mlcask_storage::tenant::{QuotaPolicy, TenantId};

    /// Two phase-1 workers racing one cache key both take a reservation;
    /// the book keeps one profile and returns the duplicate, whose
    /// reservation the caller releases — nothing may leak.
    #[test]
    fn duplicate_profile_reservation_can_be_released() {
        let root = ChunkStore::in_memory_small();
        let t = root.for_tenant(TenantId(1));
        root.tenant_accounts()
            .register(TenantId(1), QuotaPolicy::logical(1_000_000));
        let book = ProfileBook::new();
        let key = CacheKey {
            component: ComponentKey::new("c", SemVer::master(0, 0)),
            inputs: vec![],
        };
        let profile = |data: &[u8]| {
            let (put, trace) = t.put_blob_traced(ObjectKind::Output, data).unwrap();
            StageProfile {
                cached: CachedOutput {
                    object: put.object,
                    artifact_id: put.object.id,
                    schema: Schema::FeatureMatrix {
                        dim: 2,
                        n_classes: 2,
                    }
                    .id(),
                    score: None,
                },
                artifact_bytes: data.len() as u64,
                exec_ns: 1,
                write: Some(trace),
            }
        };
        let accounts = root.tenant_accounts();
        assert!(book
            .record_profile(key.clone(), profile(b"racing twin"))
            .is_none());
        let lost = book
            .record_profile(key.clone(), profile(b"racing twin"))
            .expect("second writer is rejected");
        assert_eq!(accounts.open_reservations(), 2);
        t.release_trace(lost.write.as_ref().unwrap());
        assert_eq!(accounts.open_reservations(), 1, "duplicate released");
        // The kept profile's reservation is the abort path's business.
        book.release_reservations(&t);
        assert_eq!(accounts.open_reservations(), 0);
        assert_eq!(accounts.usage(TenantId(1)).logical_bytes, 0);
    }

    /// `reservation_scope` releases unsettled traces on every exit path —
    /// a run that *completes* with a failure outcome (`Ok`) leaves
    /// unreplayed sibling traces behind just like a hard error does.
    #[test]
    fn reservation_scope_releases_on_success_and_error() {
        let root = ChunkStore::in_memory_small();
        let t = root.for_tenant(TenantId(2));
        root.tenant_accounts()
            .register(TenantId(2), QuotaPolicy::logical(1_000_000));
        let accounts = root.tenant_accounts();
        let record = |book: &ProfileBook, tag: &[u8]| {
            let (_, trace) = t.put_blob_traced(ObjectKind::Output, tag).unwrap();
            let rejected = book.record_profile(
                CacheKey {
                    component: ComponentKey::new("c", SemVer::master(0, 0)),
                    inputs: vec![],
                },
                StageProfile {
                    cached: CachedOutput {
                        object: ObjectRef::null(ObjectKind::Output),
                        artifact_id: Hash256::ZERO,
                        schema: Schema::FeatureMatrix {
                            dim: 2,
                            n_classes: 2,
                        }
                        .id(),
                        score: None,
                    },
                    artifact_bytes: tag.len() as u64,
                    exec_ns: 1,
                    write: Some(trace),
                },
            );
            assert!(rejected.is_none());
        };
        // Success path: an unreplayed trace (e.g. a sibling past a dynamic
        // failure frontier in a run reported as Ok(Failed)) is released.
        let book = ProfileBook::new();
        let ok: Result<u32> = book.reservation_scope(&t, || {
            record(&book, b"ok-path");
            Ok(7)
        });
        assert_eq!(ok.unwrap(), 7);
        assert_eq!(accounts.open_reservations(), 0, "success releases too");
        // Error path likewise.
        let book = ProfileBook::new();
        let err: Result<u32> = book.reservation_scope(&t, || {
            record(&book, b"err-path");
            Err(PipelineError::NoScore)
        });
        assert!(err.is_err());
        assert_eq!(accounts.open_reservations(), 0, "error path releases");
        assert_eq!(accounts.usage(TenantId(2)).logical_bytes, 0);
    }
}
