//! Semantic component versions: `branch@schema.increment` (§IV-B).
//!
//! * `branch` — Git-like branch the version was committed on (`master` when
//!   omitted in display).
//! * `schema` — bumped when the component's *output data schema* changes;
//!   this is the sole compatibility signal between adjacent components.
//! * `increment` — bumped for updates that keep the output schema.
//!
//! The paper's notation `<feature_extract, master@0.1>` denotes a component
//! plus its semantic version; on `master` it abbreviates to
//! `<feature_extract, 0.1>`. The initial version of a committed library is
//! `0.0`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A `branch@schema.increment` semantic version.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SemVer {
    /// Branch name (defaults to `master`).
    pub branch: String,
    /// Output-schema generation.
    pub schema: u32,
    /// Schema-preserving update counter.
    pub increment: u32,
}

impl SemVer {
    /// The initial version of a committed library: `master@0.0`.
    pub fn initial() -> SemVer {
        SemVer {
            branch: "master".to_string(),
            schema: 0,
            increment: 0,
        }
    }

    /// Constructs a version on `master`.
    pub fn master(schema: u32, increment: u32) -> SemVer {
        SemVer {
            branch: "master".to_string(),
            schema,
            increment,
        }
    }

    /// Constructs a version on an arbitrary branch.
    pub fn on_branch(branch: &str, schema: u32, increment: u32) -> SemVer {
        SemVer {
            branch: branch.to_string(),
            schema,
            increment,
        }
    }

    /// A schema-preserving update: bumps `increment` only.
    pub fn bump_increment(&self) -> SemVer {
        SemVer {
            branch: self.branch.clone(),
            schema: self.schema,
            increment: self.increment + 1,
        }
    }

    /// An output-schema-changing update: bumps `schema`, resets `increment`.
    pub fn bump_schema(&self) -> SemVer {
        SemVer {
            branch: self.branch.clone(),
            schema: self.schema + 1,
            increment: 0,
        }
    }

    /// The same version re-homed on another branch.
    pub fn rebranch(&self, branch: &str) -> SemVer {
        SemVer {
            branch: branch.to_string(),
            schema: self.schema,
            increment: self.increment,
        }
    }

    /// True if both versions share the output-schema generation (and hence
    /// produce compatible output schemas per §IV-B).
    pub fn same_schema(&self, other: &SemVer) -> bool {
        self.schema == other.schema
    }

    /// `schema.increment` without the branch (the paper's master shorthand).
    pub fn short(&self) -> String {
        format!("{}.{}", self.schema, self.increment)
    }
}

impl Default for SemVer {
    fn default() -> Self {
        SemVer::initial()
    }
}

impl fmt::Display for SemVer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.branch == "master" {
            write!(f, "{}.{}", self.schema, self.increment)
        } else {
            write!(f, "{}@{}.{}", self.branch, self.schema, self.increment)
        }
    }
}

/// Error parsing a semantic version string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSemVerError(String);

impl fmt::Display for ParseSemVerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid semantic version '{}'", self.0)
    }
}

impl std::error::Error for ParseSemVerError {}

impl FromStr for SemVer {
    type Err = ParseSemVerError;

    /// Parses `branch@schema.increment` or the `schema.increment` shorthand
    /// (implying `master`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseSemVerError(s.to_string());
        let (branch, rest) = match s.split_once('@') {
            Some((b, r)) => {
                if b.is_empty() || b.contains('.') {
                    return Err(err());
                }
                (b.to_string(), r)
            }
            None => ("master".to_string(), s),
        };
        let (schema, increment) = rest.split_once('.').ok_or_else(err)?;
        Ok(SemVer {
            branch,
            schema: schema.parse().map_err(|_| err())?,
            increment: increment.parse().map_err(|_| err())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn initial_is_master_zero() {
        let v = SemVer::initial();
        assert_eq!(v.branch, "master");
        assert_eq!((v.schema, v.increment), (0, 0));
        assert_eq!(v, SemVer::default());
    }

    #[test]
    fn display_master_shorthand() {
        assert_eq!(SemVer::master(0, 1).to_string(), "0.1");
        assert_eq!(SemVer::on_branch("dev", 1, 0).to_string(), "dev@1.0");
    }

    #[test]
    fn parse_both_forms() {
        assert_eq!("0.1".parse::<SemVer>().unwrap(), SemVer::master(0, 1));
        assert_eq!(
            "jane-dev@2.3".parse::<SemVer>().unwrap(),
            SemVer::on_branch("jane-dev", 2, 3)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "1", "a.b", "@1.0", "x@y@1.0", "1.0.0@x", "-1.0"] {
            assert!(bad.parse::<SemVer>().is_err(), "accepted '{bad}'");
        }
    }

    #[test]
    fn bumps() {
        let v = SemVer::master(1, 2);
        assert_eq!(v.bump_increment(), SemVer::master(1, 3));
        assert_eq!(v.bump_schema(), SemVer::master(2, 0));
        assert_eq!(v.bump_schema().bump_increment(), SemVer::master(2, 1));
    }

    #[test]
    fn rebranch_keeps_numbers() {
        let v = SemVer::master(1, 2).rebranch("dev");
        assert_eq!(v, SemVer::on_branch("dev", 1, 2));
        assert_eq!(v.short(), "1.2");
    }

    #[test]
    fn same_schema_ignores_increment_and_branch() {
        assert!(SemVer::master(1, 0).same_schema(&SemVer::on_branch("dev", 1, 9)));
        assert!(!SemVer::master(1, 0).same_schema(&SemVer::master(2, 0)));
    }

    #[test]
    fn ordering_groups_by_branch_then_numbers() {
        let a = SemVer::master(0, 1);
        let b = SemVer::master(0, 2);
        let c = SemVer::master(1, 0);
        assert!(a < b && b < c);
    }

    #[test]
    fn serde_round_trip() {
        let v = SemVer::on_branch("frank-dev", 3, 7);
        let json = serde_json::to_string(&v).unwrap();
        assert_eq!(serde_json::from_str::<SemVer>(&json).unwrap(), v);
    }

    proptest! {
        #[test]
        fn prop_display_parse_round_trip(schema in 0u32..1000, inc in 0u32..1000, use_branch: bool) {
            let v = if use_branch {
                SemVer::on_branch("dev-x", schema, inc)
            } else {
                SemVer::master(schema, inc)
            };
            let parsed: SemVer = v.to_string().parse().unwrap();
            prop_assert_eq!(parsed, v);
        }
    }
}
