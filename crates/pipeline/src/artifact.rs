//! Typed immutable artifacts flowing between pipeline components.
//!
//! Every component output is an [`Artifact`]: a typed payload plus its
//! schema id. Artifacts have a deterministic canonical byte encoding, so
//! their content hash serves as the cache/reuse key, and storing them in
//! the chunk store benefits from dedup when consecutive versions produce
//! overlapping bytes.

use crate::schema::{Schema, SchemaId};
use mlcask_ml::metrics::Score;
use mlcask_ml::tensor::Matrix;
use mlcask_ml::zernike::Image;
use mlcask_storage::hash::Hash256;
use serde::{Deserialize, Serialize};

/// A relational table cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Cell {
    /// Missing value (the cleansing stages fill these).
    Null,
    /// Numeric value.
    F(f32),
    /// Integer value (codes, counts).
    I(i64),
    /// Categorical/text value.
    S(String),
}

impl Cell {
    /// True if the cell is missing.
    pub fn is_null(&self) -> bool {
        matches!(self, Cell::Null)
    }

    /// Numeric view (integers widened; null/text → None).
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Cell::F(v) => Some(*v),
            Cell::I(v) => Some(*v as f32),
            _ => None,
        }
    }
}

/// A relational table with named columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Column names.
    pub columns: Vec<String>,
    /// Row-major cells; every row has `columns.len()` entries.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates a table, validating row widths.
    pub fn new(columns: Vec<String>, rows: Vec<Vec<Cell>>) -> Table {
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), columns.len(), "row {i} width mismatch");
        }
        Table { columns, rows }
    }

    /// Index of a named column.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The table's relational schema.
    pub fn schema(&self) -> Schema {
        Schema::Relational {
            columns: self.columns.clone(),
        }
    }

    /// Count of null cells (data-quality measure for cleansing stages).
    pub fn null_count(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|r| r.iter())
            .filter(|c| c.is_null())
            .count()
    }
}

/// Labelled token documents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Docs {
    /// Tokenised documents.
    pub docs: Vec<Vec<String>>,
    /// One label per document.
    pub labels: Vec<usize>,
    /// Vocabulary bound for schema purposes.
    pub vocab_size: usize,
}

/// Labelled square images.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageSet {
    /// Images, all with the same side length.
    pub images: Vec<Image>,
    /// One label per image.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

/// A dense feature matrix with labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Features {
    /// Feature matrix, one row per sample.
    pub x: Matrix,
    /// One label per row.
    pub y: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

/// Categorical observation sequences with labels (HMM input).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequenceSet {
    /// Observation sequences.
    pub seqs: Vec<Vec<usize>>,
    /// One label per sequence.
    pub labels: Vec<usize>,
    /// Number of observation symbols.
    pub n_symbols: usize,
    /// Number of classes.
    pub n_classes: usize,
}

/// A trained model: opaque serialised weights plus its evaluation score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelArtifact {
    /// Model family label (matches `Schema::Model`).
    pub family: String,
    /// Serialised model parameters.
    pub blob: Vec<u8>,
    /// Held-out evaluation score — the pipeline's metric for merge.
    pub score: Score,
}

/// The payload of an artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArtifactData {
    /// Relational table.
    Table(Table),
    /// Token documents.
    Docs(Docs),
    /// Labelled images.
    Images(ImageSet),
    /// Feature matrix.
    Features(Features),
    /// Observation sequences.
    Sequences(SequenceSet),
    /// Trained model.
    Model(ModelArtifact),
}

impl ArtifactData {
    /// Short label for diagnostics.
    pub fn kind_label(&self) -> &'static str {
        match self {
            ArtifactData::Table(_) => "table",
            ArtifactData::Docs(_) => "docs",
            ArtifactData::Images(_) => "images",
            ArtifactData::Features(_) => "features",
            ArtifactData::Sequences(_) => "sequences",
            ArtifactData::Model(_) => "model",
        }
    }
}

/// A typed immutable value produced by a component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Artifact {
    /// Payload.
    pub data: ArtifactData,
    /// Schema identity of the payload.
    pub schema: SchemaId,
}

impl Artifact {
    /// Wraps a payload with its schema.
    pub fn new(data: ArtifactData, schema: SchemaId) -> Artifact {
        Artifact { data, schema }
    }

    /// Canonical byte encoding (deterministic JSON over Vec/ordered fields).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("artifact serialisation cannot fail")
    }

    /// Inverse of [`Artifact::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Artifact, serde_json::Error> {
        serde_json::from_slice(bytes)
    }

    /// Content hash of the canonical encoding — the reuse/cache key.
    pub fn content_id(&self) -> Hash256 {
        Hash256::of(&self.to_bytes())
    }

    /// The model score if this artifact is a trained model.
    pub fn score(&self) -> Option<Score> {
        match &self.data {
            ArtifactData::Model(m) => Some(m.score),
            _ => None,
        }
    }

    /// Approximate in-memory payload size (drives storage cost accounting).
    pub fn byte_len(&self) -> u64 {
        self.to_bytes().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcask_ml::metrics::MetricKind;

    fn small_table() -> Table {
        Table::new(
            vec!["age".into(), "dx".into()],
            vec![
                vec![Cell::F(61.0), Cell::S("I10".into())],
                vec![Cell::Null, Cell::S("E11".into())],
            ],
        )
    }

    #[test]
    fn table_basics() {
        let t = small_table();
        assert_eq!(t.col_index("dx"), Some(1));
        assert_eq!(t.col_index("missing"), None);
        assert_eq!(t.null_count(), 1);
        assert_eq!(t.schema().id(), Schema::relational(&["age", "dx"]).id());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn table_checks_row_width() {
        Table::new(vec!["a".into()], vec![vec![Cell::Null, Cell::Null]]);
    }

    #[test]
    fn cell_views() {
        assert_eq!(Cell::F(1.5).as_f32(), Some(1.5));
        assert_eq!(Cell::I(3).as_f32(), Some(3.0));
        assert_eq!(Cell::S("x".into()).as_f32(), None);
        assert!(Cell::Null.is_null());
        assert!(!Cell::F(0.0).is_null());
    }

    #[test]
    fn artifact_round_trip_and_id_stability() {
        let t = small_table();
        let schema = t.schema().id();
        let a = Artifact::new(ArtifactData::Table(t), schema);
        let bytes = a.to_bytes();
        let back = Artifact::from_bytes(&bytes).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.content_id(), a.content_id());
        assert_eq!(a.byte_len(), bytes.len() as u64);
    }

    #[test]
    fn content_id_changes_with_payload() {
        let t1 = small_table();
        let mut t2 = small_table();
        t2.rows[0][0] = Cell::F(62.0);
        let s = t1.schema().id();
        let a = Artifact::new(ArtifactData::Table(t1), s);
        let b = Artifact::new(ArtifactData::Table(t2), s);
        assert_ne!(a.content_id(), b.content_id());
    }

    #[test]
    fn model_artifact_score() {
        let m = ModelArtifact {
            family: "mlp".into(),
            blob: vec![1, 2, 3],
            score: Score::new(MetricKind::Accuracy, 0.87),
        };
        let schema = Schema::Model {
            family: "mlp".into(),
        }
        .id();
        let a = Artifact::new(ArtifactData::Model(m), schema);
        assert_eq!(a.score().unwrap().raw, 0.87);
        assert_eq!(a.data.kind_label(), "model");
        // Non-model artifacts have no score.
        let t = Artifact::new(
            ArtifactData::Table(small_table()),
            Schema::relational(&["age", "dx"]).id(),
        );
        assert!(t.score().is_none());
    }

    #[test]
    fn kind_labels() {
        let f = Features {
            x: Matrix::zeros(1, 1),
            y: vec![0],
            n_classes: 2,
        };
        assert_eq!(ArtifactData::Features(f).kind_label(), "features");
        let d = Docs {
            docs: vec![],
            labels: vec![],
            vocab_size: 10,
        };
        assert_eq!(ArtifactData::Docs(d).kind_label(), "docs");
    }
}
