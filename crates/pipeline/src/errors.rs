//! Error type for pipeline definition and execution.

use crate::component::ComponentKey;
use crate::schema::SchemaId;
use mlcask_storage::errors::StorageError;
use std::fmt;

/// Details of a schema incompatibility (boxed to keep the error small on
/// the hot `Result` paths).
#[derive(Debug, Clone)]
pub struct IncompatibleSchemaDetail {
    /// The component rejecting its input.
    pub component: ComponentKey,
    /// Which input slot mismatched.
    pub input_index: usize,
    /// The schema the component declared.
    pub expected: SchemaId,
    /// The schema actually presented.
    pub actual: SchemaId,
}

/// Errors surfaced while building or executing pipelines.
#[derive(Debug)]
pub enum PipelineError {
    /// Two adjacent components have mismatched schemas (Definition 4). This
    /// is the error the baselines hit mid-run and MLCask prunes up front.
    IncompatibleSchema(Box<IncompatibleSchemaDetail>),
    /// A component received an artifact of the wrong payload kind.
    WrongArtifactKind {
        /// The component rejecting its input.
        component: ComponentKey,
        /// Expected payload label.
        expected: &'static str,
        /// Received payload label.
        actual: &'static str,
    },
    /// The pipeline graph is malformed (cycle, missing node, …).
    InvalidDag(String),
    /// A referenced component version is absent from the registry.
    UnknownComponent(ComponentKey),
    /// The pipeline produced no scored model artifact.
    NoScore,
    /// Underlying storage failure.
    Storage(StorageError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::IncompatibleSchema(d) => write!(
                f,
                "{} input #{} incompatible: expected {}, got {}",
                d.component, d.input_index, d.expected, d.actual
            ),
            PipelineError::WrongArtifactKind {
                component,
                expected,
                actual,
            } => write!(f, "{component} expected {expected} artifact, got {actual}"),
            PipelineError::InvalidDag(m) => write!(f, "invalid pipeline DAG: {m}"),
            PipelineError::UnknownComponent(k) => write!(f, "unknown component {k}"),
            PipelineError::NoScore => write!(f, "pipeline produced no scored model artifact"),
            PipelineError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for PipelineError {
    fn from(e: StorageError) -> Self {
        PipelineError::Storage(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, PipelineError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semver::SemVer;
    use mlcask_storage::hash::Hash256;

    #[test]
    fn display_incompatible() {
        let e = PipelineError::IncompatibleSchema(Box::new(IncompatibleSchemaDetail {
            component: ComponentKey::new("cnn", SemVer::master(0, 4)),
            input_index: 0,
            expected: SchemaId(Hash256::of(b"a")),
            actual: SchemaId(Hash256::of(b"b")),
        }));
        let msg = e.to_string();
        assert!(msg.contains("<cnn, 0.4>"));
        assert!(msg.contains("incompatible"));
    }

    #[test]
    fn storage_error_wraps_with_source() {
        let e: PipelineError = StorageError::UnknownBranch("dev".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("dev"));
    }

    #[test]
    fn other_variants_display() {
        assert!(PipelineError::NoScore.to_string().contains("no scored"));
        assert!(PipelineError::InvalidDag("cycle".into())
            .to_string()
            .contains("cycle"));
        let k = ComponentKey::new("x", SemVer::initial());
        assert!(PipelineError::UnknownComponent(k)
            .to_string()
            .contains("unknown"));
    }
}
