//! Deterministic virtual time with thread-safe per-stage accounting.
//!
//! All reported times in the experiment harness come from this ledger, not
//! wall time, so figures are identical across machines (DESIGN.md §2). The
//! split between pre-processing, model training, and storage time is what
//! Figs. 6 and 9 plot.
//!
//! [`ClockLedger`] replaces the old `SimClock`: charges go through `&self`
//! (relaxed atomic adds), so an executor run no longer needs exclusive
//! access to the time state and many runs can account concurrently into
//! per-run ledgers. [`ClockSnapshot`] is the immutable, mergeable view: the
//! parallel candidate-evaluation engines assign virtual end-times by a
//! deterministic reduction over per-candidate snapshots (see
//! `mlcask_pipeline::replay`), which keeps reports byte-identical between
//! sequential and parallel execution.

use crate::component::StageKind;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Accumulating, thread-safe virtual clock.
#[derive(Debug, Default)]
pub struct ClockLedger {
    ingest_ns: AtomicU64,
    preprocess_ns: AtomicU64,
    training_ns: AtomicU64,
    storage_ns: AtomicU64,
}

impl ClockLedger {
    /// A ledger at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A ledger pre-loaded with a snapshot's charges.
    pub fn from_snapshot(snap: &ClockSnapshot) -> Self {
        let ledger = Self::new();
        ledger.merge(snap);
        ledger
    }

    /// Charges execution time to a stage category.
    pub fn charge_exec(&self, stage: StageKind, d: Duration) {
        let ns = d.as_nanos() as u64;
        match stage {
            StageKind::Ingest => self.ingest_ns.fetch_add(ns, Ordering::Relaxed),
            StageKind::PreProcess => self.preprocess_ns.fetch_add(ns, Ordering::Relaxed),
            StageKind::ModelTraining => self.training_ns.fetch_add(ns, Ordering::Relaxed),
        };
    }

    /// Charges storage (data preparation/transfer) time.
    pub fn charge_storage(&self, d: Duration) {
        self.storage_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Adds a snapshot's charges into this ledger (the deterministic
    /// reduction step of the parallel engines).
    pub fn merge(&self, snap: &ClockSnapshot) {
        self.ingest_ns.fetch_add(snap.ingest_ns, Ordering::Relaxed);
        self.preprocess_ns
            .fetch_add(snap.preprocess_ns, Ordering::Relaxed);
        self.training_ns
            .fetch_add(snap.training_ns, Ordering::Relaxed);
        self.storage_ns
            .fetch_add(snap.storage_ns, Ordering::Relaxed);
    }

    /// Total execution time across stages (the paper's "execution time").
    pub fn exec_total(&self) -> Duration {
        Duration::from_nanos(self.snapshot().exec_ns())
    }

    /// Execution time attributed to one stage kind.
    pub fn exec_for(&self, stage: StageKind) -> Duration {
        let ns = match stage {
            StageKind::Ingest => self.ingest_ns.load(Ordering::Relaxed),
            StageKind::PreProcess => self.preprocess_ns.load(Ordering::Relaxed),
            StageKind::ModelTraining => self.training_ns.load(Ordering::Relaxed),
        };
        Duration::from_nanos(ns)
    }

    /// Storage time (the paper's "storage time").
    pub fn storage_total(&self) -> Duration {
        Duration::from_nanos(self.storage_ns.load(Ordering::Relaxed))
    }

    /// Pipeline time = execution + storage (the paper's "pipeline time").
    pub fn pipeline_total(&self) -> Duration {
        Duration::from_nanos(self.snapshot().total_ns())
    }

    /// Immutable snapshot for reports.
    ///
    /// The four counters are read individually with relaxed ordering; take
    /// snapshots at quiescent points (no concurrent charging) when exact
    /// cross-field consistency matters — that is how the engines use it.
    pub fn snapshot(&self) -> ClockSnapshot {
        ClockSnapshot {
            ingest_ns: self.ingest_ns.load(Ordering::Relaxed),
            preprocess_ns: self.preprocess_ns.load(Ordering::Relaxed),
            training_ns: self.training_ns.load(Ordering::Relaxed),
            storage_ns: self.storage_ns.load(Ordering::Relaxed),
        }
    }

    /// Difference `self - earlier` as a snapshot (for per-iteration deltas).
    pub fn delta_since(&self, earlier: &ClockSnapshot) -> ClockSnapshot {
        self.snapshot().minus(earlier)
    }
}

impl Clone for ClockLedger {
    fn clone(&self) -> Self {
        ClockLedger::from_snapshot(&self.snapshot())
    }
}

/// Serialisable clock state in nanoseconds.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockSnapshot {
    /// Data-ingest execution time.
    pub ingest_ns: u64,
    /// Pre-processing execution time.
    pub preprocess_ns: u64,
    /// Model-training execution time.
    pub training_ns: u64,
    /// Storage (preparation + transfer) time.
    pub storage_ns: u64,
}

impl ClockSnapshot {
    /// Total pipeline time in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.ingest_ns + self.preprocess_ns + self.training_ns + self.storage_ns
    }

    /// Total execution (non-storage) time in nanoseconds.
    pub fn exec_ns(&self) -> u64 {
        self.ingest_ns + self.preprocess_ns + self.training_ns
    }

    /// Total pipeline time in (fractional) seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns() as f64 / 1e9
    }

    /// Element-wise sum.
    pub fn plus(&self, other: &ClockSnapshot) -> ClockSnapshot {
        ClockSnapshot {
            ingest_ns: self.ingest_ns + other.ingest_ns,
            preprocess_ns: self.preprocess_ns + other.preprocess_ns,
            training_ns: self.training_ns + other.training_ns,
            storage_ns: self.storage_ns + other.storage_ns,
        }
    }

    /// Element-wise difference `self - earlier` (saturating at zero).
    pub fn minus(&self, earlier: &ClockSnapshot) -> ClockSnapshot {
        ClockSnapshot {
            ingest_ns: self.ingest_ns.saturating_sub(earlier.ingest_ns),
            preprocess_ns: self.preprocess_ns.saturating_sub(earlier.preprocess_ns),
            training_ns: self.training_ns.saturating_sub(earlier.training_ns),
            storage_ns: self.storage_ns.saturating_sub(earlier.storage_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_stage() {
        let c = ClockLedger::new();
        c.charge_exec(StageKind::PreProcess, Duration::from_millis(10));
        c.charge_exec(StageKind::PreProcess, Duration::from_millis(5));
        c.charge_exec(StageKind::ModelTraining, Duration::from_millis(20));
        c.charge_storage(Duration::from_millis(3));
        assert_eq!(c.exec_for(StageKind::PreProcess), Duration::from_millis(15));
        assert_eq!(c.exec_total(), Duration::from_millis(35));
        assert_eq!(c.storage_total(), Duration::from_millis(3));
        assert_eq!(c.pipeline_total(), Duration::from_millis(38));
    }

    #[test]
    fn snapshot_and_delta() {
        let c = ClockLedger::new();
        c.charge_exec(StageKind::Ingest, Duration::from_nanos(100));
        let earlier = c.snapshot();
        c.charge_exec(StageKind::ModelTraining, Duration::from_nanos(50));
        c.charge_storage(Duration::from_nanos(7));
        let d = c.delta_since(&earlier);
        assert_eq!(d.ingest_ns, 0);
        assert_eq!(d.training_ns, 50);
        assert_eq!(d.storage_ns, 7);
        assert_eq!(d.total_ns(), 57);
        assert_eq!(d.exec_ns(), 50);
    }

    #[test]
    fn snapshot_plus_minus() {
        let a = ClockSnapshot {
            ingest_ns: 1,
            preprocess_ns: 2,
            training_ns: 3,
            storage_ns: 4,
        };
        let b = a.plus(&a);
        assert_eq!(b.total_ns(), 20);
        assert_eq!(b.minus(&a), a);
        assert!((a.total_secs() - 10e-9).abs() < 1e-18);
    }

    #[test]
    fn zero_ledger() {
        let c = ClockLedger::new();
        assert_eq!(c.pipeline_total(), Duration::ZERO);
        assert_eq!(c.snapshot().total_ns(), 0);
    }

    #[test]
    fn merge_is_associative_over_snapshots() {
        let parts: Vec<ClockSnapshot> = (0..4)
            .map(|i| ClockSnapshot {
                ingest_ns: i,
                preprocess_ns: 2 * i,
                training_ns: 3 * i,
                storage_ns: 4 * i,
            })
            .collect();
        let left = ClockLedger::new();
        for p in &parts {
            left.merge(p);
        }
        let right = ClockLedger::new();
        for p in parts.iter().rev() {
            right.merge(p);
        }
        assert_eq!(left.snapshot(), right.snapshot());
    }

    #[test]
    fn concurrent_charging_is_lossless() {
        use std::sync::Arc;
        let c = Arc::new(ClockLedger::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.charge_exec(StageKind::ModelTraining, Duration::from_nanos(3));
                        c.charge_storage(Duration::from_nanos(1));
                    }
                });
            }
        });
        assert_eq!(c.snapshot().training_ns, 8 * 1000 * 3);
        assert_eq!(c.snapshot().storage_ns, 8 * 1000);
    }
}
