//! Deterministic virtual clock with per-stage accounting.
//!
//! All reported times in the experiment harness come from this clock, not
//! wall time, so figures are identical across machines (DESIGN.md §2). The
//! split between pre-processing, model training, and storage time is what
//! Figs. 6 and 9 plot.

use crate::component::StageKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Accumulating virtual clock.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SimClock {
    exec: BTreeMap<StageKind, Duration>,
    storage: Duration,
}

impl SimClock {
    /// A clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges execution time to a stage category.
    pub fn charge_exec(&mut self, stage: StageKind, d: Duration) {
        *self.exec.entry(stage).or_default() += d;
    }

    /// Charges storage (data preparation/transfer) time.
    pub fn charge_storage(&mut self, d: Duration) {
        self.storage += d;
    }

    /// Total execution time across stages (the paper's "execution time").
    pub fn exec_total(&self) -> Duration {
        self.exec.values().sum()
    }

    /// Execution time attributed to one stage kind.
    pub fn exec_for(&self, stage: StageKind) -> Duration {
        self.exec.get(&stage).copied().unwrap_or_default()
    }

    /// Storage time (the paper's "storage time").
    pub fn storage_total(&self) -> Duration {
        self.storage
    }

    /// Pipeline time = execution + storage (the paper's "pipeline time").
    pub fn pipeline_total(&self) -> Duration {
        self.exec_total() + self.storage
    }

    /// Immutable snapshot for reports.
    pub fn snapshot(&self) -> ClockSnapshot {
        ClockSnapshot {
            ingest_ns: self.exec_for(StageKind::Ingest).as_nanos() as u64,
            preprocess_ns: self.exec_for(StageKind::PreProcess).as_nanos() as u64,
            training_ns: self.exec_for(StageKind::ModelTraining).as_nanos() as u64,
            storage_ns: self.storage.as_nanos() as u64,
        }
    }

    /// Difference `self - earlier` as a snapshot (for per-iteration deltas).
    pub fn delta_since(&self, earlier: &SimClock) -> ClockSnapshot {
        let a = self.snapshot();
        let b = earlier.snapshot();
        ClockSnapshot {
            ingest_ns: a.ingest_ns - b.ingest_ns,
            preprocess_ns: a.preprocess_ns - b.preprocess_ns,
            training_ns: a.training_ns - b.training_ns,
            storage_ns: a.storage_ns - b.storage_ns,
        }
    }
}

/// Serialisable clock state in nanoseconds.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockSnapshot {
    /// Data-ingest execution time.
    pub ingest_ns: u64,
    /// Pre-processing execution time.
    pub preprocess_ns: u64,
    /// Model-training execution time.
    pub training_ns: u64,
    /// Storage (preparation + transfer) time.
    pub storage_ns: u64,
}

impl ClockSnapshot {
    /// Total pipeline time in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.ingest_ns + self.preprocess_ns + self.training_ns + self.storage_ns
    }

    /// Total execution (non-storage) time in nanoseconds.
    pub fn exec_ns(&self) -> u64 {
        self.ingest_ns + self.preprocess_ns + self.training_ns
    }

    /// Total pipeline time in (fractional) seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns() as f64 / 1e9
    }

    /// Element-wise sum.
    pub fn plus(&self, other: &ClockSnapshot) -> ClockSnapshot {
        ClockSnapshot {
            ingest_ns: self.ingest_ns + other.ingest_ns,
            preprocess_ns: self.preprocess_ns + other.preprocess_ns,
            training_ns: self.training_ns + other.training_ns,
            storage_ns: self.storage_ns + other.storage_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_stage() {
        let mut c = SimClock::new();
        c.charge_exec(StageKind::PreProcess, Duration::from_millis(10));
        c.charge_exec(StageKind::PreProcess, Duration::from_millis(5));
        c.charge_exec(StageKind::ModelTraining, Duration::from_millis(20));
        c.charge_storage(Duration::from_millis(3));
        assert_eq!(c.exec_for(StageKind::PreProcess), Duration::from_millis(15));
        assert_eq!(c.exec_total(), Duration::from_millis(35));
        assert_eq!(c.storage_total(), Duration::from_millis(3));
        assert_eq!(c.pipeline_total(), Duration::from_millis(38));
    }

    #[test]
    fn snapshot_and_delta() {
        let mut c = SimClock::new();
        c.charge_exec(StageKind::Ingest, Duration::from_nanos(100));
        let earlier = c.clone();
        c.charge_exec(StageKind::ModelTraining, Duration::from_nanos(50));
        c.charge_storage(Duration::from_nanos(7));
        let d = c.delta_since(&earlier);
        assert_eq!(d.ingest_ns, 0);
        assert_eq!(d.training_ns, 50);
        assert_eq!(d.storage_ns, 7);
        assert_eq!(d.total_ns(), 57);
        assert_eq!(d.exec_ns(), 50);
    }

    #[test]
    fn snapshot_plus() {
        let a = ClockSnapshot {
            ingest_ns: 1,
            preprocess_ns: 2,
            training_ns: 3,
            storage_ns: 4,
        };
        let b = a.plus(&a);
        assert_eq!(b.total_ns(), 20);
        assert!((a.total_secs() - 10e-9).abs() < 1e-18);
    }

    #[test]
    fn zero_clock() {
        let c = SimClock::new();
        assert_eq!(c.pipeline_total(), Duration::ZERO);
        assert_eq!(c.snapshot().total_ns(), 0);
    }
}
