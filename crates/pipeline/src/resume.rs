//! Crash recovery for traced pipeline executions: a durable journal of
//! completed operations plus the recovery protocol that lets a partially
//! executed DAG resume from its `last_completed_operation`.
//!
//! # Protocol
//!
//! While a resumable run executes, every completed component execution is
//! appended to a [`ResumeLog`] — its [`CacheKey`] and full
//! [`StageProfile`], including the chunk-level write trace. After a crash:
//!
//! 1. Reopen the storage backend (which truncates torn segment tails) and
//!    the journal (which truncates its own torn tail).
//! 2. [`ResumeSnapshot::recover`] **validates** each journaled entry
//!    against the recovered store: an entry survives only if *every* chunk
//!    and the manifest its trace recorded are still present. This absorbs
//!    the async-writer race where an operation was journaled before its
//!    chunks were fsynced — such entries are discarded and the node simply
//!    re-executes.
//! 3. It then **sweeps** the store down to exactly the validated entries'
//!    blobs (plus any caller-supplied extra roots): chunks persisted by
//!    executions that never reached the journal are removed. This is what
//!    makes the resumed run's accounting byte-identical to an uninterrupted
//!    one — a re-executed node must observe its chunks as *new*, exactly as
//!    the uninterrupted run did, not find pre-crash leftovers.
//! 4. [`Executor::run_resumable`](crate::executor::Executor::run_resumable)
//!    takes the snapshot: journaled nodes are adopted without re-execution
//!    (their profiles feed the accounting replay verbatim), the rest of the
//!    DAG executes normally.
//!
//! Because the accounting replay charges every node in canonical
//! topological order from recorded profiles — never from wall-clock
//! observations — a resumed run's report, ledger, store statistics, and
//! per-tenant accounting are byte-identical to an uninterrupted run at any
//! worker count. `tests/crash_recovery.rs` pins this down by killing the
//! backend at every k-th write.

use crate::errors::Result;
use crate::executor::CacheKey;
use crate::replay::StageProfile;
use mlcask_storage::cask::DurableLog;
use mlcask_storage::hash::Hash256;
use mlcask_storage::store::{ChunkStore, SweepReport};
use std::collections::HashMap;
use std::path::Path;

/// One journaled completed operation: the cache key identifying the
/// execution plus everything the accounting replay needs.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ResumeEntry {
    /// Identity of the completed execution.
    pub key: CacheKey,
    /// Its recorded profile (write trace included; the quota reservation is
    /// stripped by serialization).
    pub profile: StageProfile,
}

/// Durable journal of completed operations, CRC-framed and fsynced per
/// append (see [`DurableLog`]). A torn final entry — the appender died
/// mid-write — is truncated away on open.
pub struct ResumeLog {
    log: DurableLog,
}

impl ResumeLog {
    /// Opens (creating if needed) a journal file and returns it together
    /// with the intact entries recovered from it. Entries that fail to
    /// decode are skipped — a versioning safety valve, not an expected
    /// path.
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, Vec<ResumeEntry>)> {
        let (log, payloads) = DurableLog::open(path)?;
        let entries = payloads
            .iter()
            .filter_map(|p| serde_json::from_slice(p).ok())
            .collect();
        Ok((ResumeLog { log }, entries))
    }

    /// A journal that lives only in memory — for tests that simulate the
    /// crash at the storage layer while the "journal host" survives.
    pub fn in_memory() -> Self {
        ResumeLog {
            log: DurableLog::in_memory(),
        }
    }

    /// Durably appends one completed operation.
    pub fn record(&self, key: &CacheKey, profile: &StageProfile) -> Result<()> {
        let entry = ResumeEntry {
            key: key.clone(),
            profile: profile.clone(),
        };
        let payload = serde_json::to_vec(&entry).map_err(|e| {
            crate::errors::PipelineError::Storage(mlcask_storage::errors::StorageError::Codec(
                e.to_string(),
            ))
        })?;
        self.log.append(&payload)?;
        Ok(())
    }

    /// All intact entries currently in the journal.
    pub fn entries(&self) -> Result<Vec<ResumeEntry>> {
        Ok(self
            .log
            .entries()?
            .iter()
            .filter_map(|p| serde_json::from_slice(p).ok())
            .collect())
    }
}

/// What [`ResumeSnapshot::recover`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journaled operations whose blobs fully survived the crash — the
    /// resumed run adopts these without re-executing.
    pub recovered_operations: usize,
    /// Journaled operations discarded because some of their chunks did not
    /// survive (journaled before the async writers synced them).
    pub discarded_operations: usize,
    /// The post-validation orphan sweep that removed unjournaled leftovers.
    pub swept: SweepReport,
}

/// Validated journal state a resumed execution consults: for each cache
/// key, the profile of its already-completed execution.
#[derive(Default)]
pub struct ResumeSnapshot {
    map: HashMap<CacheKey, StageProfile>,
}

impl ResumeSnapshot {
    /// An empty snapshot (a resumable run's first attempt).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Validates journaled `entries` against the recovered `store` and
    /// sweeps unjournaled leftovers, returning the snapshot and a report.
    ///
    /// An entry is kept iff every hash its write trace recorded — all
    /// chunks and the manifest — is present in the store; partially durable
    /// operations are discarded wholesale (their node re-executes). The
    /// sweep then removes every object unreachable from the kept entries'
    /// manifests and `extra_roots` (pass the manifests of any pre-existing
    /// blobs the store must retain — committed pipelines, lookup-cache
    /// outputs), so re-executed nodes observe their chunk writes as new
    /// exactly as an uninterrupted run would.
    pub fn recover(
        store: &ChunkStore,
        entries: Vec<ResumeEntry>,
        extra_roots: impl IntoIterator<Item = Hash256>,
    ) -> Result<(Self, RecoveryReport)> {
        let backend = store.backend();
        let mut map = HashMap::new();
        let mut report = RecoveryReport::default();
        for entry in entries {
            let durable = entry.profile.write.as_ref().is_some_and(|trace| {
                trace.chunks.iter().all(|c| backend.contains(c.hash))
                    && backend.contains(trace.manifest.hash)
            });
            if durable {
                report.recovered_operations += 1;
                map.insert(entry.key, entry.profile);
            } else {
                report.discarded_operations += 1;
            }
        }
        let roots: Vec<Hash256> = map
            .values()
            .filter_map(|p| p.write.as_ref().map(|t| t.manifest.hash))
            .chain(extra_roots)
            .collect();
        report.swept = store.sweep_orphans(roots)?;
        Ok((ResumeSnapshot { map }, report))
    }

    /// The journaled profile for `key`, if its execution completed durably
    /// before the crash.
    pub fn get(&self, key: &CacheKey) -> Option<&StageProfile> {
        self.map.get(key)
    }

    /// Number of operations the resumed run will adopt.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing was recovered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Manifest hashes of the recovered operations' output blobs.
    pub fn roots(&self) -> impl Iterator<Item = Hash256> + '_ {
        self.map
            .values()
            .filter_map(|p| p.write.as_ref().map(|t| t.manifest.hash))
    }
}

/// Everything [`Executor::run_resumable`](crate::executor::Executor::run_resumable)
/// needs: the validated snapshot to adopt completed operations from, and
/// (optionally) the journal to record this attempt's completions into.
pub struct ResumeCtx<'a> {
    /// Completed operations adopted without re-execution.
    pub snapshot: &'a ResumeSnapshot,
    /// Journal for newly completed operations; `None` runs without
    /// journaling (recovery-only mode).
    pub journal: Option<&'a ResumeLog>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ComponentKey;
    use crate::schema::Schema;
    use crate::semver::SemVer;
    use mlcask_storage::object::ObjectKind;

    fn entry_for(store: &ChunkStore, data: &[u8]) -> ResumeEntry {
        let (put, trace) = store.put_blob_traced(ObjectKind::Output, data).unwrap();
        ResumeEntry {
            key: CacheKey {
                component: ComponentKey::new("c", SemVer::master(0, 0)),
                inputs: vec![Hash256::of(data)],
            },
            profile: StageProfile {
                cached: crate::executor::CachedOutput {
                    object: put.object,
                    artifact_id: put.object.id,
                    schema: Schema::FeatureMatrix {
                        dim: 2,
                        n_classes: 2,
                    }
                    .id(),
                    score: None,
                },
                artifact_bytes: data.len() as u64,
                exec_ns: 7,
                write: Some(trace),
            },
        }
    }

    #[test]
    fn entry_round_trips_without_reservation() {
        let store = ChunkStore::in_memory_small();
        let entry = entry_for(&store, b"journal me");
        let bytes = serde_json::to_vec(&entry).unwrap();
        let back: ResumeEntry = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back.key, entry.key);
        assert_eq!(back.profile.exec_ns, entry.profile.exec_ns);
        let w = back.profile.write.unwrap();
        let orig = entry.profile.write.unwrap();
        assert_eq!(w.chunks, orig.chunks);
        assert_eq!(w.manifest, orig.manifest);
        assert!(w.reservation.is_none(), "reservations never round-trip");
    }

    #[test]
    fn in_memory_log_records_and_lists() {
        let store = ChunkStore::in_memory_small();
        let log = ResumeLog::in_memory();
        let e = entry_for(&store, b"op one");
        log.record(&e.key, &e.profile).unwrap();
        let back = log.entries().unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].key, e.key);
    }

    #[test]
    fn recover_validates_against_store_and_sweeps_leftovers() {
        let store = ChunkStore::in_memory_small();
        let kept = entry_for(&store, b"durable operation");
        // A journaled entry whose blob did NOT survive: fabricate a trace
        // pointing at hashes the store never persisted.
        let mut ghost = entry_for(&store, b"ghost operation");
        ghost.key.component = ComponentKey::new("ghost", SemVer::master(0, 0));
        let w = ghost.profile.write.as_mut().unwrap();
        w.manifest.hash = Hash256::of(b"never persisted");
        // An unjournaled leftover blob (pre-crash execution that never
        // reached the journal): must be swept.
        let leftover = store
            .put_blob(ObjectKind::Output, b"leftover from before the crash")
            .unwrap();
        let (snap, report) =
            ResumeSnapshot::recover(&store, vec![kept.clone(), ghost.clone()], []).unwrap();
        assert_eq!(report.recovered_operations, 1);
        assert_eq!(report.discarded_operations, 1);
        assert!(report.swept.removed_objects > 0, "leftover swept");
        assert!(snap.get(&kept.key).is_some());
        assert!(snap.get(&ghost.key).is_none());
        assert!(
            !store.contains(leftover.object.id),
            "unjournaled blob is gone"
        );
        // The kept operation's blob is intact.
        let obj = snap.get(&kept.key).unwrap().cached.object;
        assert_eq!(store.get_blob(&obj).unwrap().as_ref(), b"durable operation");
        assert_eq!(snap.roots().count(), 1);
    }

    #[test]
    fn extra_roots_protect_preexisting_blobs() {
        let store = ChunkStore::in_memory_small();
        let precious = store
            .put_blob(ObjectKind::Output, b"committed earlier")
            .unwrap();
        let (snap, _) = ResumeSnapshot::recover(&store, vec![], [precious.object.id]).unwrap();
        assert!(snap.is_empty());
        assert_eq!(
            store.get_blob(&precious.object).unwrap().as_ref(),
            b"committed earlier"
        );
    }
}
