//! # mlcask-pipeline
//!
//! The ML-pipeline model underlying MLCask (ICDE 2021): components with
//! semantic versions, typed artifacts with schema hashes, pipeline DAGs, and
//! an executor with checkpoint reuse and deterministic virtual-time
//! accounting.
//!
//! Mapping to the paper:
//!
//! | Paper concept | Module |
//! |---|---|
//! | `branch@schema.increment` versions (§IV-B) | [`semver`] |
//! | Schema hash function (§IV-B) | [`schema`] |
//! | Component / pipeline metafiles (§III) | [`metafile`] |
//! | Components `y = f(x\|θ)` (Defs. 1, 3, 4) | [`component`] |
//! | Pipeline DAG `G = (F, E)` (Defs. 1–2) | [`dag`] |
//! | Execution, output archiving, reuse (§IV, C1) | [`executor`] |
//! | Execution vs storage time split (§VII-B) | [`clock`] |
//!
//! Beyond the paper, this crate supplies the parallel-execution substrate:
//! [`parallel`] (worker pools, the DAG wavefront scheduler, and the
//! [`parallel::ParallelismPolicy`] knob), [`replay`] (the
//! traced-execute/deterministic-replay protocol that keeps parallel
//! reports byte-identical to sequential ones), [`provenance`]
//! (static per-node fingerprints, frontier cuts, and the shared-prefix
//! gate behind incremental re-evaluation), and [`resume`] (the durable
//! journal + recovery protocol that resumes a crashed execution from its
//! last completed operation).
//!
//! The versioning semantics themselves (branching, merging, search-tree
//! pruning) live in `mlcask-core`, which builds on this crate.

#![warn(missing_docs)]

pub mod artifact;
pub mod clock;
pub mod component;
pub mod dag;
pub mod errors;
pub mod executor;
pub mod metafile;
pub mod parallel;
pub mod provenance;
pub mod replay;
pub mod resume;
pub mod schema;
pub mod semver;

/// Common imports for downstream crates.
pub mod prelude {
    pub use crate::artifact::{
        Artifact, ArtifactData, Cell, Docs, Features, ImageSet, ModelArtifact, SequenceSet, Table,
    };
    pub use crate::clock::{ClockLedger, ClockSnapshot};
    pub use crate::component::{
        Component, ComponentFamily, ComponentHandle, ComponentKey, StageKind,
    };
    pub use crate::dag::{BoundPipeline, PipelineDag};
    pub use crate::errors::{PipelineError, Result as PipelineResult};
    pub use crate::executor::{
        CacheKey, CachedOutput, ExecOptions, Executor, MemoryCache, OutputCache, RunOutcome,
        RunReport, StageReport,
    };
    pub use crate::metafile::{DatasetMetafile, LibraryMetafile, PipelineMetafile, PipelineSlot};
    pub use crate::parallel::{map_indexed, run_dag, NodeVerdict, ParallelismPolicy, ShardedMap};
    pub use crate::provenance::{
        pipeline_fingerprints, FrontierCut, Incremental, PrefixGate, ProvenanceIndex,
        ProvenanceSnapshot,
    };
    pub use crate::replay::{replay_run, CacheSnapshot, ProfileBook, ReplayCursor, StageProfile};
    pub use crate::resume::{RecoveryReport, ResumeCtx, ResumeEntry, ResumeLog, ResumeSnapshot};
    pub use crate::schema::{Schema, SchemaId};
    pub use crate::semver::SemVer;
}
