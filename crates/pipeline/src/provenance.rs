//! Provenance-keyed incremental re-evaluation.
//!
//! The executor's checkpoint reuse (see [`crate::executor`]) is *dynamic*:
//! a node's [`CacheKey`] contains its input artifact ids, so reuse is
//! discovered node-by-node at runtime — every candidate pipeline is still
//! fully scheduled, and every node pays a key construction plus a sharded
//! lookup even when the whole prefix is a hit. This module adds the
//! *static* complement:
//!
//! * [`pipeline_fingerprints`] lifts a [`BoundPipeline`] to per-node
//!   **provenance fingerprints** `hash(component key, input fingerprints)`
//!   — computable from the DAG alone, no artifact bytes and no execution.
//!   Because components are deterministic (a documented [`crate::component::Component`]
//!   contract), a node's fingerprint fully determines its output.
//! * [`ProvenanceIndex`] maps fingerprints of already-evaluated sub-DAGs to
//!   their [`CachedOutput`]s, alongside the existing `CacheKey` history.
//!   Entries are recorded only *after* the same output is inserted under
//!   its `CacheKey` into the paired output cache — the **pairing
//!   invariant** — so a fingerprint hit implies a history hit, and the
//!   accounting replay charges the node as `reused` exactly as a full
//!   re-evaluation would.
//! * [`FrontierCut`] cuts a pipeline at the deepest cached frontier: the
//!   downward-closed set of nodes whose fingerprints hit a point-in-time
//!   [`ProvenanceSnapshot`]. The executor pre-fills those nodes' results
//!   and schedules only the dirty region.
//! * [`PrefixGate`] hoists shared candidate prefixes: concurrent
//!   evaluations that reach the same fingerprint execute it once — one
//!   owner runs the component, waiters adopt its output.
//!
//! Cuts are always computed against a snapshot taken once per search (never
//! the concurrently-growing live index), so the number of frontier-skipped
//! nodes is deterministic for every worker count.

use crate::component::ComponentKey;
use crate::dag::BoundPipeline;
use crate::errors::Result;
use crate::executor::{CacheKey, CachedOutput, OutputCache};
use crate::parallel::{ShardedMap, SnapshotCache};
use mlcask_storage::hash::Hash256;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Computes the provenance fingerprint of one node from its component key
/// and its predecessors' fingerprints (in edge order).
pub fn node_fingerprint(component: &ComponentKey, input_fps: &[Hash256]) -> Hash256 {
    let key_repr = component.to_string();
    let mut parts: Vec<&[u8]> = Vec::with_capacity(2 + input_fps.len());
    parts.push(b"mlcask-provenance-v1");
    parts.push(key_repr.as_bytes());
    for fp in input_fps {
        parts.push(&fp.0);
    }
    Hash256::of_parts(&parts)
}

/// Per-node provenance fingerprints of a bound pipeline, indexed by node
/// id. Purely static: derived from component keys and DAG edges, so two
/// pipelines that share a prefix share the prefix's fingerprints.
pub fn pipeline_fingerprints(pipeline: &BoundPipeline) -> Result<Vec<Hash256>> {
    let order = pipeline.dag.topo_order()?;
    let mut fps = vec![Hash256::ZERO; order.len()];
    for node in order {
        let input_fps: Vec<Hash256> = pipeline.dag.pre(node).iter().map(|&p| fps[p]).collect();
        fps[node] = node_fingerprint(&pipeline.components[node].key(), &input_fps);
    }
    Ok(fps)
}

/// Point-in-time copy of a [`ProvenanceIndex`], used to compute
/// deterministic [`FrontierCut`]s for one whole search.
pub type ProvenanceSnapshot = HashMap<Hash256, CachedOutput>;

/// Concurrent map from sub-DAG provenance fingerprints to checkpointed
/// outputs. Sharded like the `CacheKey` history so parallel evaluators do
/// not serialize on one lock.
///
/// **Pairing invariant**: callers must record an entry only after inserting
/// the same output under its `CacheKey` into the paired [`OutputCache`].
/// Every consumer of a [`ProvenanceSnapshot`] relies on "fingerprint hit ⟹
/// history hit" to keep incremental reports byte-identical to full
/// re-evaluation.
#[derive(Default)]
pub struct ProvenanceIndex {
    map: ShardedMap<Hash256, CachedOutput>,
    snap: SnapshotCache<Hash256, CachedOutput>,
}

impl ProvenanceIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of fingerprinted checkpoints.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no fingerprints are recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Records a fingerprinted checkpoint (see the pairing invariant above).
    pub fn record(&self, fp: Hash256, output: CachedOutput) {
        self.map.insert(fp, output);
    }

    /// Looks up the live index (snapshot-free; prefer [`ProvenanceIndex::snapshot`]
    /// plus [`FrontierCut`] when determinism across workers matters).
    pub fn get(&self, fp: &Hash256) -> Option<CachedOutput> {
        self.map.get(fp)
    }

    /// Forks an independent copy with the same contents (pairs with the
    /// history index's `deep_clone`).
    pub fn fork(&self) -> ProvenanceIndex {
        ProvenanceIndex {
            map: self.map.fork(),
            snap: SnapshotCache::new(),
        }
    }

    /// Point-in-time copy used to compute cuts for one whole search.
    pub fn snapshot(&self) -> ProvenanceSnapshot {
        self.map.to_hashmap()
    }

    /// Like [`ProvenanceIndex::snapshot`], but shared: repeated calls
    /// against an unmutated index return the same `Arc` instead of copying
    /// every entry again. The serving read path and back-to-back searches
    /// over a quiescent base history hit this cache; any
    /// [`ProvenanceIndex::record`] invalidates it.
    pub fn snapshot_shared(&self) -> Arc<ProvenanceSnapshot> {
        self.snap.snapshot(&self.map)
    }

    /// Lifts an already-evaluated pipeline into the index post-hoc: walks
    /// the DAG in topological order, reconstructing each node's `CacheKey`
    /// from its predecessors' cached artifact ids, and records a
    /// fingerprint entry for every node whose key hits `cache`. Stops
    /// fingerprinting any node with an unresolvable (missing) predecessor.
    /// Returns the number of nodes recorded.
    ///
    /// This is how commit paths prime provenance from runs executed by the
    /// plain (non-incremental) executor: the cache hits guarantee the
    /// pairing invariant by construction.
    pub fn absorb(&self, pipeline: &BoundPipeline, cache: &dyn OutputCache) -> Result<usize> {
        let fps = pipeline_fingerprints(pipeline)?;
        let order = pipeline.dag.topo_order()?;
        let mut artifact_ids: Vec<Option<Hash256>> = vec![None; order.len()];
        let mut recorded = 0usize;
        for node in order {
            let inputs: Option<Vec<Hash256>> = pipeline
                .dag
                .pre(node)
                .iter()
                .map(|&p| artifact_ids[p])
                .collect();
            let Some(inputs) = inputs else { continue };
            let key = CacheKey {
                component: pipeline.components[node].key(),
                inputs,
            };
            if let Some(hit) = cache.lookup(&key) {
                artifact_ids[node] = Some(hit.artifact_id);
                self.record(fps[node], hit);
                recorded += 1;
            }
        }
        Ok(recorded)
    }
}

/// A pipeline cut at its deepest cached frontier: the downward-closed set
/// of nodes whose fingerprints hit a [`ProvenanceSnapshot`] (a node counts
/// as cached only if all its predecessors are), restricted to nodes the
/// scheduler would dispatch at all. Everything else is the *dirty region*
/// the executor actually schedules.
pub struct FrontierCut {
    /// Per-node fingerprints (index = node id).
    pub fingerprints: Vec<Hash256>,
    /// Cached output for every frontier-skipped node; `None` for dirty
    /// nodes.
    pub cached: Vec<Option<CachedOutput>>,
    /// Number of nodes skipped by the cut.
    pub skipped: usize,
}

impl FrontierCut {
    /// Computes the cut of `pipeline` against a provenance snapshot.
    /// `schedulable[node]` masks nodes the caller would dispatch (nodes at
    /// or beyond a static failure frontier are never cached — a sequential
    /// run never reaches them, so skipping them would change observables).
    pub fn compute(
        pipeline: &BoundPipeline,
        snapshot: &ProvenanceSnapshot,
        schedulable: &[bool],
    ) -> Result<FrontierCut> {
        let fingerprints = pipeline_fingerprints(pipeline)?;
        let order = pipeline.dag.topo_order()?;
        let mut cached: Vec<Option<CachedOutput>> = vec![None; order.len()];
        let mut skipped = 0usize;
        for node in order {
            if !schedulable[node] {
                continue;
            }
            let closed = pipeline.dag.pre(node).iter().all(|&p| cached[p].is_some());
            if !closed {
                continue;
            }
            if let Some(hit) = snapshot.get(&fingerprints[node]) {
                cached[node] = Some(hit.clone());
                skipped += 1;
            }
        }
        Ok(FrontierCut {
            fingerprints,
            cached,
            skipped,
        })
    }
}

/// Everything the executor needs to run one evaluation incrementally:
/// the search-wide snapshot that cuts are computed against, the live index
/// new checkpoints are recorded into, and (optionally) the search-wide
/// prefix gate.
pub struct Incremental<'a> {
    /// Point-in-time provenance the whole search cuts against. Taken once,
    /// **before** the history snapshot the accounting replay uses, so the
    /// pairing invariant carries over to the snapshots.
    pub snapshot: Arc<ProvenanceSnapshot>,
    /// Live index receiving `(fingerprint, output)` pairs as nodes complete.
    pub live: &'a ProvenanceIndex,
    /// Shared-prefix hoisting gate, if the search wants common prefixes
    /// executed once across concurrent evaluations.
    pub gate: Option<&'a PrefixGate>,
}

/// Result of a gated execution, adopted by waiters.
#[derive(Clone)]
pub enum GateOutcome {
    /// The owner executed the node and checkpointed this output.
    Completed(CachedOutput),
    /// The owner observed a dynamic schema failure at this node.
    Failed,
}

enum GateState {
    Pending,
    Done(GateOutcome),
}

/// What [`PrefixGate::claim`] resolved to.
pub enum Claim<'g> {
    /// This caller owns the fingerprint: execute the node, then call
    /// [`ClaimGuard::complete`]. Dropping the guard without completing
    /// (panic, hard error) un-claims the fingerprint so a waiter can
    /// execute it instead — the gate never deadlocks on a dead owner.
    Owner(ClaimGuard<'g>),
    /// Another evaluation already produced this fingerprint's outcome.
    Ready(GateOutcome),
}

/// Concurrent once-per-fingerprint execution gate: the first evaluation to
/// claim a fingerprint executes it, every concurrent evaluation that
/// reaches the same fingerprint blocks until the owner completes and then
/// adopts the result. Correct because components are deterministic: any
/// owner produces the identical output, so *who* executes is unobservable
/// in the replayed accounting.
#[derive(Default)]
pub struct PrefixGate {
    inner: Mutex<HashMap<Hash256, GateState>>,
    ready: Condvar,
}

impl PrefixGate {
    /// Empty gate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claims `fp`: returns [`Claim::Owner`] if this caller should execute
    /// the node, or blocks until the owner finishes and returns
    /// [`Claim::Ready`] with the adopted outcome.
    pub fn claim(&self, fp: Hash256) -> Claim<'_> {
        let mut map = self.inner.lock().expect("gate lock");
        loop {
            match map.get(&fp) {
                None => {
                    map.insert(fp, GateState::Pending);
                    return Claim::Owner(ClaimGuard {
                        gate: self,
                        fp,
                        completed: false,
                    });
                }
                Some(GateState::Done(outcome)) => return Claim::Ready(outcome.clone()),
                Some(GateState::Pending) => {
                    map = self.ready.wait(map).expect("gate lock");
                }
            }
        }
    }
}

/// Owner-side token of a pending [`PrefixGate`] claim.
pub struct ClaimGuard<'g> {
    gate: &'g PrefixGate,
    fp: Hash256,
    completed: bool,
}

impl ClaimGuard<'_> {
    /// Publishes the owner's outcome and wakes every waiter.
    pub fn complete(mut self, outcome: GateOutcome) {
        let mut map = self.gate.inner.lock().expect("gate lock");
        map.insert(self.fp, GateState::Done(outcome));
        self.completed = true;
        drop(map);
        self.gate.ready.notify_all();
    }
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        // Owner died without publishing (panic or hard error): un-claim so
        // a waiter re-claims and executes the node itself. A poisoned lock
        // means another owner panicked while publishing; un-claiming is
        // still the right recovery.
        let mut map = match self.gate.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        map.remove(&self.fp);
        drop(map);
        self.gate.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::test_support::{TestModel, TestScaler, TestSource};
    use crate::component::ComponentHandle;
    use crate::dag::PipelineDag;
    use crate::executor::MemoryCache;
    use crate::schema::SchemaId;
    use crate::semver::SemVer;
    use mlcask_storage::object::{ObjectKind, ObjectRef};
    use std::sync::Arc;

    fn chain(model_version: SemVer) -> BoundPipeline {
        let dag =
            Arc::new(PipelineDag::chain(&["test_source", "test_scaler", "test_model"]).unwrap());
        let comps: Vec<ComponentHandle> = vec![
            Arc::new(TestSource {
                version: SemVer::initial(),
                dim: 3,
                rows: 8,
            }),
            Arc::new(TestScaler {
                version: SemVer::initial(),
                dim_in: 3,
                dim_out: 3,
                factor: 2.0,
            }),
            Arc::new(TestModel {
                version: model_version,
                dim_in: 3,
                quality: 0.3,
            }),
        ];
        BoundPipeline::new(dag, comps).unwrap()
    }

    fn output(n: u8) -> CachedOutput {
        CachedOutput {
            object: ObjectRef {
                id: Hash256::of(&[n]),
                kind: ObjectKind::Output,
                len: 1,
            },
            artifact_id: Hash256::of(&[n, n]),
            schema: SchemaId(Hash256::of(&[9])),
            score: None,
        }
    }

    #[test]
    fn fingerprints_are_static_and_prefix_stable() {
        let a = pipeline_fingerprints(&chain(SemVer::master(0, 0))).unwrap();
        let b = pipeline_fingerprints(&chain(SemVer::master(0, 1))).unwrap();
        // Shared prefix (source, scaler) → identical fingerprints.
        assert_eq!(a[0], b[0]);
        assert_eq!(a[1], b[1]);
        // Different model version → different sink fingerprint.
        assert_ne!(a[2], b[2]);
        // Deterministic.
        assert_eq!(
            a,
            pipeline_fingerprints(&chain(SemVer::master(0, 0))).unwrap()
        );
    }

    #[test]
    fn frontier_cut_is_downward_closed() {
        let p = chain(SemVer::master(0, 0));
        let fps = pipeline_fingerprints(&p).unwrap();
        let mut snap = ProvenanceSnapshot::new();
        // Only the *middle* node cached: without its source it must stay
        // dirty (no way to reconstruct its CacheKey or inputs).
        snap.insert(fps[1], output(1));
        let cut = FrontierCut::compute(&p, &snap, &[true; 3]).unwrap();
        assert_eq!(cut.skipped, 0);
        // Source + scaler cached → both skipped, model dirty.
        snap.insert(fps[0], output(0));
        let cut = FrontierCut::compute(&p, &snap, &[true; 3]).unwrap();
        assert_eq!(cut.skipped, 2);
        assert!(cut.cached[0].is_some() && cut.cached[1].is_some());
        assert!(cut.cached[2].is_none());
    }

    #[test]
    fn frontier_cut_respects_schedulable_mask() {
        let p = chain(SemVer::master(0, 0));
        let fps = pipeline_fingerprints(&p).unwrap();
        let mut snap = ProvenanceSnapshot::new();
        for (i, fp) in fps.iter().enumerate() {
            snap.insert(*fp, output(i as u8));
        }
        let cut = FrontierCut::compute(&p, &snap, &[true, false, false]).unwrap();
        assert_eq!(cut.skipped, 1, "unschedulable nodes never count as cached");
    }

    #[test]
    fn absorb_lifts_completed_runs() {
        let p = chain(SemVer::master(0, 0));
        let cache = MemoryCache::new();
        let index = ProvenanceIndex::new();
        // Nothing checkpointed → nothing absorbed.
        assert_eq!(index.absorb(&p, &cache).unwrap(), 0);
        // Simulate a completed run: walk the chain inserting checkpoints
        // whose inputs link through artifact ids.
        let mut prev_id: Option<Hash256> = None;
        for (i, comp) in p.components.iter().enumerate() {
            let out = output(i as u8);
            let key = CacheKey {
                component: comp.key(),
                inputs: prev_id.into_iter().collect(),
            };
            prev_id = Some(out.artifact_id);
            cache.insert(key, out);
        }
        assert_eq!(index.absorb(&p, &cache).unwrap(), 3);
        let fps = pipeline_fingerprints(&p).unwrap();
        let snap = index.snapshot();
        let cut = FrontierCut::compute(&p, &snap, &[true; 3]).unwrap();
        assert_eq!(cut.skipped, 3, "fully absorbed pipeline cuts completely");
        assert!(fps.iter().all(|fp| snap.contains_key(fp)));
    }

    #[test]
    fn gate_owner_publishes_and_waiters_adopt() {
        let gate = Arc::new(PrefixGate::new());
        let fp = Hash256::of(b"shared-prefix");
        let Claim::Owner(guard) = gate.claim(fp) else {
            panic!("first claim owns");
        };
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || match gate.claim(fp) {
                Claim::Ready(GateOutcome::Completed(out)) => out.artifact_id,
                _ => panic!("waiter must adopt the completed outcome"),
            })
        };
        // Give the waiter time to block, then publish.
        std::thread::sleep(std::time::Duration::from_millis(10));
        guard.complete(GateOutcome::Completed(output(7)));
        assert_eq!(waiter.join().unwrap(), Hash256::of(&[7, 7]));
    }

    #[test]
    fn gate_unclaims_on_dropped_owner() {
        let gate = PrefixGate::new();
        let fp = Hash256::of(b"poisoned");
        {
            let Claim::Owner(_guard) = gate.claim(fp) else {
                panic!("first claim owns");
            };
            // Guard dropped without completing (owner hit a hard error).
        }
        match gate.claim(fp) {
            Claim::Owner(guard) => guard.complete(GateOutcome::Failed),
            Claim::Ready(_) => panic!("dropped owner must un-claim"),
        }
        match gate.claim(fp) {
            Claim::Ready(GateOutcome::Failed) => {}
            _ => panic!("published outcome sticks"),
        };
    }
}
