//! Pipeline DAG structure (Definitions 1–2).
//!
//! An ML pipeline is a DAG `G = (F, E)` whose vertices are components and
//! whose edges carry data flow. The paper's evaluated pipelines are chains,
//! but the structure (and the executor) supports general DAGs; the merge
//! search tree linearises components in topological order.
//!
//! Non-chain shapes are first-class: [`PipelineDag::fan`] builds the
//! diamond/fan-in pipelines the DAG-parallel executor exploits, and the
//! scheduling helpers ([`PipelineDag::indegrees`],
//! [`PipelineDag::adjacency`], [`PipelineDag::max_width`]) drive the
//! wavefront scheduler in [`crate::executor`].

use crate::component::ComponentHandle;
use crate::errors::{PipelineError, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// The shape of a pipeline: named component slots and data-flow edges.
#[derive(Debug, Clone, Default)]
pub struct PipelineDag {
    nodes: Vec<String>,
    /// Edges as (from, to) node indices.
    edges: Vec<(usize, usize)>,
    index: HashMap<String, usize>,
}

impl PipelineDag {
    /// Empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a linear chain — the shape of all four evaluated pipelines.
    pub fn chain(slots: &[&str]) -> Result<PipelineDag> {
        let mut dag = PipelineDag::new();
        for s in slots {
            dag.add_node(s)?;
        }
        for w in slots.windows(2) {
            dag.add_edge(w[0], w[1])?;
        }
        Ok(dag)
    }

    /// Builds a fan-out/fan-in DAG: `source → each branch → sink` — the
    /// diamond shape when two branches are given. This is the smallest
    /// pipeline family with DAG-internal parallelism: all branches are
    /// independent and may execute concurrently.
    pub fn fan(source: &str, branches: &[&str], sink: &str) -> Result<PipelineDag> {
        let mut dag = PipelineDag::new();
        dag.add_node(source)?;
        for b in branches {
            dag.add_node(b)?;
        }
        dag.add_node(sink)?;
        for b in branches {
            dag.add_edge(source, b)?;
            dag.add_edge(b, sink)?;
        }
        Ok(dag)
    }

    /// Adds a named component slot.
    pub fn add_node(&mut self, name: &str) -> Result<usize> {
        if self.index.contains_key(name) {
            return Err(PipelineError::InvalidDag(format!(
                "duplicate node '{name}'"
            )));
        }
        let id = self.nodes.len();
        self.nodes.push(name.to_string());
        self.index.insert(name.to_string(), id);
        Ok(id)
    }

    /// Adds a data-flow edge `from → to`.
    pub fn add_edge(&mut self, from: &str, to: &str) -> Result<()> {
        let f = self.node_id(from)?;
        let t = self.node_id(to)?;
        if f == t {
            return Err(PipelineError::InvalidDag(format!("self-loop on '{from}'")));
        }
        if self.edges.contains(&(f, t)) {
            return Err(PipelineError::InvalidDag(format!(
                "duplicate edge {from} -> {to}"
            )));
        }
        self.edges.push((f, t));
        Ok(())
    }

    /// Node index by name.
    pub fn node_id(&self, name: &str) -> Result<usize> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| PipelineError::InvalidDag(format!("unknown node '{name}'")))
    }

    /// Node name by index.
    pub fn node_name(&self, id: usize) -> &str {
        &self.nodes[id]
    }

    /// Number of component slots (`N_f` in the paper).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Predecessors `pre(f)` of a node (Definition 2), in edge order.
    pub fn pre(&self, node: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|(_, t)| *t == node)
            .map(|(f, _)| *f)
            .collect()
    }

    /// Successors `suc(f)` of a node (Definition 2), in edge order.
    pub fn suc(&self, node: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|(f, _)| *f == node)
            .map(|(_, t)| *t)
            .collect()
    }

    /// All node names in insertion order.
    pub fn node_names(&self) -> &[String] {
        &self.nodes
    }

    /// Kahn topological order; errors on cycles.
    pub fn topo_order(&self) -> Result<Vec<usize>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for (_, t) in &self.edges {
            indeg[*t] += 1;
        }
        // Stable order: lowest index first among ready nodes.
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut out = Vec::with_capacity(n);
        while let Some(&next) = ready.iter().min() {
            ready.retain(|&x| x != next);
            out.push(next);
            for &s in &self.suc(next) {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
        }
        if out.len() != n {
            return Err(PipelineError::InvalidDag("cycle detected".into()));
        }
        Ok(out)
    }

    /// All data-flow edges as `(from, to)` node-index pairs, in insertion
    /// order.
    pub fn edge_list(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// All data-flow edges as `(from, to)` node-name pairs, in insertion
    /// order (the representation pipeline metafiles record).
    pub fn named_edges(&self) -> Vec<(String, String)> {
        self.edges
            .iter()
            .map(|&(f, t)| (self.nodes[f].clone(), self.nodes[t].clone()))
            .collect()
    }

    /// In-degree of every node — the ready-set seed of the wavefront
    /// scheduler (a node is runnable once its in-degree counter drains to
    /// zero).
    pub fn indegrees(&self) -> Vec<usize> {
        let mut indeg = vec![0usize; self.nodes.len()];
        for (_, t) in &self.edges {
            indeg[*t] += 1;
        }
        indeg
    }

    /// Successor adjacency list for every node, in edge order.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for &(f, t) in &self.edges {
            adj[f].push(t);
        }
        adj
    }

    /// Predecessor list for every node, in edge order — [`PipelineDag::pre`]
    /// for all nodes at once. The merge search uses this to check
    /// compatibility and checkpoint reuse along real DAG edges rather than
    /// assuming a chain.
    pub fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for &(f, t) in &self.edges {
            preds[t].push(f);
        }
        preds
    }

    /// Critical-path length of every node: the number of nodes on the
    /// longest downstream path starting at (and including) the node. Sinks
    /// have length 1; a chain's source has length `n`.
    ///
    /// The wavefront scheduler pops the ready node with the longest
    /// critical path first — finishing long dependency chains early shaves
    /// the tail on skewed DAGs, while FIFO order can strand the critical
    /// chain behind a burst of short independent branches.
    pub fn critical_path_lengths(&self) -> Vec<u64> {
        let order = match self.topo_order() {
            Ok(o) => o,
            Err(_) => return vec![1; self.nodes.len()],
        };
        let adj = self.adjacency();
        let mut cp = vec![1u64; self.nodes.len()];
        for &node in order.iter().rev() {
            let downstream = adj[node].iter().map(|&s| cp[s]).max().unwrap_or(0);
            cp[node] = 1 + downstream;
        }
        cp
    }

    /// Width of the widest wavefront: the maximum number of nodes sharing
    /// one longest-path depth. A chain has width 1; a diamond has width 2.
    /// The executor uses this as the parallelism gate — DAG-internal
    /// fan-out only pays off when some wavefront holds more than one node.
    pub fn max_width(&self) -> usize {
        let order = match self.topo_order() {
            Ok(o) => o,
            Err(_) => return 1,
        };
        let mut depth = vec![0usize; self.nodes.len()];
        let mut width: HashMap<usize, usize> = HashMap::new();
        for node in order {
            let d = self
                .pre(node)
                .iter()
                .map(|&p| depth[p] + 1)
                .max()
                .unwrap_or(0);
            depth[node] = d;
            *width.entry(d).or_insert(0) += 1;
        }
        width.values().copied().max().unwrap_or(1)
    }

    /// Source nodes (no predecessors).
    pub fn sources(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.pre(i).is_empty())
            .collect()
    }

    /// Sink nodes (no successors).
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.suc(i).is_empty())
            .collect()
    }
}

/// A DAG with a concrete component version bound to every slot — a runnable
/// pipeline instance (one candidate in the merge search space).
#[derive(Clone)]
pub struct BoundPipeline {
    /// The pipeline shape.
    pub dag: Arc<PipelineDag>,
    /// One component per slot, aligned with node indices.
    pub components: Vec<ComponentHandle>,
}

impl BoundPipeline {
    /// Binds components to a DAG. The i-th component fills slot i; names
    /// must match slot names.
    pub fn new(dag: Arc<PipelineDag>, components: Vec<ComponentHandle>) -> Result<BoundPipeline> {
        if components.len() != dag.len() {
            return Err(PipelineError::InvalidDag(format!(
                "bound {} components to {} slots",
                components.len(),
                dag.len()
            )));
        }
        for (i, c) in components.iter().enumerate() {
            if c.name() != dag.node_name(i) {
                return Err(PipelineError::InvalidDag(format!(
                    "slot '{}' bound to component '{}'",
                    dag.node_name(i),
                    c.name()
                )));
            }
        }
        Ok(BoundPipeline { dag, components })
    }

    /// Statically checks adjacent declared schemas along every edge; returns
    /// the first incompatibility (Definition 4). This is what lets MLCask
    /// refuse to run a doomed pipeline *before* spending any compute.
    pub fn precheck_compatibility(&self) -> Result<()> {
        for &(from, to) in &self.dag.edges {
            let producer = &self.components[from];
            let consumer = &self.components[to];
            if let Some(expected) = consumer.input_schema() {
                let actual = producer.output_schema();
                if actual != expected {
                    return Err(PipelineError::IncompatibleSchema(Box::new(
                        crate::errors::IncompatibleSchemaDetail {
                            component: consumer.key(),
                            input_index: 0,
                            expected,
                            actual,
                        },
                    )));
                }
            }
        }
        Ok(())
    }

    /// Component keys in topological order (the paper's pipeline identity).
    pub fn keys(&self) -> Result<Vec<crate::component::ComponentKey>> {
        Ok(self
            .dag
            .topo_order()?
            .into_iter()
            .map(|i| self.components[i].key())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::test_support::{TestModel, TestScaler, TestSource};
    use crate::semver::SemVer;

    fn chain3() -> (Arc<PipelineDag>, Vec<ComponentHandle>) {
        let dag =
            Arc::new(PipelineDag::chain(&["test_source", "test_scaler", "test_model"]).unwrap());
        let comps: Vec<ComponentHandle> = vec![
            Arc::new(TestSource {
                version: SemVer::initial(),
                dim: 3,
                rows: 4,
            }),
            Arc::new(TestScaler {
                version: SemVer::initial(),
                dim_in: 3,
                dim_out: 3,
                factor: 1.0,
            }),
            Arc::new(TestModel {
                version: SemVer::initial(),
                dim_in: 3,
                quality: 0.5,
            }),
        ];
        (dag, comps)
    }

    #[test]
    fn chain_structure() {
        let dag = PipelineDag::chain(&["a", "b", "c"]).unwrap();
        assert_eq!(dag.len(), 3);
        assert_eq!(dag.pre(1), vec![0]);
        assert_eq!(dag.suc(1), vec![2]);
        assert_eq!(dag.sources(), vec![0]);
        assert_eq!(dag.sinks(), vec![2]);
        assert_eq!(dag.topo_order().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn rejects_duplicates_and_self_loops() {
        let mut dag = PipelineDag::new();
        dag.add_node("a").unwrap();
        assert!(dag.add_node("a").is_err());
        dag.add_node("b").unwrap();
        dag.add_edge("a", "b").unwrap();
        assert!(dag.add_edge("a", "b").is_err());
        assert!(dag.add_edge("a", "a").is_err());
        assert!(dag.add_edge("a", "zzz").is_err());
    }

    #[test]
    fn detects_cycles() {
        let mut dag = PipelineDag::new();
        for n in ["a", "b", "c"] {
            dag.add_node(n).unwrap();
        }
        dag.add_edge("a", "b").unwrap();
        dag.add_edge("b", "c").unwrap();
        dag.add_edge("c", "a").unwrap();
        assert!(matches!(
            dag.topo_order(),
            Err(PipelineError::InvalidDag(_))
        ));
    }

    #[test]
    fn diamond_topo_order() {
        let mut dag = PipelineDag::new();
        for n in ["src", "left", "right", "join"] {
            dag.add_node(n).unwrap();
        }
        dag.add_edge("src", "left").unwrap();
        dag.add_edge("src", "right").unwrap();
        dag.add_edge("left", "join").unwrap();
        dag.add_edge("right", "join").unwrap();
        let order = dag.topo_order().unwrap();
        assert_eq!(order[0], 0);
        assert_eq!(order[3], 3);
        assert_eq!(dag.pre(3).len(), 2);
    }

    #[test]
    fn fan_builder_and_scheduling_helpers() {
        let dag = PipelineDag::fan("src", &["a", "b", "c"], "sink").unwrap();
        assert_eq!(dag.len(), 5);
        assert_eq!(dag.sources(), vec![0]);
        assert_eq!(dag.sinks(), vec![4]);
        assert_eq!(dag.pre(4).len(), 3);
        assert_eq!(dag.indegrees(), vec![0, 1, 1, 1, 3]);
        assert_eq!(dag.adjacency()[0], vec![1, 2, 3]);
        assert_eq!(dag.edge_list().len(), 6);
        assert_eq!(dag.named_edges()[0], ("src".to_string(), "a".to_string()));
        assert_eq!(dag.max_width(), 3, "three branches run concurrently");
    }

    #[test]
    fn chain_has_width_one() {
        let dag = PipelineDag::chain(&["a", "b", "c"]).unwrap();
        assert_eq!(dag.max_width(), 1);
        assert_eq!(dag.indegrees(), vec![0, 1, 1]);
        let diamond = PipelineDag::fan("s", &["l", "r"], "j").unwrap();
        assert_eq!(diamond.max_width(), 2);
    }

    #[test]
    fn critical_path_lengths_measure_downstream_chains() {
        let chain = PipelineDag::chain(&["a", "b", "c"]).unwrap();
        assert_eq!(chain.critical_path_lengths(), vec![3, 2, 1]);
        // Skewed DAG: src feeds a long chain (x1→x2→x3) and a short leaf.
        let mut dag = PipelineDag::new();
        for n in ["src", "x1", "x2", "x3", "leaf"] {
            dag.add_node(n).unwrap();
        }
        dag.add_edge("src", "x1").unwrap();
        dag.add_edge("x1", "x2").unwrap();
        dag.add_edge("x2", "x3").unwrap();
        dag.add_edge("src", "leaf").unwrap();
        assert_eq!(dag.critical_path_lengths(), vec![4, 3, 2, 1, 1]);
        let fan = PipelineDag::fan("s", &["a", "b"], "t").unwrap();
        assert_eq!(fan.critical_path_lengths(), vec![3, 2, 2, 1]);
    }

    #[test]
    fn bind_validates_alignment() {
        let (dag, comps) = chain3();
        assert!(BoundPipeline::new(Arc::clone(&dag), comps.clone()).is_ok());
        // Wrong count.
        assert!(BoundPipeline::new(Arc::clone(&dag), comps[..2].to_vec()).is_err());
        // Wrong order.
        let mut shuffled = comps;
        shuffled.swap(0, 1);
        assert!(BoundPipeline::new(dag, shuffled).is_err());
    }

    #[test]
    fn precheck_detects_static_incompatibility() {
        let dag =
            Arc::new(PipelineDag::chain(&["test_source", "test_scaler", "test_model"]).unwrap());
        let comps: Vec<ComponentHandle> = vec![
            Arc::new(TestSource {
                version: SemVer::initial(),
                dim: 3,
                rows: 4,
            }),
            // Scaler widens to 5 dims, but model expects 3 → incompatible.
            Arc::new(TestScaler {
                version: SemVer::master(1, 0),
                dim_in: 3,
                dim_out: 5,
                factor: 1.0,
            }),
            Arc::new(TestModel {
                version: SemVer::initial(),
                dim_in: 3,
                quality: 0.5,
            }),
        ];
        let bound = BoundPipeline::new(dag, comps).unwrap();
        assert!(matches!(
            bound.precheck_compatibility(),
            Err(PipelineError::IncompatibleSchema(_))
        ));
    }

    #[test]
    fn keys_in_topo_order() {
        let (dag, comps) = chain3();
        let bound = BoundPipeline::new(dag, comps).unwrap();
        let keys = bound.keys().unwrap();
        assert_eq!(keys[0].name, "test_source");
        assert_eq!(keys[2].name, "test_model");
    }
}
