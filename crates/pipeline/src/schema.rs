//! Data schemas and the schema hash (§IV-B).
//!
//! The paper determines component compatibility purely from output data
//! schemas. For relational data, "all the column headers are extracted,
//! standardized, sorted, and then concatenated into a single flat vector"
//! and hashed (SHA-256). For non-relational data, the compatibility-relevant
//! meta information is used instead (image shape, vocabulary size, …).

use mlcask_storage::hash::Hash256;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Canonical identity of a data schema: the value two adjacent components
/// compare to decide compatibility (Definition 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SchemaId(pub Hash256);

impl fmt::Display for SchemaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schema:{}", self.0.short())
    }
}

/// Structural description of the data flowing between components.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Schema {
    /// Relational table identified by its column headers.
    Relational {
        /// Column names (order-insensitive; canonicalised before hashing).
        columns: Vec<String>,
    },
    /// Dense feature matrix with a fixed dimensionality.
    FeatureMatrix {
        /// Number of feature columns.
        dim: usize,
        /// Number of label classes carried alongside.
        n_classes: usize,
    },
    /// Token documents over a bounded vocabulary.
    TextCorpus {
        /// Vocabulary size bound (compatibility-relevant per §IV-B).
        vocab_size: usize,
    },
    /// Square grayscale images.
    ImageSet {
        /// Image side length in pixels ("shape for image datasets").
        side: usize,
        /// Number of label classes.
        n_classes: usize,
    },
    /// Categorical observation sequences (HMM inputs).
    Sequences {
        /// Number of distinct observation symbols.
        n_symbols: usize,
        /// Number of label classes.
        n_classes: usize,
    },
    /// A trained model artifact tagged with its metric family.
    Model {
        /// Free-form model family label (e.g. `"mlp"`, `"adaboost"`).
        family: String,
    },
}

/// Standardises a column header: trim, lowercase, inner whitespace → `_`.
fn standardize(col: &str) -> String {
    col.trim()
        .to_lowercase()
        .split_whitespace()
        .collect::<Vec<_>>()
        .join("_")
}

impl Schema {
    /// Computes the canonical schema hash.
    ///
    /// Relational schemas follow the paper's recipe exactly: standardise,
    /// sort, concatenate, hash. Non-relational schemas hash their
    /// compatibility-relevant meta information with a variant tag.
    pub fn id(&self) -> SchemaId {
        let h = match self {
            Schema::Relational { columns } => {
                let mut canon: Vec<String> = columns.iter().map(|c| standardize(c)).collect();
                canon.sort();
                let parts: Vec<&[u8]> = std::iter::once("relational".as_bytes())
                    .chain(canon.iter().map(|c| c.as_bytes()))
                    .collect();
                Hash256::of_parts(&parts)
            }
            Schema::FeatureMatrix { dim, n_classes } => Hash256::of_parts(&[
                b"features",
                &(*dim as u64).to_le_bytes(),
                &(*n_classes as u64).to_le_bytes(),
            ]),
            Schema::TextCorpus { vocab_size } => {
                Hash256::of_parts(&[b"text", &(*vocab_size as u64).to_le_bytes()])
            }
            Schema::ImageSet { side, n_classes } => Hash256::of_parts(&[
                b"images",
                &(*side as u64).to_le_bytes(),
                &(*n_classes as u64).to_le_bytes(),
            ]),
            Schema::Sequences {
                n_symbols,
                n_classes,
            } => Hash256::of_parts(&[
                b"sequences",
                &(*n_symbols as u64).to_le_bytes(),
                &(*n_classes as u64).to_le_bytes(),
            ]),
            Schema::Model { family } => Hash256::of_parts(&[b"model", family.as_bytes()]),
        };
        SchemaId(h)
    }

    /// Convenience constructor for relational schemas.
    pub fn relational(columns: &[&str]) -> Schema {
        Schema::Relational {
            columns: columns.iter().map(|c| c.to_string()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relational_hash_is_order_insensitive() {
        let a = Schema::relational(&["age", "diagnosis", "lab_result"]);
        let b = Schema::relational(&["lab_result", "age", "diagnosis"]);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn relational_hash_standardizes_headers() {
        let a = Schema::relational(&["  Age ", "Lab Result"]);
        let b = Schema::relational(&["age", "lab_result"]);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn different_columns_different_hash() {
        let a = Schema::relational(&["age", "diagnosis"]);
        let b = Schema::relational(&["age", "diagnosis", "procedure"]);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn column_split_is_not_ambiguous() {
        // ["ab", "c"] vs ["a", "bc"] must hash differently (length-prefixed
        // parts, not plain concatenation).
        let a = Schema::relational(&["ab", "c"]);
        let b = Schema::relational(&["a", "bc"]);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn feature_matrix_dims_matter() {
        let a = Schema::FeatureMatrix {
            dim: 10,
            n_classes: 2,
        };
        let b = Schema::FeatureMatrix {
            dim: 12,
            n_classes: 2,
        };
        let c = Schema::FeatureMatrix {
            dim: 10,
            n_classes: 3,
        };
        assert_ne!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
        assert_eq!(
            a.id(),
            Schema::FeatureMatrix {
                dim: 10,
                n_classes: 2
            }
            .id()
        );
    }

    #[test]
    fn variant_tags_prevent_cross_kind_collisions() {
        // Same numeric payloads in different variants must not collide.
        let img = Schema::ImageSet {
            side: 16,
            n_classes: 10,
        };
        let seq = Schema::Sequences {
            n_symbols: 16,
            n_classes: 10,
        };
        assert_ne!(img.id(), seq.id());
    }

    #[test]
    fn text_vocab_size_is_compat_signal() {
        let a = Schema::TextCorpus { vocab_size: 1000 };
        let b = Schema::TextCorpus { vocab_size: 2000 };
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn model_family_distinguishes() {
        assert_ne!(
            Schema::Model {
                family: "mlp".into()
            }
            .id(),
            Schema::Model {
                family: "adaboost".into()
            }
            .id()
        );
    }

    #[test]
    fn display_is_short() {
        let id = Schema::relational(&["a"]).id();
        assert!(id.to_string().starts_with("schema:"));
        assert_eq!(id.to_string().len(), "schema:".len() + 8);
    }

    #[test]
    fn serde_round_trip() {
        let s = Schema::ImageSet {
            side: 8,
            n_classes: 4,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.id(), s.id());
    }
}
