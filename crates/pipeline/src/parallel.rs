//! Worker-pool primitives for parallel candidate evaluation.
//!
//! The merge search and the prioritized-search trial harness evaluate many
//! *independent* pipelines; [`map_indexed`] fans that work out over scoped
//! threads while keeping results in input order so downstream accounting is
//! deterministic. [`ParallelismPolicy`] is the user-facing knob, exposed on
//! `ExecOptions`, `MergeEngine`, `PrioritizedSearcher`, and `MlCask`.
//!
//! Determinism contract: callers must make worker closures *pure up to
//! commutative side effects* (content-addressed stores, output caches, and
//! `ClockLedger` charges all commute); every ordering-sensitive computation
//! (virtual end-times, storage accounting, best-candidate selection) is then
//! performed by a sequential reduction over the index-ordered results — see
//! `mlcask_pipeline::replay`.

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

/// How many worker threads candidate evaluation may use.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParallelismPolicy {
    /// Evaluate candidates one at a time on the caller's thread.
    #[default]
    Sequential,
    /// Evaluate candidates on a pool of `n` workers; `Parallel(0)` sizes the
    /// pool to the machine's available parallelism.
    Parallel(usize),
}

impl ParallelismPolicy {
    /// A pool sized to the machine.
    pub fn auto() -> ParallelismPolicy {
        ParallelismPolicy::Parallel(0)
    }

    /// The concrete worker count this policy resolves to.
    pub fn workers(&self) -> usize {
        match self {
            ParallelismPolicy::Sequential => 1,
            ParallelismPolicy::Parallel(0) => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ParallelismPolicy::Parallel(n) => *n,
        }
    }
}

/// Applies `f` to every item, possibly in parallel, returning results in
/// input order. Work is distributed dynamically (an atomic cursor), so
/// heterogeneous item costs balance across workers. Panics in workers
/// propagate to the caller.
pub fn map_indexed<T, R, F>(policy: ParallelismPolicy, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = policy.workers().min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("worker filled every slot"))
        .collect()
}

/// Number of independently locked shards in a [`ShardedMap`].
const MAP_SHARDS: usize = 16;

/// A concurrent hash map split into independently locked shards, so many
/// worker threads can look up and insert without serializing on one lock.
/// Backs the executor's `MemoryCache`, the replay `ProfileBook`, and the
/// core crate's `HistoryIndex`.
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
}

impl<K, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        ShardedMap {
            shards: (0..MAP_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }
}

impl<K: Eq + Hash, V> ShardedMap<K, V> {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard_of(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// True if the key is present.
    pub fn contains(&self, key: &K) -> bool {
        self.shards[self.shard_of(key)].read().contains_key(key)
    }

    /// Inserts (last writer wins).
    pub fn insert(&self, key: K, value: V) {
        self.shards[self.shard_of(&key)].write().insert(key, value);
    }

    /// Inserts only if absent (first writer wins).
    pub fn insert_if_absent(&self, key: K, value: V) {
        self.shards[self.shard_of(&key)]
            .write()
            .entry(key)
            .or_insert(value);
    }

    /// Number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True if no entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash, V: Clone> ShardedMap<K, V> {
    /// Cloned value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shards[self.shard_of(key)].read().get(key).cloned()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedMap<K, V> {
    /// Independent deep copy with the same contents.
    pub fn fork(&self) -> ShardedMap<K, V> {
        ShardedMap {
            shards: self
                .shards
                .iter()
                .map(|s| RwLock::new(s.read().clone()))
                .collect(),
        }
    }

    /// Point-in-time copy of every entry as one `HashMap`.
    pub fn to_hashmap(&self) -> HashMap<K, V> {
        let mut out = HashMap::with_capacity(self.len());
        for s in &self.shards {
            for (k, v) in s.read().iter() {
                out.insert(k.clone(), v.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_map_basics() {
        let m: ShardedMap<u32, String> = ShardedMap::new();
        assert!(m.is_empty());
        for i in 0..100u32 {
            m.insert(i, i.to_string());
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&42).as_deref(), Some("42"));
        assert!(m.contains(&7));
        assert!(!m.contains(&1000));
        m.insert_if_absent(42, "clobber".into());
        assert_eq!(m.get(&42).as_deref(), Some("42"), "first writer wins");
        let fork = m.fork();
        fork.insert(1000, "x".into());
        assert!(!m.contains(&1000), "fork is independent");
        assert_eq!(m.to_hashmap().len(), 100);
    }

    #[test]
    fn sharded_map_concurrent_inserts() {
        let m: ShardedMap<u32, u32> = ShardedMap::new();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..250u32 {
                        m.insert(t * 250 + i, i);
                    }
                });
            }
        });
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn policy_workers() {
        assert_eq!(ParallelismPolicy::Sequential.workers(), 1);
        assert_eq!(ParallelismPolicy::Parallel(3).workers(), 3);
        assert!(ParallelismPolicy::auto().workers() >= 1);
        assert_eq!(ParallelismPolicy::default(), ParallelismPolicy::Sequential);
    }

    #[test]
    fn results_keep_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for policy in [
            ParallelismPolicy::Sequential,
            ParallelismPolicy::Parallel(4),
        ] {
            let out = map_indexed(policy, &items, |i, x| (i as u64) * 1000 + x * 2);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, (i as u64) * 1000 + items[i] * 2);
            }
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let items: Vec<u64> = (0..64).collect();
        let seq = map_indexed(ParallelismPolicy::Sequential, &items, |_, x| x * x);
        let par = map_indexed(ParallelismPolicy::Parallel(8), &items, |_, x| x * x);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_indexed(ParallelismPolicy::Parallel(4), &empty, |_, x| *x).is_empty());
        let one = [7u32];
        assert_eq!(
            map_indexed(ParallelismPolicy::Parallel(4), &one, |_, x| x + 1),
            vec![8]
        );
    }

    #[test]
    fn really_runs_concurrently() {
        use std::sync::atomic::AtomicUsize;
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let items: Vec<u32> = (0..16).collect();
        map_indexed(ParallelismPolicy::Parallel(4), &items, |_, _| {
            let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(5));
            in_flight.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) > 1, "no overlap observed");
    }
}
