//! Worker-pool primitives for parallel pipeline evaluation.
//!
//! Two fan-out shapes share one pool budget:
//!
//! * **Across pipelines** — the merge search and the prioritized-search
//!   trial harness evaluate many *independent* pipelines; [`map_indexed`]
//!   fans that work out over scoped threads while keeping results in input
//!   order so downstream accounting is deterministic.
//! * **Within one pipeline** — independent DAG nodes of a *single* pipeline
//!   run concurrently via [`run_dag`], a ready-set (wavefront) scheduler: a
//!   node is dispatched the moment its last predecessor completes.
//!
//! [`ParallelismPolicy`] is the user-facing knob, exposed on `ExecOptions`,
//! `MergeEngine`, `PrioritizedSearcher`, and `MlCask`;
//! [`ParallelismPolicy::split`] divides one budget between the two levels
//! without oversubscribing.
//!
//! Determinism contract: callers must make worker closures *pure up to
//! commutative side effects* (content-addressed stores, output caches, and
//! `ClockLedger` charges all commute); every ordering-sensitive computation
//! (virtual end-times, storage accounting, best-candidate selection) is then
//! performed by a sequential reduction over the index-ordered results — see
//! `mlcask_pipeline::replay`.

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::Condvar as StdCondvar;
use std::sync::Mutex as StdMutex;

/// How many worker threads candidate evaluation may use.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParallelismPolicy {
    /// Evaluate candidates one at a time on the caller's thread.
    #[default]
    Sequential,
    /// Evaluate candidates on a pool of `n` workers; `Parallel(0)` sizes the
    /// pool to the machine's available parallelism.
    Parallel(usize),
}

impl ParallelismPolicy {
    /// A pool sized to the machine.
    pub fn auto() -> ParallelismPolicy {
        ParallelismPolicy::Parallel(0)
    }

    /// The concrete worker count this policy resolves to.
    pub fn workers(&self) -> usize {
        match self {
            ParallelismPolicy::Sequential => 1,
            ParallelismPolicy::Parallel(0) => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ParallelismPolicy::Parallel(n) => *n,
        }
    }

    /// Divides this pool between an outer fan-out over `outer_items`
    /// independent work items and DAG-internal execution *inside* each
    /// item, without oversubscribing: the outer level gets
    /// `min(workers, outer_items)` workers and each item inherits the
    /// leftover `workers / outer` as its inner policy.
    ///
    /// With many items (a wide merge search) all workers go to the outer
    /// level and inner execution stays sequential; with few items (one
    /// trial, one commit) the spare workers flow into each pipeline's
    /// wavefront instead.
    pub fn split(&self, outer_items: usize) -> (ParallelismPolicy, ParallelismPolicy) {
        let w = self.workers();
        if w <= 1 {
            return (ParallelismPolicy::Sequential, ParallelismPolicy::Sequential);
        }
        let outer = w.min(outer_items.max(1));
        let inner = w / outer;
        let as_policy = |n: usize| {
            if n <= 1 {
                ParallelismPolicy::Sequential
            } else {
                ParallelismPolicy::Parallel(n)
            }
        };
        (as_policy(outer), as_policy(inner))
    }
}

/// Applies `f` to every item, possibly in parallel, returning results in
/// input order. Work is distributed dynamically (an atomic cursor), so
/// heterogeneous item costs balance across workers. Panics in workers
/// propagate to the caller.
pub fn map_indexed<T, R, F>(policy: ParallelismPolicy, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = policy.workers().min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("worker filled every slot"))
        .collect()
}

/// Directs the [`run_dag`] scheduler after one node completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeVerdict {
    /// The node succeeded: release its successors into the ready set.
    Continue,
    /// The node hit an *expected* failure (e.g. a schema incompatibility):
    /// its successors stay unreachable, but independent nodes keep
    /// executing. This keeps the executed node set deterministic — it
    /// depends only on the DAG and which nodes fail, never on worker count
    /// or completion order.
    SkipSuccessors,
}

struct DagState<E> {
    ready: Vec<usize>,
    indeg: Vec<usize>,
    in_flight: usize,
    stop: bool,
    err: Option<E>,
}

/// Removes and returns the best ready node: longest critical path first
/// (see [`crate::dag::PipelineDag::critical_path_lengths`]), lowest index
/// on ties. With an empty `priority` slice this degenerates to canonical
/// lowest-index (FIFO-equivalent) popping.
fn pop_ready(ready: &mut Vec<usize>, priority: &[u64]) -> Option<usize> {
    let pos = ready
        .iter()
        .enumerate()
        .min_by_key(|(_, &n)| (std::cmp::Reverse(priority.get(n).copied().unwrap_or(0)), n))
        .map(|(i, _)| i)?;
    Some(ready.swap_remove(pos))
}

/// Decrements `in_flight` and halts the scheduler if the worker unwinds
/// inside the node callback, so sibling workers blocked on the condvar are
/// released instead of deadlocking while the panic propagates.
struct FlightGuard<'a, E> {
    state: &'a StdMutex<DagState<E>>,
    cv: &'a StdCondvar,
    armed: bool,
}

impl<E> Drop for FlightGuard<'_, E> {
    fn drop(&mut self) {
        if self.armed {
            let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            s.in_flight -= 1;
            s.stop = true;
            drop(s);
            self.cv.notify_all();
        }
    }
}

/// Executes the nodes of a DAG on a worker pool, dispatching each node the
/// moment its last predecessor completes (a ready-set wavefront scheduler).
///
/// * `indeg[i]` — number of predecessors of node `i` (see
///   [`crate::dag::PipelineDag::indegrees`]).
/// * `adjacency[i]` — successors of node `i` (see
///   [`crate::dag::PipelineDag::adjacency`]).
/// * `priority[i]` — dispatch priority among simultaneously-ready nodes;
///   highest first, lowest index on ties. Callers pass
///   [`crate::dag::PipelineDag::critical_path_lengths`] so the node heading
///   the longest remaining dependency chain is dispatched first
///   (cost-aware wavefront ordering — FIFO can strand the critical chain
///   behind a burst of short branches on skewed DAGs). An empty slice
///   means no preference (canonical lowest-index order).
/// * `f(i)` — executes node `i`; its [`NodeVerdict`] tells the scheduler
///   whether to release the node's successors or stop dispatching.
///
/// With one worker the nodes run on the caller's thread in canonical
/// topological order (lowest index first among ready nodes — the
/// [`crate::dag::PipelineDag::topo_order`] tie-break). With more workers
/// the completion order is racy, so callers must keep `f`'s side effects
/// commutative and defer ordering-sensitive accounting to a deterministic
/// replay (see [`crate::replay`]).
///
/// Which nodes run is *not* racy: a node runs iff every ancestor returned
/// [`NodeVerdict::Continue`], a predicate independent of scheduling. Nodes
/// left unreachable by a [`NodeVerdict::SkipSuccessors`] are simply never
/// visited; `run_dag` still returns `Ok`.
///
/// The first `Err` from `f` halts dispatch and is returned; panics in
/// workers propagate to the caller.
pub fn run_dag<E, F>(
    policy: ParallelismPolicy,
    indeg: Vec<usize>,
    adjacency: &[Vec<usize>],
    priority: &[u64],
    f: F,
) -> std::result::Result<(), E>
where
    F: Fn(usize) -> std::result::Result<NodeVerdict, E> + Sync,
    E: Send,
{
    let n = indeg.len();
    let workers = policy.workers().min(n.max(1));
    if workers <= 1 {
        let mut indeg = indeg;
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        while let Some(&next) = ready.iter().min() {
            ready.retain(|&x| x != next);
            if f(next)? == NodeVerdict::Continue {
                for &s in &adjacency[next] {
                    indeg[s] -= 1;
                    if indeg[s] == 0 {
                        ready.push(s);
                    }
                }
            }
        }
        return Ok(());
    }

    let ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let state = StdMutex::new(DagState {
        ready,
        indeg,
        in_flight: 0,
        stop: false,
        err: None,
    });
    let cv = StdCondvar::new();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let node = {
                    let mut s = state.lock().unwrap_or_else(|e| e.into_inner());
                    loop {
                        if s.stop {
                            return;
                        }
                        if let Some(next) = pop_ready(&mut s.ready, priority) {
                            s.in_flight += 1;
                            break next;
                        }
                        if s.in_flight == 0 {
                            return;
                        }
                        s = cv.wait(s).unwrap_or_else(|e| e.into_inner());
                    }
                };
                let mut panic_guard = FlightGuard {
                    state: &state,
                    cv: &cv,
                    armed: true,
                };
                let verdict = f(node);
                panic_guard.armed = false;
                let mut s = state.lock().unwrap_or_else(|e| e.into_inner());
                s.in_flight -= 1;
                match verdict {
                    Ok(NodeVerdict::Continue) => {
                        for &suc in &adjacency[node] {
                            s.indeg[suc] -= 1;
                            if s.indeg[suc] == 0 {
                                s.ready.push(suc);
                            }
                        }
                    }
                    Ok(NodeVerdict::SkipSuccessors) => {}
                    Err(e) => {
                        if s.err.is_none() {
                            s.err = Some(e);
                        }
                        s.stop = true;
                    }
                }
                drop(s);
                cv.notify_all();
            });
        }
    });
    let s = state.into_inner().unwrap_or_else(|e| e.into_inner());
    match s.err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Number of independently locked shards in a [`ShardedMap`].
const MAP_SHARDS: usize = 16;

/// A concurrent hash map split into independently locked shards, so many
/// worker threads can look up and insert without serializing on one lock.
/// Backs the executor's `MemoryCache`, the replay `ProfileBook`, and the
/// core crate's `HistoryIndex`.
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
    /// Bumped after every mutation; see [`ShardedMap::generation`].
    gen: AtomicU64,
}

impl<K, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        ShardedMap {
            shards: (0..MAP_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            gen: AtomicU64::new(0),
        }
    }
}

impl<K: Eq + Hash, V> ShardedMap<K, V> {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard_of(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// True if the key is present.
    pub fn contains(&self, key: &K) -> bool {
        self.shards[self.shard_of(key)].read().contains_key(key)
    }

    /// Inserts (last writer wins).
    pub fn insert(&self, key: K, value: V) {
        self.shards[self.shard_of(&key)].write().insert(key, value);
        self.gen.fetch_add(1, Ordering::Release);
    }

    /// Inserts only if absent (first writer wins). Returns the rejected
    /// `value` when an entry already existed, so callers can dispose of a
    /// racing duplicate's side-state (e.g. release its quota reservation).
    pub fn insert_if_absent(&self, key: K, value: V) -> Option<V> {
        let rejected = match self.shards[self.shard_of(&key)].write().entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => Some(value),
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(value);
                None
            }
        };
        if rejected.is_none() {
            self.gen.fetch_add(1, Ordering::Release);
        }
        rejected
    }

    /// Mutation generation: advances (at least) once per completed insert,
    /// never otherwise. Observing an unchanged generation across two reads
    /// proves no mutation landed in between, which is what
    /// [`SnapshotCache`] uses to reuse a previously built snapshot. The
    /// bump is ordered *after* the mutation (`Release`; pair reads with
    /// `Acquire` via this method), so a snapshot built after observing
    /// generation `g` contains every mutation counted by `g` — the cache
    /// can over-invalidate but never serve stale contents.
    pub fn generation(&self) -> u64 {
        self.gen.load(Ordering::Acquire)
    }

    /// Number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True if no entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash, V: Clone> ShardedMap<K, V> {
    /// Cloned value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shards[self.shard_of(key)].read().get(key).cloned()
    }

    /// Point-in-time copy of every value (unspecified order).
    pub fn values(&self) -> Vec<V> {
        let mut out = Vec::with_capacity(self.len());
        for s in &self.shards {
            out.extend(s.read().values().cloned());
        }
        out
    }
}

impl<K: Eq + Hash, V> ShardedMap<K, V> {
    /// Visits every value by reference (unspecified order, one shard read
    /// lock at a time) — no clones, for cheap sweeps over large values.
    pub fn for_each_value(&self, mut f: impl FnMut(&V)) {
        for s in &self.shards {
            for v in s.read().values() {
                f(v);
            }
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedMap<K, V> {
    /// Independent deep copy with the same contents.
    pub fn fork(&self) -> ShardedMap<K, V> {
        ShardedMap {
            shards: self
                .shards
                .iter()
                .map(|s| RwLock::new(s.read().clone()))
                .collect(),
            gen: AtomicU64::new(0),
        }
    }

    /// Point-in-time copy of every entry as one `HashMap`.
    pub fn to_hashmap(&self) -> HashMap<K, V> {
        let mut out = HashMap::with_capacity(self.len());
        for s in &self.shards {
            for (k, v) in s.read().iter() {
                out.insert(k.clone(), v.clone());
            }
        }
        out
    }
}

/// Generation-validated snapshot memo for a [`ShardedMap`].
///
/// `to_hashmap` is O(n) per call; search entry points that snapshot an
/// unchanged history on every request (the serving read path, repeated
/// merge trials against a quiescent base) were paying that copy each time.
/// This cache keys one shared `Arc<HashMap>` by the map's mutation
/// generation: while nothing mutates, every caller gets the same `Arc`
/// back in O(1); any insert invalidates it and the next caller rebuilds.
/// Concurrent rebuilds serialize on the memo lock so the O(n) copy runs
/// once per generation, not once per racing caller.
pub struct SnapshotCache<K, V> {
    /// `(generation stamp, shared snapshot)` once first built.
    cached: Mutex<Option<Memo<K, V>>>,
}

type Memo<K, V> = (u64, Arc<HashMap<K, V>>);

impl<K, V> Default for SnapshotCache<K, V> {
    fn default() -> Self {
        SnapshotCache {
            cached: Mutex::new(None),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> SnapshotCache<K, V> {
    /// Empty memo (first call always builds).
    pub fn new() -> Self {
        Self::default()
    }

    /// The snapshot of `map` at its current generation — reused if nothing
    /// mutated since the last call, rebuilt otherwise. An insert that races
    /// the rebuild bumps the generation past the stamp recorded here, so
    /// the next call rebuilds again: never stale, at worst re-copied.
    pub fn snapshot(&self, map: &ShardedMap<K, V>) -> Arc<HashMap<K, V>> {
        let gen = map.generation();
        let mut memo = self.cached.lock();
        if let Some((stamp, snap)) = memo.as_ref() {
            if *stamp == gen {
                return Arc::clone(snap);
            }
        }
        let snap = Arc::new(map.to_hashmap());
        *memo = Some((gen, Arc::clone(&snap)));
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_map_basics() {
        let m: ShardedMap<u32, String> = ShardedMap::new();
        assert!(m.is_empty());
        for i in 0..100u32 {
            m.insert(i, i.to_string());
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&42).as_deref(), Some("42"));
        assert!(m.contains(&7));
        assert!(!m.contains(&1000));
        m.insert_if_absent(42, "clobber".into());
        assert_eq!(m.get(&42).as_deref(), Some("42"), "first writer wins");
        let fork = m.fork();
        fork.insert(1000, "x".into());
        assert!(!m.contains(&1000), "fork is independent");
        assert_eq!(m.to_hashmap().len(), 100);
    }

    #[test]
    fn sharded_map_concurrent_inserts() {
        let m: ShardedMap<u32, u32> = ShardedMap::new();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..250u32 {
                        m.insert(t * 250 + i, i);
                    }
                });
            }
        });
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn policy_workers() {
        assert_eq!(ParallelismPolicy::Sequential.workers(), 1);
        assert_eq!(ParallelismPolicy::Parallel(3).workers(), 3);
        assert!(ParallelismPolicy::auto().workers() >= 1);
        assert_eq!(ParallelismPolicy::default(), ParallelismPolicy::Sequential);
    }

    #[test]
    fn results_keep_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for policy in [
            ParallelismPolicy::Sequential,
            ParallelismPolicy::Parallel(4),
        ] {
            let out = map_indexed(policy, &items, |i, x| (i as u64) * 1000 + x * 2);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, (i as u64) * 1000 + items[i] * 2);
            }
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let items: Vec<u64> = (0..64).collect();
        let seq = map_indexed(ParallelismPolicy::Sequential, &items, |_, x| x * x);
        let par = map_indexed(ParallelismPolicy::Parallel(8), &items, |_, x| x * x);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_indexed(ParallelismPolicy::Parallel(4), &empty, |_, x| *x).is_empty());
        let one = [7u32];
        assert_eq!(
            map_indexed(ParallelismPolicy::Parallel(4), &one, |_, x| x + 1),
            vec![8]
        );
    }

    #[test]
    fn split_divides_the_pool() {
        // Many items: all workers fan out, inner stays sequential.
        assert_eq!(
            ParallelismPolicy::Parallel(8).split(32),
            (
                ParallelismPolicy::Parallel(8),
                ParallelismPolicy::Sequential
            )
        );
        // Few items: spare workers flow into each item's wavefront.
        assert_eq!(
            ParallelismPolicy::Parallel(8).split(2),
            (
                ParallelismPolicy::Parallel(2),
                ParallelismPolicy::Parallel(4)
            )
        );
        // One item: everything goes inner.
        assert_eq!(
            ParallelismPolicy::Parallel(6).split(1),
            (
                ParallelismPolicy::Sequential,
                ParallelismPolicy::Parallel(6)
            )
        );
        assert_eq!(
            ParallelismPolicy::Sequential.split(10),
            (ParallelismPolicy::Sequential, ParallelismPolicy::Sequential)
        );
        // Never oversubscribes: outer * inner <= workers.
        for w in 1..16 {
            for items in 1..40 {
                let (o, i) = ParallelismPolicy::Parallel(w).split(items);
                assert!(o.workers() * i.workers() <= w, "{w} workers, {items} items");
            }
        }
    }

    /// A diamond: 0 → {1, 2} → 3.
    fn diamond() -> (Vec<usize>, Vec<Vec<usize>>) {
        (vec![0, 1, 1, 2], vec![vec![1, 2], vec![3], vec![3], vec![]])
    }

    #[test]
    fn run_dag_respects_dependencies() {
        use std::sync::Mutex;
        for policy in [
            ParallelismPolicy::Sequential,
            ParallelismPolicy::Parallel(4),
        ] {
            let (indeg, adj) = diamond();
            let done: Mutex<Vec<usize>> = Mutex::new(Vec::new());
            run_dag::<(), _>(policy, indeg, &adj, &[], |node| {
                let seen = done.lock().unwrap().clone();
                match node {
                    0 => assert!(seen.is_empty()),
                    1 | 2 => assert!(seen.contains(&0)),
                    _ => assert!(seen.contains(&1) && seen.contains(&2)),
                }
                done.lock().unwrap().push(node);
                Ok(NodeVerdict::Continue)
            })
            .unwrap();
            let mut order = done.into_inner().unwrap();
            order.sort();
            assert_eq!(order, vec![0, 1, 2, 3], "every node ran exactly once");
        }
    }

    #[test]
    fn run_dag_sequential_uses_canonical_topo_order() {
        use std::sync::Mutex;
        let (indeg, adj) = diamond();
        let done: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        run_dag::<(), _>(ParallelismPolicy::Sequential, indeg, &adj, &[], |node| {
            done.lock().unwrap().push(node);
            Ok(NodeVerdict::Continue)
        })
        .unwrap();
        assert_eq!(done.into_inner().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn run_dag_skip_successors_prunes_descendants_only() {
        use std::sync::Mutex;
        for policy in [
            ParallelismPolicy::Sequential,
            ParallelismPolicy::Parallel(4),
        ] {
            let (indeg, adj) = diamond();
            let done: Mutex<Vec<usize>> = Mutex::new(Vec::new());
            run_dag::<(), _>(policy, indeg, &adj, &[], |node| {
                done.lock().unwrap().push(node);
                if node == 1 {
                    Ok(NodeVerdict::SkipSuccessors)
                } else {
                    Ok(NodeVerdict::Continue)
                }
            })
            .unwrap();
            let mut order = done.into_inner().unwrap();
            order.sort();
            // Node 3 needs both 1 and 2; 1 failed, so 3 never runs — but the
            // independent sibling 2 still does, whatever the worker count.
            assert_eq!(order, vec![0, 1, 2]);
        }
    }

    #[test]
    fn run_dag_propagates_errors() {
        let (indeg, adj) = diamond();
        let err = run_dag::<String, _>(ParallelismPolicy::Parallel(4), indeg, &adj, &[], |node| {
            if node == 1 {
                Err("boom".to_string())
            } else {
                Ok(NodeVerdict::Continue)
            }
        });
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn run_dag_overlaps_independent_branches() {
        let indeg = vec![0, 1, 1, 1, 1, 4];
        let adj = vec![vec![1, 2, 3, 4], vec![5], vec![5], vec![5], vec![5], vec![]];
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        run_dag::<(), _>(ParallelismPolicy::Parallel(4), indeg, &adj, &[], |_| {
            let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(5));
            in_flight.fetch_sub(1, Ordering::SeqCst);
            Ok(NodeVerdict::Continue)
        })
        .unwrap();
        assert!(
            peak.load(Ordering::SeqCst) > 1,
            "sibling branches never overlapped"
        );
    }

    #[test]
    fn pop_ready_prefers_longest_critical_path() {
        // Priorities: node 2 heads the longest chain, so it pops first even
        // though nodes 0 and 1 were enqueued earlier; ties break low-index.
        let mut ready = vec![0, 1, 2, 3];
        let priority = [1, 3, 5, 3];
        assert_eq!(pop_ready(&mut ready, &priority), Some(2));
        assert_eq!(pop_ready(&mut ready, &priority), Some(1), "tie → low index");
        assert_eq!(pop_ready(&mut ready, &priority), Some(3));
        assert_eq!(pop_ready(&mut ready, &priority), Some(0));
        assert_eq!(pop_ready(&mut ready, &priority), None);
        // Empty priority slice: canonical lowest-index order.
        let mut fifo = vec![2, 0, 1];
        assert_eq!(pop_ready(&mut fifo, &[]), Some(0));
        assert_eq!(pop_ready(&mut fifo, &[]), Some(1));
        assert_eq!(pop_ready(&mut fifo, &[]), Some(2));
    }

    #[test]
    fn run_dag_critical_path_first_dispatch_order() {
        use std::sync::Mutex;
        // Skewed DAG: src → x1 → x2 → x3 (long chain) plus short leaves
        // src → {4, 5}. With 2 workers and critical-path priorities, the
        // chain head x1 must be among the first two nodes dispatched after
        // src (the workers pop the two highest-priority ready nodes);
        // dispatch *completion* order is racy, so only membership is pinned.
        let indeg = vec![0, 1, 1, 1, 1, 1];
        let adj: Vec<Vec<usize>> = vec![vec![1, 4, 5], vec![2], vec![3], vec![], vec![], vec![]];
        let priority = [4u64, 3, 2, 1, 1, 1];
        for _ in 0..16 {
            let order: Mutex<Vec<usize>> = Mutex::new(Vec::new());
            run_dag::<(), _>(
                ParallelismPolicy::Parallel(2),
                indeg.clone(),
                &adj,
                &priority,
                |n| {
                    order.lock().unwrap().push(n);
                    Ok(NodeVerdict::Continue)
                },
            )
            .unwrap();
            let order = order.into_inner().unwrap();
            assert_eq!(order[0], 0, "source first");
            assert!(
                order[1..3].contains(&1),
                "chain head stranded behind short leaves: {order:?}"
            );
            let mut all = order.clone();
            all.sort();
            assert_eq!(all, vec![0, 1, 2, 3, 4, 5], "every node ran once");
        }
    }

    #[test]
    fn run_dag_empty() {
        run_dag::<(), _>(ParallelismPolicy::Parallel(4), Vec::new(), &[], &[], |_| {
            panic!("no nodes to run")
        })
        .unwrap();
    }

    #[test]
    fn really_runs_concurrently() {
        use std::sync::atomic::AtomicUsize;
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let items: Vec<u32> = (0..16).collect();
        map_indexed(ParallelismPolicy::Parallel(4), &items, |_, _| {
            let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(5));
            in_flight.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) > 1, "no overlap observed");
    }
}
