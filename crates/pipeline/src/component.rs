//! The component abstraction (Definitions 1, 3 and 4 of the paper).
//!
//! A component is "any computational unit in the ML pipeline, including
//! datasets, pre-processing methods, and ML models". Each implements
//! [`Component`]: a pure transformation `y = f(x | θ)` over artifacts, with
//! declared input/output schemas for compatibility checking, a semantic
//! version, and a deterministic work estimate for virtual-time accounting.

use crate::artifact::Artifact;
use crate::errors::{PipelineError, Result};
use crate::schema::SchemaId;
use crate::semver::SemVer;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Where a component sits in the pipeline — drives the time-composition
/// accounting of Figs. 6 and 9 (storage vs pre-processing vs model
/// training).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StageKind {
    /// Data ingestion (the dataset component).
    Ingest,
    /// Pre-processing (cleansing, feature extraction, embeddings…).
    PreProcess,
    /// Model training / deep analytics.
    ModelTraining,
}

impl StageKind {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            StageKind::Ingest => "ingest",
            StageKind::PreProcess => "pre-processing",
            StageKind::ModelTraining => "model-training",
        }
    }
}

/// Identity of a component version: `(name, semver)`. This is the key used
/// by search spaces, compatibility LUTs, and history records.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ComponentKey {
    /// Component name, e.g. `feature_extract`.
    pub name: String,
    /// Semantic version.
    pub version: SemVer,
}

impl ComponentKey {
    /// Constructs a key.
    pub fn new(name: &str, version: SemVer) -> ComponentKey {
        ComponentKey {
            name: name.to_string(),
            version,
        }
    }
}

impl fmt::Display for ComponentKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.name, self.version)
    }
}

/// A pipeline component: dataset, pre-processing library, or model library.
///
/// Implementations must be deterministic: the same input artifact must
/// produce the same output artifact (the reuse machinery depends on it).
pub trait Component: Send + Sync {
    /// Component name (stable across versions).
    fn name(&self) -> &str;

    /// Semantic version of this component instance.
    fn version(&self) -> SemVer;

    /// Stage classification for time accounting.
    fn stage(&self) -> StageKind;

    /// Schema this component expects on its input, or `None` for source
    /// (dataset) components.
    fn input_schema(&self) -> Option<SchemaId>;

    /// Schema of the produced output.
    fn output_schema(&self) -> SchemaId;

    /// Executes the transformation. `inputs` is empty for datasets and holds
    /// the predecessors' outputs (in DAG edge order) otherwise.
    fn run(&self, inputs: &[Artifact]) -> Result<Artifact>;

    /// Deterministic work estimate in abstract units for the given inputs;
    /// the executor converts it to virtual time.
    fn work_units(&self, inputs: &[Artifact]) -> u64;

    /// Nanoseconds of virtual time per work unit (stage-specific rates give
    /// heterogeneous costs; default 1 ns/unit).
    fn ns_per_unit(&self) -> u64 {
        1
    }

    /// Key identifying this component version.
    fn key(&self) -> ComponentKey {
        ComponentKey::new(self.name(), self.version())
    }

    /// Validates input schemas (Definition 4): every input artifact must
    /// match the declared expectation.
    fn check_compatibility(&self, inputs: &[Artifact]) -> Result<()> {
        if let Some(expected) = self.input_schema() {
            for (i, a) in inputs.iter().enumerate() {
                if a.schema != expected {
                    return Err(PipelineError::IncompatibleSchema(Box::new(
                        crate::errors::IncompatibleSchemaDetail {
                            component: self.key(),
                            input_index: i,
                            expected,
                            actual: a.schema,
                        },
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Shared handle to a component implementation.
pub type ComponentHandle = Arc<dyn Component>;

/// A library of component versions: the per-component slice of the paper's
/// library repository, from which search spaces draw candidate versions.
#[derive(Default)]
pub struct ComponentFamily {
    versions: Vec<ComponentHandle>,
}

impl ComponentFamily {
    /// Empty family.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a version (rejects duplicates of the same key).
    pub fn register(&mut self, c: ComponentHandle) {
        assert!(
            !self.versions.iter().any(|v| v.key() == c.key()),
            "duplicate component version {}",
            c.key()
        );
        self.versions.push(c);
    }

    /// Finds a specific version.
    pub fn get(&self, key: &ComponentKey) -> Option<ComponentHandle> {
        self.versions.iter().find(|v| &v.key() == key).cloned()
    }

    /// All registered versions.
    pub fn versions(&self) -> &[ComponentHandle] {
        &self.versions
    }

    /// Number of versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True if no versions registered.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Tiny concrete components reused by pipeline/executor tests.

    use super::*;
    use crate::artifact::{ArtifactData, Features, ModelArtifact};
    use crate::schema::Schema;
    use mlcask_ml::metrics::{MetricKind, Score};
    use mlcask_ml::tensor::Matrix;

    /// Source component producing a fixed feature matrix.
    pub struct TestSource {
        pub version: SemVer,
        pub dim: usize,
        pub rows: usize,
    }

    impl Component for TestSource {
        fn name(&self) -> &str {
            "test_source"
        }
        fn version(&self) -> SemVer {
            self.version.clone()
        }
        fn stage(&self) -> StageKind {
            StageKind::Ingest
        }
        fn input_schema(&self) -> Option<SchemaId> {
            None
        }
        fn output_schema(&self) -> SchemaId {
            Schema::FeatureMatrix {
                dim: self.dim,
                n_classes: 2,
            }
            .id()
        }
        fn run(&self, _inputs: &[Artifact]) -> Result<Artifact> {
            let x = Matrix::from_fn(self.rows, self.dim, |r, c| ((r * self.dim + c) % 7) as f32);
            let y = (0..self.rows).map(|r| r % 2).collect();
            Ok(Artifact::new(
                ArtifactData::Features(Features { x, y, n_classes: 2 }),
                self.output_schema(),
            ))
        }
        fn work_units(&self, _inputs: &[Artifact]) -> u64 {
            (self.rows * self.dim) as u64
        }
    }

    /// Pre-processing component that scales features; versions with
    /// different `dim_out` have different output schemas.
    pub struct TestScaler {
        pub version: SemVer,
        pub dim_in: usize,
        pub dim_out: usize,
        pub factor: f32,
    }

    impl Component for TestScaler {
        fn name(&self) -> &str {
            "test_scaler"
        }
        fn version(&self) -> SemVer {
            self.version.clone()
        }
        fn stage(&self) -> StageKind {
            StageKind::PreProcess
        }
        fn input_schema(&self) -> Option<SchemaId> {
            Some(
                Schema::FeatureMatrix {
                    dim: self.dim_in,
                    n_classes: 2,
                }
                .id(),
            )
        }
        fn output_schema(&self) -> SchemaId {
            Schema::FeatureMatrix {
                dim: self.dim_out,
                n_classes: 2,
            }
            .id()
        }
        fn run(&self, inputs: &[Artifact]) -> Result<Artifact> {
            self.check_compatibility(inputs)?;
            let ArtifactData::Features(f) = &inputs[0].data else {
                return Err(PipelineError::WrongArtifactKind {
                    component: self.key(),
                    expected: "features",
                    actual: inputs[0].data.kind_label(),
                });
            };
            let x = Matrix::from_fn(f.x.rows(), self.dim_out, |r, c| {
                if c < f.x.cols() {
                    f.x.get(r, c) * self.factor
                } else {
                    0.0
                }
            });
            Ok(Artifact::new(
                ArtifactData::Features(Features {
                    x,
                    y: f.y.clone(),
                    n_classes: f.n_classes,
                }),
                self.output_schema(),
            ))
        }
        fn work_units(&self, inputs: &[Artifact]) -> u64 {
            inputs.first().map(|a| a.byte_len()).unwrap_or(1)
        }
    }

    /// Pre-processing branch with a configurable slot name, so non-chain
    /// DAG tests can bind several independent branches of one diamond.
    pub struct TestBranch {
        pub name: &'static str,
        pub version: SemVer,
        pub dim: usize,
        pub factor: f32,
        /// Extra work spin (deterministic) so branch overlap is measurable.
        pub spin: u32,
    }

    impl Component for TestBranch {
        fn name(&self) -> &str {
            self.name
        }
        fn version(&self) -> SemVer {
            self.version.clone()
        }
        fn stage(&self) -> StageKind {
            StageKind::PreProcess
        }
        fn input_schema(&self) -> Option<SchemaId> {
            Some(
                Schema::FeatureMatrix {
                    dim: self.dim,
                    n_classes: 2,
                }
                .id(),
            )
        }
        fn output_schema(&self) -> SchemaId {
            self.input_schema().expect("branch has an input schema")
        }
        fn run(&self, inputs: &[Artifact]) -> Result<Artifact> {
            self.check_compatibility(inputs)?;
            let ArtifactData::Features(f) = &inputs[0].data else {
                return Err(PipelineError::WrongArtifactKind {
                    component: self.key(),
                    expected: "features",
                    actual: inputs[0].data.kind_label(),
                });
            };
            let mut factor = self.factor;
            for _ in 0..self.spin {
                factor = (factor * 1.0000001).min(1e6);
            }
            let x = Matrix::from_fn(f.x.rows(), self.dim, |r, c| f.x.get(r, c) * factor);
            Ok(Artifact::new(
                ArtifactData::Features(Features {
                    x,
                    y: f.y.clone(),
                    n_classes: f.n_classes,
                }),
                self.output_schema(),
            ))
        }
        fn work_units(&self, inputs: &[Artifact]) -> u64 {
            inputs.first().map(|a| a.byte_len()).unwrap_or(1)
        }
    }

    /// Fan-in component averaging equal-schema branch outputs, for
    /// diamond/fan-in DAG tests. `dim_out != dim_in` models a schema
    /// change.
    pub struct TestJoin {
        pub version: SemVer,
        pub dim_in: usize,
        pub dim_out: usize,
    }

    impl Component for TestJoin {
        fn name(&self) -> &str {
            "test_join"
        }
        fn version(&self) -> SemVer {
            self.version.clone()
        }
        fn stage(&self) -> StageKind {
            StageKind::PreProcess
        }
        fn input_schema(&self) -> Option<SchemaId> {
            Some(
                Schema::FeatureMatrix {
                    dim: self.dim_in,
                    n_classes: 2,
                }
                .id(),
            )
        }
        fn output_schema(&self) -> SchemaId {
            Schema::FeatureMatrix {
                dim: self.dim_out,
                n_classes: 2,
            }
            .id()
        }
        fn run(&self, inputs: &[Artifact]) -> Result<Artifact> {
            self.check_compatibility(inputs)?;
            let features: Vec<&Features> = inputs
                .iter()
                .map(|a| match &a.data {
                    ArtifactData::Features(f) => Ok(f),
                    other => Err(PipelineError::WrongArtifactKind {
                        component: self.key(),
                        expected: "features",
                        actual: other.kind_label(),
                    }),
                })
                .collect::<Result<_>>()?;
            let first = features.first().expect("join has at least one input");
            let x = Matrix::from_fn(first.x.rows(), self.dim_out, |r, c| {
                if c < self.dim_in {
                    features.iter().map(|f| f.x.get(r, c)).sum::<f32>() / features.len() as f32
                } else {
                    0.0
                }
            });
            Ok(Artifact::new(
                ArtifactData::Features(Features {
                    x,
                    y: first.y.clone(),
                    n_classes: first.n_classes,
                }),
                self.output_schema(),
            ))
        }
        fn work_units(&self, inputs: &[Artifact]) -> u64 {
            inputs.iter().map(|a| a.byte_len()).sum::<u64>().max(1)
        }
    }

    /// Terminal "model" that scores higher for larger scale factors.
    pub struct TestModel {
        pub version: SemVer,
        pub dim_in: usize,
        pub quality: f64,
    }

    impl Component for TestModel {
        fn name(&self) -> &str {
            "test_model"
        }
        fn version(&self) -> SemVer {
            self.version.clone()
        }
        fn stage(&self) -> StageKind {
            StageKind::ModelTraining
        }
        fn input_schema(&self) -> Option<SchemaId> {
            Some(
                Schema::FeatureMatrix {
                    dim: self.dim_in,
                    n_classes: 2,
                }
                .id(),
            )
        }
        fn output_schema(&self) -> SchemaId {
            Schema::Model {
                family: "test".into(),
            }
            .id()
        }
        fn run(&self, inputs: &[Artifact]) -> Result<Artifact> {
            self.check_compatibility(inputs)?;
            let ArtifactData::Features(f) = &inputs[0].data else {
                return Err(PipelineError::WrongArtifactKind {
                    component: self.key(),
                    expected: "features",
                    actual: inputs[0].data.kind_label(),
                });
            };
            // Score depends on the input (mean magnitude) and model quality,
            // so different upstream versions yield different scores.
            let mean = f.x.as_slice().iter().map(|v| v.abs() as f64).sum::<f64>()
                / (f.x.as_slice().len().max(1) as f64);
            let raw = (self.quality + mean / (1.0 + mean)).min(1.0);
            Ok(Artifact::new(
                ArtifactData::Model(ModelArtifact {
                    family: "test".into(),
                    blob: vec![0u8; 64],
                    score: Score::new(MetricKind::Accuracy, raw),
                }),
                self.output_schema(),
            ))
        }
        fn work_units(&self, inputs: &[Artifact]) -> u64 {
            inputs.first().map(|a| a.byte_len() * 4).unwrap_or(1)
        }
        fn ns_per_unit(&self) -> u64 {
            8
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    #[test]
    fn stage_labels() {
        assert_eq!(StageKind::Ingest.label(), "ingest");
        assert_eq!(StageKind::PreProcess.label(), "pre-processing");
        assert_eq!(StageKind::ModelTraining.label(), "model-training");
    }

    #[test]
    fn component_key_display_matches_paper_notation() {
        let k = ComponentKey::new("feature_extract", SemVer::master(0, 1));
        assert_eq!(k.to_string(), "<feature_extract, 0.1>");
        let k2 = ComponentKey::new("cnn", SemVer::on_branch("dev", 1, 0));
        assert_eq!(k2.to_string(), "<cnn, dev@1.0>");
    }

    #[test]
    fn source_runs_without_inputs() {
        let s = TestSource {
            version: SemVer::initial(),
            dim: 3,
            rows: 4,
        };
        let a = s.run(&[]).unwrap();
        assert_eq!(a.schema, s.output_schema());
        assert!(s.input_schema().is_none());
        assert!(s.work_units(&[]) > 0);
    }

    #[test]
    fn compatibility_check_rejects_wrong_schema() {
        let s = TestSource {
            version: SemVer::initial(),
            dim: 3,
            rows: 4,
        };
        let out = s.run(&[]).unwrap();
        // Scaler expecting dim 5 must reject dim-3 input.
        let bad = TestScaler {
            version: SemVer::initial(),
            dim_in: 5,
            dim_out: 5,
            factor: 1.0,
        };
        let err = bad.run(std::slice::from_ref(&out)).unwrap_err();
        assert!(matches!(err, PipelineError::IncompatibleSchema(_)));
        // Matching scaler passes.
        let good = TestScaler {
            version: SemVer::initial(),
            dim_in: 3,
            dim_out: 3,
            factor: 2.0,
        };
        assert!(good.run(std::slice::from_ref(&out)).is_ok());
    }

    #[test]
    fn chain_produces_scored_model() {
        let src = TestSource {
            version: SemVer::initial(),
            dim: 3,
            rows: 4,
        };
        let scaler = TestScaler {
            version: SemVer::initial(),
            dim_in: 3,
            dim_out: 3,
            factor: 2.0,
        };
        let model = TestModel {
            version: SemVer::initial(),
            dim_in: 3,
            quality: 0.1,
        };
        let a = src.run(&[]).unwrap();
        let b = scaler.run(std::slice::from_ref(&a)).unwrap();
        let c = model.run(std::slice::from_ref(&b)).unwrap();
        assert!(c.score().is_some());
        assert!(c.score().unwrap().value > 0.0);
    }

    #[test]
    fn family_register_and_lookup() {
        let mut fam = ComponentFamily::new();
        assert!(fam.is_empty());
        fam.register(Arc::new(TestModel {
            version: SemVer::master(0, 0),
            dim_in: 3,
            quality: 0.1,
        }));
        fam.register(Arc::new(TestModel {
            version: SemVer::master(0, 1),
            dim_in: 3,
            quality: 0.2,
        }));
        assert_eq!(fam.len(), 2);
        let key = ComponentKey::new("test_model", SemVer::master(0, 1));
        assert!(fam.get(&key).is_some());
        let missing = ComponentKey::new("test_model", SemVer::master(9, 9));
        assert!(fam.get(&missing).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate component version")]
    fn family_rejects_duplicates() {
        let mut fam = ComponentFamily::new();
        for _ in 0..2 {
            fam.register(Arc::new(TestModel {
                version: SemVer::master(0, 0),
                dim_in: 3,
                quality: 0.1,
            }));
        }
    }
}
