//! Metafiles — the serialisable descriptions of datasets, libraries, and
//! pipelines (§III).
//!
//! * A **dataset** has a mandatory metafile describing the encapsulation of
//!   data (plus optional data files).
//! * A **library** metafile records the entry point, inputs/outputs, and
//!   essential hyperparameters; schema updates are "explicitly indicated by
//!   the library developer in the library metafile" (§IV-B).
//! * A **pipeline** metafile records the entry point and component order;
//!   once fully processed, component-output references are logged into it.

use crate::component::{ComponentKey, StageKind};
use crate::schema::{Schema, SchemaId};
use crate::semver::SemVer;
use mlcask_ml::metrics::Score;
use mlcask_storage::object::ObjectRef;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Dataset repository entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetMetafile {
    /// Dataset name.
    pub name: String,
    /// Dataset version (schema derives from the data itself via the schema
    /// hash function).
    pub version: SemVer,
    /// Declared schema of the encapsulated data.
    pub schema: Schema,
    /// Reference to the stored data payload.
    pub data: ObjectRef,
    /// Free-form description (e.g. retrieval query or file provenance).
    pub description: String,
}

impl DatasetMetafile {
    /// The compatibility-relevant schema id.
    pub fn schema_id(&self) -> SchemaId {
        self.schema.id()
    }
}

/// Library repository entry (pre-processing method or model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LibraryMetafile {
    /// Library name.
    pub name: String,
    /// Semantic version; `schema` bumps indicate output-schema changes.
    pub version: SemVer,
    /// Stage classification.
    pub stage: StageKind,
    /// Entry point of the executable.
    pub entry_point: String,
    /// Declared input schema (None for source libraries).
    pub input_schema: Option<SchemaId>,
    /// Declared output schema.
    pub output_schema: SchemaId,
    /// Essential hyperparameters (stringified for stability).
    pub hyperparams: BTreeMap<String, String>,
    /// Reference to the stored executable payload.
    pub executable: ObjectRef,
}

impl LibraryMetafile {
    /// The identity key of this library version.
    pub fn key(&self) -> ComponentKey {
        ComponentKey::new(&self.name, self.version.clone())
    }
}

/// One slot of a pipeline metafile: which component version filled it and
/// where its archived output lives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineSlot {
    /// Component version bound to this slot.
    pub component: ComponentKey,
    /// Archived output of this component in this pipeline run (null ref if
    /// the run failed before reaching it).
    pub output: ObjectRef,
    /// Content id of the output artifact (reuse key).
    pub artifact_id: mlcask_storage::hash::Hash256,
}

/// Pipeline repository entry: a fully described pipeline version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineMetafile {
    /// Pipeline name (e.g. `readmission`).
    pub name: String,
    /// Version label `branch.seq` (e.g. `master.0`).
    pub label: String,
    /// Slots in pipeline slot order (DAG node order) with their bound
    /// versions and outputs.
    pub slots: Vec<PipelineSlot>,
    /// Data-flow edges by slot name — the full DAG shape, not just a chain.
    pub edges: Vec<(String, String)>,
    /// Final metric score of the run that produced this version.
    pub score: Option<Score>,
}

impl PipelineMetafile {
    /// The component version bound to `name`, if present.
    pub fn component_version(&self, name: &str) -> Option<&ComponentKey> {
        self.slots
            .iter()
            .map(|s| &s.component)
            .find(|k| k.name == name)
    }

    /// All component keys in slot order.
    pub fn component_keys(&self) -> Vec<ComponentKey> {
        self.slots.iter().map(|s| s.component.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcask_ml::metrics::MetricKind;
    use mlcask_storage::hash::Hash256;
    use mlcask_storage::object::ObjectKind;

    fn obj() -> ObjectRef {
        ObjectRef {
            id: Hash256::of(b"payload"),
            kind: ObjectKind::Output,
            len: 7,
        }
    }

    #[test]
    fn dataset_metafile_round_trip() {
        let m = DatasetMetafile {
            name: "ehr".into(),
            version: SemVer::initial(),
            schema: Schema::relational(&["age", "dx"]),
            data: obj(),
            description: "synthetic admissions".into(),
        };
        let json = serde_json::to_string_pretty(&m).unwrap();
        let back: DatasetMetafile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.schema_id(), m.schema.id());
    }

    #[test]
    fn library_metafile_key() {
        let m = LibraryMetafile {
            name: "feature_extract".into(),
            version: SemVer::master(1, 0),
            stage: StageKind::PreProcess,
            entry_point: "extract.main".into(),
            input_schema: Some(Schema::relational(&["age"]).id()),
            output_schema: Schema::FeatureMatrix {
                dim: 8,
                n_classes: 2,
            }
            .id(),
            hyperparams: BTreeMap::from([("top_k".into(), "8".into())]),
            executable: obj(),
        };
        assert_eq!(m.key().to_string(), "<feature_extract, 1.0>");
        let json = serde_json::to_string(&m).unwrap();
        let back: LibraryMetafile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pipeline_metafile_lookup() {
        let m = PipelineMetafile {
            name: "readmission".into(),
            label: "master.2".into(),
            slots: vec![
                PipelineSlot {
                    component: ComponentKey::new("dataset", SemVer::master(0, 0)),
                    output: obj(),
                    artifact_id: Hash256::of(b"a0"),
                },
                PipelineSlot {
                    component: ComponentKey::new("cnn", SemVer::master(0, 3)),
                    output: obj(),
                    artifact_id: Hash256::of(b"a1"),
                },
            ],
            edges: vec![("dataset".into(), "cnn".into())],
            score: Some(Score::new(MetricKind::Accuracy, 0.9)),
        };
        assert_eq!(
            m.component_version("cnn").unwrap().version,
            SemVer::master(0, 3)
        );
        assert!(m.component_version("absent").is_none());
        assert_eq!(m.component_keys().len(), 2);
        let back: PipelineMetafile =
            serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        assert_eq!(back, m);
    }
}
