//! Pipeline executor: runs bound pipelines, persists outputs, reuses
//! checkpointed results, and accounts virtual time per stage.
//!
//! The executor implements the mechanics every system in the evaluation
//! shares; the *policies* differ per system and are expressed through
//! [`ExecOptions`]:
//!
//! * `reuse` — consult an [`OutputCache`] before running a component
//!   (MLCask and MLflow do; ModelDB does not).
//! * `precheck` — statically verify schema compatibility before running
//!   anything (MLCask does; the baselines discover incompatibility only
//!   when the failing component executes).
//! * `persist_outputs` — archive every component output (all systems do,
//!   into different storage backends/cost models).
//! * `parallelism` — fan independent DAG nodes of one pipeline out onto a
//!   worker pool (wavefront scheduling). Chains execute sequentially; any
//!   pipeline with parallel width takes the two-phase traced-execute +
//!   canonical-replay path, whose observables are byte-identical to
//!   sequential execution (see [`crate::replay`]).

use crate::artifact::Artifact;
use crate::clock::ClockLedger;
use crate::component::{ComponentKey, StageKind};
use crate::dag::BoundPipeline;
use crate::errors::{PipelineError, Result};
use crate::parallel::{run_dag, NodeVerdict, ParallelismPolicy, ShardedMap};
use crate::provenance::{Claim, ClaimGuard, FrontierCut, GateOutcome, Incremental};
use crate::replay::{replay_run, CacheSnapshot, ProfileBook, StageProfile};
use crate::resume::ResumeCtx;
use crate::schema::SchemaId;
use mlcask_ml::metrics::Score;
use mlcask_storage::hash::Hash256;
use mlcask_storage::object::{ObjectKind, ObjectRef};
use mlcask_storage::store::ChunkStore;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Key identifying "this component version applied to these exact inputs".
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheKey {
    /// Component version.
    pub component: ComponentKey,
    /// Content ids of the input artifacts, in edge order.
    pub inputs: Vec<Hash256>,
}

/// A checkpointed component output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedOutput {
    /// Where the artifact bytes live.
    pub object: ObjectRef,
    /// Content id of the artifact.
    pub artifact_id: Hash256,
    /// Schema of the artifact.
    pub schema: SchemaId,
    /// Score if the artifact was a trained model.
    pub score: Option<Score>,
}

/// Reusable-output index consulted by the executor.
pub trait OutputCache: Send + Sync {
    /// Looks up a checkpoint.
    fn lookup(&self, key: &CacheKey) -> Option<CachedOutput>;
    /// Records a checkpoint.
    fn insert(&self, key: CacheKey, value: CachedOutput);
}

/// Sharded in-memory [`OutputCache`] safe for concurrent pipeline runs:
/// independent shard locks keep parallel executors from serializing on one
/// cache-wide lock.
#[derive(Default)]
pub struct MemoryCache {
    map: ShardedMap<CacheKey, CachedOutput>,
}

impl MemoryCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of checkpoints.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no checkpoints recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl OutputCache for MemoryCache {
    fn lookup(&self, key: &CacheKey) -> Option<CachedOutput> {
        self.map.get(key)
    }

    fn insert(&self, key: CacheKey, value: CachedOutput) {
        self.map.insert(key, value);
    }
}

/// Execution policy knobs distinguishing MLCask from the baselines.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Consult the output cache and skip already-executed components.
    pub reuse: bool,
    /// Statically verify schema compatibility before executing anything.
    pub precheck: bool,
    /// Archive component outputs to the store.
    pub persist_outputs: bool,
    /// Worker-pool size, applied at two levels: engines that evaluate many
    /// *candidate pipelines* fan candidates out across workers, and a
    /// single [`Executor::run`] over a non-chain DAG fans its *independent
    /// nodes* out (wavefront scheduling). Reports are byte-identical for
    /// every worker count; see [`crate::replay`].
    pub parallelism: ParallelismPolicy,
}

impl ExecOptions {
    /// MLCask policy: reuse + precheck + persist.
    pub const MLCASK: ExecOptions = ExecOptions {
        reuse: true,
        precheck: true,
        persist_outputs: true,
        parallelism: ParallelismPolicy::Sequential,
    };

    /// MLflow-like policy: reuse, no precheck.
    pub const REUSE_ONLY: ExecOptions = ExecOptions {
        reuse: true,
        precheck: false,
        persist_outputs: true,
        parallelism: ParallelismPolicy::Sequential,
    };

    /// ModelDB-like policy: no reuse, no precheck.
    pub const RERUN_ALL: ExecOptions = ExecOptions {
        reuse: false,
        precheck: false,
        persist_outputs: true,
        parallelism: ParallelismPolicy::Sequential,
    };

    /// The same policy with a different candidate-evaluation pool size.
    pub fn with_parallelism(mut self, parallelism: ParallelismPolicy) -> ExecOptions {
        self.parallelism = parallelism;
        self
    }
}

/// Per-stage record of one pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageReport {
    /// Which component version ran (or was reused).
    pub component: ComponentKey,
    /// Stage classification.
    pub stage: StageKind,
    /// True if the output came from the cache without execution.
    pub reused: bool,
    /// Virtual execution time charged.
    pub exec_ns: u64,
    /// Virtual storage time charged (writes + any materialising reads).
    pub storage_ns: u64,
    /// Archived output (null ref when persistence is off).
    pub output: ObjectRef,
    /// Content id of the output artifact.
    pub artifact_id: Hash256,
    /// Logical size of the output artifact in bytes (independent of the
    /// persistence policy — used by archive-accounting harnesses).
    pub artifact_bytes: u64,
}

/// Outcome of a pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RunOutcome {
    /// All stages completed; final model score attached.
    Completed {
        /// Score of the sink model artifact.
        score: Score,
    },
    /// A stage failed (the baselines' mid-run compatibility error).
    Failed {
        /// Component that failed.
        at: ComponentKey,
        /// Human-readable reason.
        reason: String,
    },
    /// MLCask's precheck refused to run a doomed pipeline.
    RejectedByPrecheck {
        /// Component whose input would be incompatible.
        at: ComponentKey,
    },
}

impl RunOutcome {
    /// The score if the run completed.
    pub fn score(&self) -> Option<Score> {
        match self {
            RunOutcome::Completed { score } => Some(*score),
            _ => None,
        }
    }

    /// True if the run completed successfully.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed { .. })
    }
}

/// Full report of one pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Per-stage details in topological order (possibly truncated on
    /// failure).
    pub stages: Vec<StageReport>,
    /// Final outcome.
    pub outcome: RunOutcome,
}

impl RunReport {
    /// Count of stages that actually executed (not reused).
    pub fn executed_count(&self) -> usize {
        self.stages.iter().filter(|s| !s.reused).count()
    }

    /// Count of stages satisfied from the cache.
    pub fn reused_count(&self) -> usize {
        self.stages.iter().filter(|s| s.reused).count()
    }
}

/// Runs bound pipelines against a [`ChunkStore`], implementing checkpoint
/// reuse, output archiving, virtual-time accounting, and (for non-chain
/// DAGs under a parallel [`ParallelismPolicy`]) wavefront execution of
/// independent nodes. Stateless apart from the store reference — cheap to
/// construct per run and safe to share across threads.
pub struct Executor<'s> {
    store: &'s ChunkStore,
}

/// Per-node output during execution: always the metadata, lazily the bytes.
struct NodeOutput {
    cached: CachedOutput,
    in_memory: Option<Artifact>,
}

/// Phase-1 state of one completed wavefront node.
struct WaveSlot {
    key: CacheKey,
    cached: CachedOutput,
    /// In-memory output; `None` for cache hits until a successor
    /// materialises them from the store. Shared so sibling consumers can
    /// deep-copy it outside the slot lock.
    artifact: Option<std::sync::Arc<Artifact>>,
}

/// Everything phase 1 of a wavefront execution leaves behind for the
/// canonical accounting replay.
struct WavefrontRun {
    /// Per-node results, indexed by node id; `None` for nodes never reached
    /// (at or beyond a failure frontier).
    slots: Vec<Mutex<Option<WaveSlot>>>,
    /// Checkpoints that already existed in the lookup cache before this run
    /// — the `pre` state the replay's reuse simulation consults.
    pre: CacheSnapshot,
    /// True if any node failed (statically predicted or observed live).
    failed: bool,
    /// Nodes the incremental frontier cut never scheduled (0 without an
    /// [`Incremental`] context).
    skipped_by_frontier: usize,
}

/// Outcome of one traced (phase-1) evaluation.
#[derive(Debug, Clone, Copy)]
pub struct TracedOutcome {
    /// Final model score in canonical topological order; `None` when the
    /// pipeline failed or was rejected by precheck.
    pub score: Option<Score>,
    /// Nodes the incremental fast path statically cut at the cached
    /// provenance frontier — never scheduled, yet still charged as reused
    /// by the accounting replay. Always 0 for non-incremental runs.
    pub skipped_by_frontier: usize,
}

/// First node in canonical topological order whose declared input schema is
/// incompatible with a predecessor's declared output schema — the node at
/// which a sequential run of a schema-honest pipeline fails.
///
/// The wavefront scheduler stops short of this frontier so a parallel run
/// executes (and persists) exactly the node set a sequential run would,
/// keeping even the physical store contents identical across worker counts.
/// Components whose run-time behaviour contradicts their declared schemas
/// fail past this prediction; those are handled dynamically (see
/// [`Executor::run_traced_with`]) with a weaker guarantee: all observables
/// stay deterministic, but nodes independent of the failure may execute
/// that a sequential run would have skipped.
fn static_failure_node(pipeline: &BoundPipeline, order: &[usize]) -> Option<usize> {
    order
        .iter()
        .copied()
        .find(|&node| match pipeline.components[node].input_schema() {
            None => false,
            Some(expected) => pipeline
                .dag
                .pre(node)
                .iter()
                .any(|&p| pipeline.components[p].output_schema() != expected),
        })
}

impl<'s> Executor<'s> {
    /// Creates an executor over a store.
    pub fn new(store: &'s ChunkStore) -> Self {
        Executor { store }
    }

    /// Runs a bound pipeline under the given policy, charging `ledger`.
    ///
    /// The ledger is taken by shared reference — charging is atomic — so
    /// many executor runs may account concurrently, each into its own
    /// per-run ledger (or all into one shared ledger when per-candidate
    /// attribution is not needed).
    ///
    /// Infrastructure failures (storage faults, malformed DAGs) surface as
    /// `Err`; *expected* failures (schema incompatibility discovered mid-run)
    /// are reported in [`RunOutcome`] so callers can account for the time the
    /// failed run consumed — exactly what Fig. 5's last iteration measures.
    ///
    /// When `options.parallelism` grants more than one worker and the DAG
    /// has independent branches ([`crate::dag::PipelineDag::max_width`]
    /// `> 1`), execution switches to the two-phase wavefront path: nodes run
    /// concurrently for their results, then the accounting is replayed in
    /// canonical topological order, so the report, ledger charges, store
    /// statistics, and cache side-state are byte-identical to a sequential
    /// run (see [`crate::replay`]). One caveat applies to components whose
    /// `run` fails with a schema error *despite compatible declared schemas*
    /// (a contract violation the static failure frontier cannot predict):
    /// all of the above observables remain byte-identical, but sibling
    /// nodes that a sequential run would not have reached may persist
    /// orphan blobs, so the backend's raw physical bytes can exceed a
    /// sequential run's.
    pub fn run(
        &self,
        pipeline: &BoundPipeline,
        ledger: &ClockLedger,
        cache: Option<&dyn OutputCache>,
        options: ExecOptions,
    ) -> Result<RunReport> {
        // The wavefront path needs write traces, which exist only when
        // outputs are persisted; chains have no exploitable width.
        if options.parallelism.workers() > 1
            && options.persist_outputs
            && pipeline.dag.max_width() > 1
        {
            return self.run_wavefront(pipeline, ledger, cache, options, None);
        }
        self.run_sequential(pipeline, ledger, cache, options)
    }

    /// [`Executor::run`] with crash recovery: completed component
    /// executions adopted from `resume.snapshot` skip re-execution (their
    /// journaled profiles feed the accounting replay verbatim), and newly
    /// completed executions are appended to `resume.journal`, so a later
    /// attempt resumes from the last completed operation instead of
    /// re-running the whole DAG.
    ///
    /// Always takes the two-phase traced-execute + canonical-replay path
    /// (any worker count, chains included): the replay charges adopted and
    /// re-executed nodes identically in canonical topological order, which
    /// is what makes a resumed run's report, ledger, store statistics, and
    /// tenant accounting byte-identical to an uninterrupted run — see
    /// [`crate::resume`] for the recovery protocol and
    /// `tests/crash_recovery.rs` for the kill-at-every-write matrix.
    ///
    /// Requires `options.persist_outputs`: recovery validates journal
    /// entries against persisted blobs, so there is nothing to resume from
    /// without them.
    pub fn run_resumable(
        &self,
        pipeline: &BoundPipeline,
        ledger: &ClockLedger,
        cache: Option<&dyn OutputCache>,
        options: ExecOptions,
        resume: &ResumeCtx<'_>,
    ) -> Result<RunReport> {
        if !options.persist_outputs {
            return Err(PipelineError::InvalidDag(
                "run_resumable requires persist_outputs (recovery validates journaled \
                 operations against persisted blobs)"
                    .into(),
            ));
        }
        self.run_wavefront(pipeline, ledger, cache, options, Some(resume))
    }

    /// The classic strictly-sequential execution path: one node at a time in
    /// canonical topological order, charging `ledger` as it goes.
    fn run_sequential(
        &self,
        pipeline: &BoundPipeline,
        ledger: &ClockLedger,
        cache: Option<&dyn OutputCache>,
        options: ExecOptions,
    ) -> Result<RunReport> {
        let order = pipeline.dag.topo_order()?;
        let mut stages: Vec<StageReport> = Vec::with_capacity(order.len());

        if options.precheck {
            if let Err(PipelineError::IncompatibleSchema(detail)) =
                pipeline.precheck_compatibility()
            {
                // Rejected before any execution: zero time charged.
                return Ok(RunReport {
                    stages,
                    outcome: RunOutcome::RejectedByPrecheck {
                        at: detail.component,
                    },
                });
            }
        }

        let mut outputs: HashMap<usize, NodeOutput> = HashMap::new();
        let mut final_score: Option<Score> = None;

        for node in order {
            let comp = &pipeline.components[node];
            let preds = pipeline.dag.pre(node);
            let input_ids: Vec<Hash256> = preds
                .iter()
                .map(|p| outputs[p].cached.artifact_id)
                .collect();
            let key = CacheKey {
                component: comp.key(),
                inputs: input_ids,
            };

            // Reuse path: checkpoint hit costs nothing to "run".
            if options.reuse {
                if let Some(hit) = cache.and_then(|c| c.lookup(&key)) {
                    stages.push(StageReport {
                        component: comp.key(),
                        stage: comp.stage(),
                        reused: true,
                        exec_ns: 0,
                        storage_ns: 0,
                        output: hit.object,
                        artifact_id: hit.artifact_id,
                        artifact_bytes: hit.object.len,
                    });
                    if let Some(s) = hit.score {
                        final_score = Some(s);
                    }
                    outputs.insert(
                        node,
                        NodeOutput {
                            cached: hit,
                            in_memory: None,
                        },
                    );
                    continue;
                }
            }

            // Materialise inputs that only exist as checkpoints.
            let mut input_artifacts: Vec<Artifact> = Vec::with_capacity(preds.len());
            let mut materialise_ns: u64 = 0;
            for p in &preds {
                let out = outputs.get_mut(p).expect("topological order");
                if out.in_memory.is_none() {
                    if out.cached.object.is_null() {
                        return Err(PipelineError::Storage(
                            mlcask_storage::errors::StorageError::NotFound(out.cached.artifact_id),
                        ));
                    }
                    let bytes = self.store.get_blob(&out.cached.object)?;
                    materialise_ns += self.store.read_cost(&out.cached.object).as_nanos() as u64;
                    let artifact = Artifact::from_bytes(&bytes).map_err(|e| {
                        PipelineError::Storage(mlcask_storage::errors::StorageError::Codec(
                            e.to_string(),
                        ))
                    })?;
                    out.in_memory = Some(artifact);
                }
                input_artifacts.push(out.in_memory.clone().expect("just materialised"));
            }
            if materialise_ns > 0 {
                ledger.charge_storage(Duration::from_nanos(materialise_ns));
            }

            // Execute.
            let work = comp.work_units(&input_artifacts);
            let exec_ns = work.saturating_mul(comp.ns_per_unit());
            match comp.run(&input_artifacts) {
                Ok(artifact) => {
                    ledger.charge_exec(comp.stage(), Duration::from_nanos(exec_ns));
                    let artifact_id = artifact.content_id();
                    let score = artifact.score();
                    if let Some(s) = score {
                        final_score = Some(s);
                    }
                    let (object, storage_ns) = if options.persist_outputs {
                        let kind = match comp.stage() {
                            StageKind::ModelTraining => ObjectKind::Model,
                            _ => ObjectKind::Output,
                        };
                        let put = self.store.put_blob(kind, &artifact.to_bytes())?;
                        ledger.charge_storage(put.cost);
                        (put.object, put.cost.as_nanos() as u64)
                    } else {
                        (ObjectRef::null(ObjectKind::Output), 0)
                    };
                    let cached = CachedOutput {
                        object,
                        artifact_id,
                        schema: artifact.schema,
                        score,
                    };
                    if let Some(c) = cache {
                        c.insert(key, cached.clone());
                    }
                    stages.push(StageReport {
                        component: comp.key(),
                        stage: comp.stage(),
                        reused: false,
                        exec_ns,
                        storage_ns: storage_ns + materialise_ns,
                        output: cached.object,
                        artifact_id,
                        artifact_bytes: artifact.byte_len(),
                    });
                    outputs.insert(
                        node,
                        NodeOutput {
                            cached,
                            in_memory: Some(artifact),
                        },
                    );
                }
                Err(PipelineError::IncompatibleSchema(detail)) => {
                    // The failing component still consumed its execution
                    // attempt time up to the failure point (the baselines
                    // "run the pipeline until the compatibility error
                    // occurs"); prior stages' costs are already charged.
                    let at = detail.component.clone();
                    return Ok(RunReport {
                        stages,
                        outcome: RunOutcome::Failed {
                            reason: format!("schema incompatibility at {at}"),
                            at,
                        },
                    });
                }
                Err(e) => return Err(e),
            }
        }

        match final_score {
            Some(score) => Ok(RunReport {
                stages,
                outcome: RunOutcome::Completed { score },
            }),
            None => Err(PipelineError::NoScore),
        }
    }

    /// Runs a bound pipeline for its *results only*, recording execution
    /// profiles into `book` instead of charging a ledger or store stats.
    ///
    /// This is phase 1 of the parallel evaluation protocol (see
    /// [`crate::replay`]): many traced runs may execute concurrently against
    /// a shared concurrent `cache`, deduplicating work across candidates;
    /// the deterministic accounting happens afterwards via
    /// [`crate::replay::replay_run`] in canonical candidate order.
    ///
    /// Nodes of this pipeline execute sequentially; use
    /// [`Executor::run_traced_with`] to also fan independent DAG nodes out
    /// on a worker pool.
    pub fn run_traced(
        &self,
        pipeline: &BoundPipeline,
        cache: &dyn OutputCache,
        book: &ProfileBook,
        precheck: bool,
    ) -> Result<Option<Score>> {
        self.run_traced_with(
            pipeline,
            cache,
            book,
            precheck,
            ParallelismPolicy::Sequential,
        )
    }

    /// [`Executor::run_traced`] with DAG-internal parallelism: independent
    /// nodes of *this* pipeline execute concurrently on `policy`'s workers
    /// (the wavefront scheduler), composing with the engines' candidate- and
    /// trial-level fan-out via [`ParallelismPolicy::split`].
    ///
    /// Outputs are always persisted (the replay needs write traces).
    /// `precheck` must match the policy the accounting replay will use, so
    /// a prechecking policy leaves no phase-1 side-state for rejected
    /// pipelines — exactly like the sequential executor.
    ///
    /// Returns the final model score, or `None` when the pipeline failed
    /// (adaptive searchers need the score before accounting runs). Failures
    /// are anticipated by a static walk over declared schemas (the failure
    /// frontier), so the executed node set — and hence all recorded
    /// side-state — is the same for every worker count.
    pub fn run_traced_with(
        &self,
        pipeline: &BoundPipeline,
        cache: &dyn OutputCache,
        book: &ProfileBook,
        precheck: bool,
        policy: ParallelismPolicy,
    ) -> Result<Option<Score>> {
        self.run_traced_incremental(pipeline, cache, book, precheck, policy, None)
            .map(|outcome| outcome.score)
    }

    /// [`Executor::run_traced_with`] with an optional incremental context
    /// (see [`crate::provenance`]): the pipeline is fingerprinted, cut at
    /// the deepest frontier cached in `inc.snapshot`, and only the dirty
    /// region is scheduled; `inc.gate` additionally hoists prefixes shared
    /// with concurrent evaluations so each executes once per search.
    ///
    /// The accounting replay still charges frontier-skipped nodes as
    /// *reused* in canonical topological order — their `CacheKey`s resolve
    /// against the paired history snapshot (the provenance pairing
    /// invariant) — so reports, ledgers, and tenant accounting stay
    /// byte-identical to a full re-evaluation at any worker count. `cache`
    /// doubles as phase-1 lookup and live insert target, and every
    /// checkpoint recorded through it is mirrored into `inc.live` under its
    /// fingerprint.
    pub fn run_traced_incremental(
        &self,
        pipeline: &BoundPipeline,
        cache: &dyn OutputCache,
        book: &ProfileBook,
        precheck: bool,
        policy: ParallelismPolicy,
        inc: Option<&Incremental>,
    ) -> Result<TracedOutcome> {
        // Mirror the live executor: a prechecking policy rejects doomed
        // pipelines before executing (or recording) anything, so replay's
        // `RejectedByPrecheck` branch sees the same side-state a sequential
        // run would have left.
        if precheck
            && matches!(
                pipeline.precheck_compatibility(),
                Err(PipelineError::IncompatibleSchema(_))
            )
        {
            return Ok(TracedOutcome {
                score: None,
                skipped_by_frontier: 0,
            });
        }
        let phase1 = self.wavefront_phase1(
            pipeline,
            Some(cache),
            Some(cache),
            book,
            policy,
            false,
            inc,
            None,
        )?;
        if phase1.failed {
            return Ok(TracedOutcome {
                score: None,
                skipped_by_frontier: phase1.skipped_by_frontier,
            });
        }
        // The final score is the last score in canonical topological order,
        // exactly as the sequential traced walk would have observed it.
        let mut final_score: Option<Score> = None;
        for node in pipeline.dag.topo_order()? {
            if let Some(slot) = phase1.slots[node].lock().as_ref() {
                if let Some(s) = slot.cached.score {
                    final_score = Some(s);
                }
            }
        }
        Ok(TracedOutcome {
            score: final_score,
            skipped_by_frontier: phase1.skipped_by_frontier,
        })
    }

    /// DAG-parallel [`Executor::run`]: phase 1 executes independent nodes
    /// concurrently (traced, uncharged), phase 2 replays the accounting in
    /// canonical topological order so every observable — report, ledger,
    /// store statistics, cache side-state — is byte-identical to
    /// [`Executor::run_sequential`] (up to orphan physical bytes when a
    /// schema-dishonest component fails dynamically; see
    /// [`Executor::run`]).
    fn run_wavefront(
        &self,
        pipeline: &BoundPipeline,
        ledger: &ClockLedger,
        cache: Option<&dyn OutputCache>,
        options: ExecOptions,
        resume: Option<&ResumeCtx<'_>>,
    ) -> Result<RunReport> {
        if options.precheck {
            if let Err(PipelineError::IncompatibleSchema(detail)) =
                pipeline.precheck_compatibility()
            {
                // Rejected before any execution: zero time charged.
                return Ok(RunReport {
                    stages: Vec::new(),
                    outcome: RunOutcome::RejectedByPrecheck {
                        at: detail.component,
                    },
                });
            }
        }
        let book = ProfileBook::new();
        // A hard error aborts the run before (or during) its replay: traced
        // writes whose reservations were never settled hand the quota
        // headroom back.
        book.reservation_scope(self.store, || {
            // Lookups respect the reuse policy; checkpoint *inserts* are
            // deferred to after the replay so the caller's cache receives
            // exactly the entries a sequential run would have recorded, even
            // on failure paths.
            let lookup = if options.reuse { cache } else { None };
            let phase1 = self.wavefront_phase1(
                pipeline,
                lookup,
                None,
                &book,
                options.parallelism,
                true,
                None,
                resume,
            )?;

            let mut sim = CacheSnapshot::new();
            let mut cursor = book.replay_cursor();
            let report = replay_run(
                self.store,
                pipeline,
                &book,
                &phase1.pre,
                &mut sim,
                &mut cursor,
                ledger,
                options,
                options.reuse,
            )?;

            // Canonical cache side-state: the sequential executor records a
            // checkpoint for every stage it executed (whatever the reuse
            // policy), and nothing beyond the stage it failed at.
            if let Some(c) = cache {
                let order = pipeline.dag.topo_order()?;
                for (stage, node) in report.stages.iter().zip(&order) {
                    if stage.reused {
                        continue;
                    }
                    if let Some(slot) = phase1.slots[*node].lock().take() {
                        c.insert(slot.key, slot.cached);
                    }
                }
            }
            Ok(report)
        })
    }

    /// Phase 1 of wavefront execution: runs the pipeline's nodes on
    /// `policy`'s worker pool for their results only, recording execution
    /// profiles and write traces into `book`.
    ///
    /// * `lookup` — consulted before executing a node; hits skip execution.
    /// * `live_insert` — receives checkpoints as nodes complete (the shared
    ///   phase-1 cache of the candidate-evaluation engines); pass `None` to
    ///   defer inserts to the caller.
    /// * `track_pre` — record lookup hits into the returned `pre` snapshot
    ///   (needed only by [`Executor::run_wavefront`]'s replay; the traced
    ///   engine path skips the bookkeeping).
    ///
    /// Scheduling is bounded by the canonical failure frontier: nodes at or
    /// after the first statically-incompatible node (in topological order)
    /// are never dispatched, and the frontier node's failure is recorded in
    /// `book` so the replay stops exactly where a sequential run would.
    ///
    /// With an [`Incremental`] context, the pipeline is additionally cut at
    /// the deepest cached provenance frontier *before* scheduling: cut
    /// nodes' slots are pre-filled from the snapshot and only the dirty
    /// region is dispatched (an induced sub-DAG schedule). The cut is
    /// computed against `inc.snapshot` — never the live index — so the
    /// skipped set is identical for every worker count.
    #[allow(clippy::too_many_arguments)]
    fn wavefront_phase1(
        &self,
        pipeline: &BoundPipeline,
        lookup: Option<&dyn OutputCache>,
        live_insert: Option<&dyn OutputCache>,
        book: &ProfileBook,
        policy: ParallelismPolicy,
        track_pre: bool,
        inc: Option<&Incremental>,
        resume: Option<&ResumeCtx<'_>>,
    ) -> Result<WavefrontRun> {
        let _wave_span = mlcask_obs::span!(
            "exec.wavefront",
            "nodes" => pipeline.components.len(),
            "workers" => policy.workers(),
        );
        let order = pipeline.dag.topo_order()?;
        let fail_at = static_failure_node(pipeline, &order);
        let mut allowed = vec![true; order.len()];
        if let Some(fail) = fail_at {
            let mut beyond = false;
            for &node in &order {
                beyond = beyond || node == fail;
                if beyond {
                    allowed[node] = false;
                }
            }
        }
        let cut = match inc {
            Some(inc) => Some(FrontierCut::compute(pipeline, &inc.snapshot, &allowed)?),
            None => None,
        };
        let slots: Vec<Mutex<Option<WaveSlot>>> =
            (0..order.len()).map(|_| Mutex::new(None)).collect();
        // Pre-fill frontier-skipped nodes' results. Their `CacheKey`s are
        // reconstructible because the cut is downward-closed: every
        // predecessor of a cut node is itself cut, so its artifact id is at
        // hand without touching the store.
        if let Some(cut) = &cut {
            for &node in &order {
                let Some(cached) = &cut.cached[node] else {
                    continue;
                };
                let inputs: Vec<Hash256> = pipeline
                    .dag
                    .pre(node)
                    .iter()
                    .map(|&p| {
                        cut.cached[p]
                            .as_ref()
                            .expect("frontier cut is downward-closed")
                            .artifact_id
                    })
                    .collect();
                *slots[node].lock() = Some(WaveSlot {
                    key: CacheKey {
                        component: pipeline.components[node].key(),
                        inputs,
                    },
                    cached: cached.clone(),
                    artifact: None,
                });
            }
        }
        // Induced dirty-region schedule: cut nodes are never dispatched
        // (sentinel indegree) and dirty nodes wait only on dirty
        // predecessors; edges touching cut nodes drop out entirely.
        let (indeg, adjacency) = match &cut {
            Some(cut) if cut.skipped > 0 => {
                let mut indeg = vec![0usize; order.len()];
                let mut adj: Vec<Vec<usize>> = vec![Vec::new(); order.len()];
                for (node, deg) in indeg.iter_mut().enumerate() {
                    if cut.cached[node].is_some() {
                        *deg = 1;
                        continue;
                    }
                    for &p in &pipeline.dag.pre(node) {
                        if cut.cached[p].is_none() {
                            *deg += 1;
                            adj[p].push(node);
                        }
                    }
                }
                (indeg, adj)
            }
            _ => (pipeline.dag.indegrees(), pipeline.dag.adjacency()),
        };
        let fingerprints = cut.as_ref().map(|c| c.fingerprints.as_slice());
        let pre: Mutex<CacheSnapshot> = Mutex::new(CacheSnapshot::new());
        let dynamic_failure = AtomicBool::new(false);

        run_dag(
            policy,
            indeg,
            &adjacency,
            &pipeline.dag.critical_path_lengths(),
            |node| -> Result<NodeVerdict> {
                if !allowed[node] {
                    // Beyond the failure frontier: never executes, but its
                    // (equally excluded) successors must still be released
                    // so the scheduler drains.
                    return Ok(NodeVerdict::Continue);
                }
                let comp = &pipeline.components[node];
                let preds = pipeline.dag.pre(node);
                let input_ids: Vec<Hash256> = preds
                    .iter()
                    .map(|p| {
                        slots[*p]
                            .lock()
                            .as_ref()
                            .expect("predecessors complete before their successors run")
                            .cached
                            .artifact_id
                    })
                    .collect();
                let key = CacheKey {
                    component: comp.key(),
                    inputs: input_ids,
                };

                if let Some(cache) = lookup {
                    if let Some(hit) = cache.lookup(&key) {
                        if track_pre {
                            pre.lock().insert(key.clone(), hit.clone());
                        }
                        // The hit is already in the paired cache, so the
                        // provenance pairing invariant lets it be recorded
                        // directly.
                        if let (Some(inc), Some(fps)) = (inc, fingerprints) {
                            inc.live.record(fps[node], hit.clone());
                        }
                        *slots[node].lock() = Some(WaveSlot {
                            key,
                            cached: hit,
                            artifact: None,
                        });
                        return Ok(NodeVerdict::Continue);
                    }
                }

                // Crash recovery: a journaled completed execution is adopted
                // verbatim — its recorded profile (write trace included)
                // feeds the accounting replay exactly as the pre-crash
                // attempt recorded it, so the replay charges this node as
                // *executed*, byte-identically to an uninterrupted run.
                if let Some(res) = resume {
                    if let Some(prof) = res.snapshot.get(&key) {
                        if let Some(lost) = book.record_profile(key.clone(), prof.clone()) {
                            if let Some(t) = &lost.write {
                                self.store.release_trace(t);
                            }
                        }
                        *slots[node].lock() = Some(WaveSlot {
                            key,
                            cached: prof.cached.clone(),
                            artifact: None,
                        });
                        return Ok(NodeVerdict::Continue);
                    }
                }

                // Shared-prefix hoisting: claim this node's fingerprint so
                // concurrent evaluations reaching the same sub-DAG execute
                // it exactly once — waiters adopt the owner's checkpoint
                // (components are deterministic, so whose execution wins is
                // unobservable in the replayed accounting).
                let mut claim_guard: Option<ClaimGuard> = None;
                if let (Some(inc), Some(fps)) = (inc, fingerprints) {
                    if let Some(gate) = inc.gate {
                        match gate.claim(fps[node]) {
                            Claim::Ready(GateOutcome::Completed(cached)) => {
                                if let Some(c) = live_insert {
                                    c.insert(key.clone(), cached.clone());
                                }
                                inc.live.record(fps[node], cached.clone());
                                *slots[node].lock() = Some(WaveSlot {
                                    key,
                                    cached,
                                    artifact: None,
                                });
                                return Ok(NodeVerdict::Continue);
                            }
                            Claim::Ready(GateOutcome::Failed) => {
                                book.record_failure(key);
                                dynamic_failure.store(true, Ordering::Relaxed);
                                return Ok(NodeVerdict::SkipSuccessors);
                            }
                            Claim::Owner(guard) => claim_guard = Some(guard),
                        }
                    }
                }

                // Materialise checkpointed inputs (results only; the replay
                // charges the read costs in canonical order). Each slot lock
                // is held only to obtain the shared handle; the deep copy
                // handed to the component happens outside it, so sibling
                // consumers of one input do not serialize on its lock.
                let mut input_handles: Vec<std::sync::Arc<Artifact>> =
                    Vec::with_capacity(preds.len());
                for p in &preds {
                    let mut slot = slots[*p].lock();
                    let slot = slot.as_mut().expect("topological order");
                    if slot.artifact.is_none() {
                        if slot.cached.object.is_null() {
                            return Err(PipelineError::Storage(
                                mlcask_storage::errors::StorageError::NotFound(
                                    slot.cached.artifact_id,
                                ),
                            ));
                        }
                        let bytes = self.store.get_blob(&slot.cached.object)?;
                        let artifact = Artifact::from_bytes(&bytes).map_err(|e| {
                            PipelineError::Storage(mlcask_storage::errors::StorageError::Codec(
                                e.to_string(),
                            ))
                        })?;
                        slot.artifact = Some(std::sync::Arc::new(artifact));
                    }
                    input_handles.push(std::sync::Arc::clone(
                        slot.artifact.as_ref().expect("just materialised"),
                    ));
                }
                let input_artifacts: Vec<Artifact> =
                    input_handles.iter().map(|a| (**a).clone()).collect();

                let work = comp.work_units(&input_artifacts);
                let exec_ns = work.saturating_mul(comp.ns_per_unit());
                // Telemetry only: duration feeds the flight recorder, never
                // the accounting (that uses the deterministic virtual clock).
                let _node_span = mlcask_obs::span!("exec.node", "component" => comp.key());
                match comp.run(&input_artifacts) {
                    Ok(artifact) => {
                        let artifact_id = artifact.content_id();
                        let kind = match comp.stage() {
                            StageKind::ModelTraining => ObjectKind::Model,
                            _ => ObjectKind::Output,
                        };
                        let (put, trace) =
                            self.store.put_blob_traced(kind, &artifact.to_bytes())?;
                        let cached = CachedOutput {
                            object: put.object,
                            artifact_id,
                            schema: artifact.schema,
                            score: artifact.score(),
                        };
                        if let Some(c) = live_insert {
                            c.insert(key.clone(), cached.clone());
                        }
                        // Pairing invariant: the live-cache insert above
                        // precedes the provenance record.
                        if let (Some(inc), Some(fps)) = (inc, fingerprints) {
                            inc.live.record(fps[node], cached.clone());
                        }
                        // A sibling racing this exact key may have recorded
                        // first; the displaced duplicate's reservation must
                        // be released here or it would outlive the search
                        // (only book-kept traces are settled by the replay).
                        let profile = StageProfile {
                            cached: cached.clone(),
                            artifact_bytes: artifact.byte_len(),
                            exec_ns,
                            write: Some(trace),
                        };
                        match book.record_profile(key.clone(), profile.clone()) {
                            Some(lost) => {
                                if let Some(t) = &lost.write {
                                    self.store.release_trace(t);
                                }
                            }
                            // The kept execution is this run's completed
                            // operation: journal it so a crashed attempt
                            // resumes from here. (Durability of the blob may
                            // still be in flight on an async backend;
                            // recovery validates the entry against what
                            // actually survived.)
                            None => {
                                if let Some(journal) = resume.and_then(|r| r.journal) {
                                    journal.record(&key, &profile)?;
                                }
                            }
                        }
                        *slots[node].lock() = Some(WaveSlot {
                            key,
                            cached: cached.clone(),
                            artifact: Some(std::sync::Arc::new(artifact)),
                        });
                        if let Some(guard) = claim_guard.take() {
                            guard.complete(GateOutcome::Completed(cached));
                        }
                        Ok(NodeVerdict::Continue)
                    }
                    Err(PipelineError::IncompatibleSchema(_)) => {
                        // A component whose run-time check contradicts its
                        // declared schemas — invisible to the static
                        // frontier. Record it and prune its descendants;
                        // independent nodes keep running so the executed set
                        // stays deterministic.
                        book.record_failure(key);
                        dynamic_failure.store(true, Ordering::Relaxed);
                        if let Some(guard) = claim_guard.take() {
                            guard.complete(GateOutcome::Failed);
                        }
                        Ok(NodeVerdict::SkipSuccessors)
                    }
                    // A hard error drops `claim_guard` un-completed, which
                    // un-claims the fingerprint so a waiter re-claims and
                    // executes the node itself.
                    Err(e) => Err(e),
                }
            },
        )?;

        // Record the statically predicted failure so the replay (and the
        // engines' score accounting) stops at the canonical node. Skipped if
        // a dynamic failure upstream already prevented the frontier node's
        // inputs from existing — the replay stops at that earlier node.
        let mut failed = dynamic_failure.load(Ordering::Relaxed);
        if let Some(fail) = fail_at {
            failed = true;
            let inputs: Option<Vec<Hash256>> = pipeline
                .dag
                .pre(fail)
                .iter()
                .map(|p| slots[*p].lock().as_ref().map(|s| s.cached.artifact_id))
                .collect();
            if let Some(inputs) = inputs {
                book.record_failure(CacheKey {
                    component: pipeline.components[fail].key(),
                    inputs,
                });
            }
        }
        let skipped_by_frontier = cut.map(|c| c.skipped).unwrap_or(0);
        if skipped_by_frontier > 0 {
            // Process-wide telemetry twin of the per-report field: the
            // deterministic report keeps its own count, the registry series
            // aggregates across evaluations for `metrics.scrape`.
            mlcask_obs::MetricsRegistry::global()
                .counter(
                    "mlcask_frontier_skipped_total",
                    "Pipeline nodes skipped by provenance frontier cuts",
                    &[],
                )
                .add(skipped_by_frontier as u64);
        }
        Ok(WavefrontRun {
            slots,
            pre: pre.into_inner(),
            failed,
            skipped_by_frontier,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::test_support::{TestModel, TestScaler, TestSource};
    use crate::component::ComponentHandle;
    use crate::dag::PipelineDag;
    use crate::semver::SemVer;
    use std::sync::Arc;

    fn pipeline(scale_factor: f32, scaler_out: usize, model_in: usize) -> BoundPipeline {
        let dag =
            Arc::new(PipelineDag::chain(&["test_source", "test_scaler", "test_model"]).unwrap());
        let comps: Vec<ComponentHandle> = vec![
            Arc::new(TestSource {
                version: SemVer::initial(),
                dim: 3,
                rows: 8,
            }),
            Arc::new(TestScaler {
                version: SemVer::initial(),
                dim_in: 3,
                dim_out: scaler_out,
                factor: scale_factor,
            }),
            Arc::new(TestModel {
                version: SemVer::initial(),
                dim_in: model_in,
                quality: 0.3,
            }),
        ];
        BoundPipeline::new(dag, comps).unwrap()
    }

    #[test]
    fn completes_and_scores() {
        let store = ChunkStore::in_memory_small();
        let exec = Executor::new(&store);
        let clock = ClockLedger::new();
        let report = exec
            .run(&pipeline(2.0, 3, 3), &clock, None, ExecOptions::RERUN_ALL)
            .unwrap();
        assert!(report.outcome.is_completed());
        assert_eq!(report.stages.len(), 3);
        assert_eq!(report.executed_count(), 3);
        assert!(clock.exec_total() > Duration::ZERO);
        assert!(clock.storage_total() > Duration::ZERO);
        // Each stage archived an output.
        assert!(report.stages.iter().all(|s| !s.output.is_null()));
    }

    #[test]
    fn reuse_skips_execution_on_second_run() {
        let store = ChunkStore::in_memory_small();
        let exec = Executor::new(&store);
        let cache = MemoryCache::new();
        let clock = ClockLedger::new();
        let p = pipeline(2.0, 3, 3);
        let first = exec
            .run(&p, &clock, Some(&cache), ExecOptions::MLCASK)
            .unwrap();
        assert_eq!(first.executed_count(), 3);
        let t_after_first = clock.pipeline_total();
        let second = exec
            .run(&p, &clock, Some(&cache), ExecOptions::MLCASK)
            .unwrap();
        assert_eq!(second.executed_count(), 0);
        assert_eq!(second.reused_count(), 3);
        assert_eq!(
            clock.pipeline_total(),
            t_after_first,
            "full reuse charges zero additional time"
        );
        // Scores propagate through reuse.
        assert_eq!(
            second.outcome.score().unwrap().raw,
            first.outcome.score().unwrap().raw
        );
    }

    #[test]
    fn partial_reuse_materialises_from_store() {
        let store = ChunkStore::in_memory_small();
        let exec = Executor::new(&store);
        let cache = MemoryCache::new();
        let clock = ClockLedger::new();
        let p1 = pipeline(2.0, 3, 3);
        exec.run(&p1, &clock, Some(&cache), ExecOptions::MLCASK)
            .unwrap();
        // Same source+scaler, different model quality → prefix reused, model
        // re-executed from the materialised scaler output.
        let dag = Arc::clone(&p1.dag);
        let comps: Vec<ComponentHandle> = vec![
            p1.components[0].clone(),
            p1.components[1].clone(),
            Arc::new(TestModel {
                version: SemVer::master(0, 1),
                dim_in: 3,
                quality: 0.9,
            }),
        ];
        let p2 = BoundPipeline::new(dag, comps).unwrap();
        let before_storage = clock.storage_total();
        let report = exec
            .run(&p2, &clock, Some(&cache), ExecOptions::MLCASK)
            .unwrap();
        assert_eq!(report.reused_count(), 2);
        assert_eq!(report.executed_count(), 1);
        assert!(
            clock.storage_total() > before_storage,
            "materialising the checkpointed input costs storage time"
        );
        assert!(report.outcome.is_completed());
    }

    #[test]
    fn precheck_rejects_without_charging_time() {
        let store = ChunkStore::in_memory_small();
        let exec = Executor::new(&store);
        let clock = ClockLedger::new();
        // Scaler widens to 5 dims, model expects 3 → statically doomed.
        let doomed = pipeline(1.0, 5, 3);
        let report = exec
            .run(&doomed, &clock, None, ExecOptions::MLCASK)
            .unwrap();
        assert!(matches!(
            report.outcome,
            RunOutcome::RejectedByPrecheck { .. }
        ));
        assert!(report.stages.is_empty());
        assert_eq!(clock.pipeline_total(), Duration::ZERO);
    }

    #[test]
    fn without_precheck_fails_midway_after_spending_time() {
        let store = ChunkStore::in_memory_small();
        let exec = Executor::new(&store);
        let clock = ClockLedger::new();
        let doomed = pipeline(1.0, 5, 3);
        let report = exec
            .run(&doomed, &clock, None, ExecOptions::RERUN_ALL)
            .unwrap();
        match &report.outcome {
            RunOutcome::Failed { at, .. } => assert_eq!(at.name, "test_model"),
            o => panic!("expected failure, got {o:?}"),
        }
        // Source and scaler ran (and were paid for) before the failure.
        assert_eq!(report.stages.len(), 2);
        assert!(clock.exec_total() > Duration::ZERO);
    }

    #[test]
    fn no_reuse_policy_ignores_cache() {
        let store = ChunkStore::in_memory_small();
        let exec = Executor::new(&store);
        let cache = MemoryCache::new();
        let clock = ClockLedger::new();
        let p = pipeline(2.0, 3, 3);
        exec.run(&p, &clock, Some(&cache), ExecOptions::RERUN_ALL)
            .unwrap();
        let second = exec
            .run(&p, &clock, Some(&cache), ExecOptions::RERUN_ALL)
            .unwrap();
        assert_eq!(second.executed_count(), 3, "ModelDB reruns everything");
    }

    #[test]
    fn duplicate_outputs_dedup_in_store() {
        let store = ChunkStore::in_memory_small();
        let exec = Executor::new(&store);
        let clock = ClockLedger::new();
        let p = pipeline(2.0, 3, 3);
        exec.run(&p, &clock, None, ExecOptions::RERUN_ALL).unwrap();
        let physical_after_first = store.physical_bytes();
        exec.run(&p, &clock, None, ExecOptions::RERUN_ALL).unwrap();
        // Identical outputs → chunk store stores nothing new.
        assert_eq!(store.physical_bytes(), physical_after_first);
        // But logical bytes doubled (ModelDB-style accounting).
        assert!(store.stats().total().logical_bytes >= 2 * physical_after_first / 2);
    }

    /// Diamond DAG: source → {left, right} → join → model.
    fn diamond(dim: usize, join_out: usize, model_in: usize) -> BoundPipeline {
        use crate::component::test_support::{TestBranch, TestJoin};
        let mut dag = PipelineDag::new();
        for n in ["test_source", "left", "right", "test_join", "test_model"] {
            dag.add_node(n).unwrap();
        }
        dag.add_edge("test_source", "left").unwrap();
        dag.add_edge("test_source", "right").unwrap();
        dag.add_edge("left", "test_join").unwrap();
        dag.add_edge("right", "test_join").unwrap();
        dag.add_edge("test_join", "test_model").unwrap();
        let comps: Vec<ComponentHandle> = vec![
            Arc::new(TestSource {
                version: SemVer::initial(),
                dim,
                rows: 8,
            }),
            Arc::new(TestBranch {
                name: "left",
                version: SemVer::initial(),
                dim,
                factor: 2.0,
                spin: 0,
            }),
            Arc::new(TestBranch {
                name: "right",
                version: SemVer::initial(),
                dim,
                factor: 3.0,
                spin: 0,
            }),
            Arc::new(TestJoin {
                version: SemVer::initial(),
                dim_in: dim,
                dim_out: join_out,
            }),
            Arc::new(TestModel {
                version: SemVer::initial(),
                dim_in: model_in,
                quality: 0.3,
            }),
        ];
        BoundPipeline::new(Arc::new(dag), comps).unwrap()
    }

    /// Serialised observables of one run: report + ledger + store stats.
    fn run_diamond_observables(
        p: &BoundPipeline,
        policy: ParallelismPolicy,
        options: ExecOptions,
        with_cache: bool,
    ) -> (String, usize) {
        let store = ChunkStore::in_memory_small();
        let exec = Executor::new(&store);
        let cache = MemoryCache::new();
        let clock = ClockLedger::new();
        let report = exec
            .run(
                p,
                &clock,
                if with_cache { Some(&cache) } else { None },
                options.with_parallelism(policy),
            )
            .unwrap();
        (
            format!(
                "report={} clock={} stats={} physical={}",
                serde_json::to_string(&report).unwrap(),
                serde_json::to_string(&clock.snapshot()).unwrap(),
                serde_json::to_string(&store.stats()).unwrap(),
                store.physical_bytes(),
            ),
            cache.len(),
        )
    }

    #[test]
    fn diamond_wavefront_matches_sequential() {
        let p = diamond(3, 3, 3);
        for options in [ExecOptions::MLCASK, ExecOptions::RERUN_ALL] {
            for with_cache in [false, true] {
                let (seq, seq_cache) =
                    run_diamond_observables(&p, ParallelismPolicy::Sequential, options, with_cache);
                for workers in [2, 8] {
                    let (par, par_cache) = run_diamond_observables(
                        &p,
                        ParallelismPolicy::Parallel(workers),
                        options,
                        with_cache,
                    );
                    assert_eq!(seq, par, "{workers} workers diverged");
                    assert_eq!(seq_cache, par_cache);
                }
            }
        }
    }

    #[test]
    fn diamond_wavefront_failure_matches_sequential() {
        // Join widens to 5 dims, model expects 3: the run fails at the model
        // after both branches and the join executed (and were paid for).
        let doomed = diamond(3, 5, 3);
        let (seq, seq_cache) = run_diamond_observables(
            &doomed,
            ParallelismPolicy::Sequential,
            ExecOptions::RERUN_ALL,
            true,
        );
        for workers in [2, 8] {
            let (par, par_cache) = run_diamond_observables(
                &doomed,
                ParallelismPolicy::Parallel(workers),
                ExecOptions::RERUN_ALL,
                true,
            );
            assert_eq!(seq, par, "failure path with {workers} workers diverged");
            assert_eq!(seq_cache, par_cache, "cache side-state diverged");
        }
    }

    #[test]
    fn diamond_wavefront_reuses_checkpoints() {
        let store = ChunkStore::in_memory_small();
        let exec = Executor::new(&store);
        let cache = MemoryCache::new();
        let clock = ClockLedger::new();
        let p = diamond(3, 3, 3);
        let options = ExecOptions::MLCASK.with_parallelism(ParallelismPolicy::Parallel(4));
        let first = exec.run(&p, &clock, Some(&cache), options).unwrap();
        assert_eq!(first.executed_count(), 5);
        let t_after_first = clock.pipeline_total();
        let second = exec.run(&p, &clock, Some(&cache), options).unwrap();
        assert_eq!(second.reused_count(), 5, "full reuse through the wavefront");
        assert_eq!(clock.pipeline_total(), t_after_first);
        assert_eq!(
            second.outcome.score().unwrap().raw,
            first.outcome.score().unwrap().raw
        );
    }

    #[test]
    fn wavefront_gate_ignores_chains_and_unpersisted_runs() {
        // A chain with a parallel policy must still take the sequential path
        // (wavefront needs width); observables are identical either way, so
        // pin the equality here.
        let p = pipeline(2.0, 3, 3);
        let store = ChunkStore::in_memory_small();
        let exec = Executor::new(&store);
        let clock = ClockLedger::new();
        let report = exec
            .run(
                &p,
                &clock,
                None,
                ExecOptions::RERUN_ALL.with_parallelism(ParallelismPolicy::Parallel(8)),
            )
            .unwrap();
        assert!(report.outcome.is_completed());
        // persist_outputs=false runs must not hit the traced path (it would
        // persist blobs the policy forbids).
        let store2 = ChunkStore::in_memory_small();
        let exec2 = Executor::new(&store2);
        let no_persist = ExecOptions {
            persist_outputs: false,
            ..ExecOptions::RERUN_ALL
        }
        .with_parallelism(ParallelismPolicy::Parallel(8));
        let d = diamond(3, 3, 3);
        let report2 = exec2.run(&d, &clock, None, no_persist).unwrap();
        assert!(report2.outcome.is_completed());
        assert_eq!(store2.physical_bytes(), 0, "nothing persisted");
    }

    #[test]
    fn stage_time_attribution() {
        let store = ChunkStore::in_memory_small();
        let exec = Executor::new(&store);
        let clock = ClockLedger::new();
        exec.run(&pipeline(2.0, 3, 3), &clock, None, ExecOptions::RERUN_ALL)
            .unwrap();
        let snap = clock.snapshot();
        assert!(snap.ingest_ns > 0);
        assert!(snap.preprocess_ns > 0);
        assert!(snap.training_ns > 0);
        assert!(snap.storage_ns > 0);
        // Model charges 8 ns/unit on 4x byte_len units — training dominates.
        assert!(snap.training_ns > snap.preprocess_ns);
    }
}
