//! The Readmission pipeline (§VII-A, Figs. 2–3 running example).
//!
//! `dataset → data_cleanse → feature_extract → cnn`, predicting 30-day
//! hospital readmission. Cleansing fills missing diagnosis codes and labs;
//! extraction builds medical feature vectors (the `1.0` version widens the
//! feature schema — the paper's compatibility-breaking update); the "CNN"
//! slot trains the deep model (MLP stand-in — see DESIGN.md §2). Model
//! training dominates this pipeline's cost, matching Fig. 6(a).

use crate::common::{mlp_work_units, train_eval_mlp, Workload};
use crate::data::ehr;
use mlcask_ml::mlp::MlpConfig;
use mlcask_ml::tensor::Matrix;
use mlcask_pipeline::artifact::{Artifact, ArtifactData, Cell, Features, Table};
use mlcask_pipeline::component::{Component, ComponentHandle, ComponentKey, StageKind};
use mlcask_pipeline::errors::{PipelineError, Result};
use mlcask_pipeline::schema::{Schema, SchemaId};
use mlcask_pipeline::semver::SemVer;
use std::sync::Arc;

/// Number of admission episodes generated.
pub const N_PATIENTS: usize = 400;

/// Feature dimension of the `0.x` extractor (one-hot dx + demographics +
/// labs).
pub const DIM_V0: usize = ehr::DX_CODES.len() + 4 + ehr::N_LABS;

/// Feature dimension of the schema-changing `1.0` extractor (adds dx×age and
/// dx×procedures interactions).
pub const DIM_V1: usize = DIM_V0 + ehr::DX_CODES.len();

fn ehr_schema() -> Schema {
    Schema::Relational {
        columns: ehr::columns(),
    }
}

/// Dataset component: synthesises the admissions table.
struct ReadmissionData {
    version: SemVer,
}

impl Component for ReadmissionData {
    fn name(&self) -> &str {
        "readmission_data"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::Ingest
    }
    fn input_schema(&self) -> Option<SchemaId> {
        None
    }
    fn output_schema(&self) -> SchemaId {
        ehr_schema().id()
    }
    fn run(&self, _inputs: &[Artifact]) -> Result<Artifact> {
        let table = ehr::generate(N_PATIENTS, 0.12, 40 + self.version.increment as u64);
        Ok(Artifact::new(
            ArtifactData::Table(table),
            self.output_schema(),
        ))
    }
    fn work_units(&self, _inputs: &[Artifact]) -> u64 {
        (N_PATIENTS * ehr::columns().len()) as u64
    }
    fn ns_per_unit(&self) -> u64 {
        2_000
    }
}

/// Cleansing component: fills missing diagnosis codes and lab values.
/// `increment` selects progressively better imputation.
struct DataCleanse {
    version: SemVer,
}

impl DataCleanse {
    fn fill_table(&self, t: &Table) -> Table {
        let dx_col = t.col_index("dx_code").expect("dx column");
        // Column means for numeric fills.
        let mut sums = vec![0.0f64; t.columns.len()];
        let mut counts = vec![0usize; t.columns.len()];
        for row in &t.rows {
            for (c, cell) in row.iter().enumerate() {
                if let Some(v) = cell.as_f32() {
                    sums[c] += v as f64;
                    counts[c] += 1;
                }
            }
        }
        // Mode dx code for categorical fill.
        let mut dx_counts = std::collections::BTreeMap::new();
        for row in &t.rows {
            if let Cell::S(code) = &row[dx_col] {
                *dx_counts.entry(code.clone()).or_insert(0usize) += 1;
            }
        }
        let mode_dx = dx_counts
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(k, _)| k.clone())
            .unwrap_or_else(|| "UNK".to_string());
        let rows = t
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(c, cell)| match cell {
                        Cell::Null if c == dx_col => Cell::S(mode_dx.clone()),
                        Cell::Null => {
                            let mean = if counts[c] > 0 {
                                (sums[c] / counts[c] as f64) as f32
                            } else {
                                0.0
                            };
                            // Every increment refines the imputation slightly
                            // (so successive versions produce genuinely
                            // different outputs, as real updates would).
                            let shrink = match self.version.increment {
                                0 => 0.8,
                                i => 1.0 - 0.01 * (i - 1) as f32,
                            };
                            Cell::F(mean * shrink)
                        }
                        other => other.clone(),
                    })
                    .collect()
            })
            .collect();
        Table::new(t.columns.clone(), rows)
    }
}

impl Component for DataCleanse {
    fn name(&self) -> &str {
        "data_cleanse"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::PreProcess
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(ehr_schema().id())
    }
    fn output_schema(&self) -> SchemaId {
        ehr_schema().id()
    }
    fn run(&self, inputs: &[Artifact]) -> Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Table(t) = &inputs[0].data else {
            return Err(PipelineError::WrongArtifactKind {
                component: self.key(),
                expected: "table",
                actual: inputs[0].data.kind_label(),
            });
        };
        let filled = self.fill_table(t);
        debug_assert_eq!(filled.null_count(), 0);
        Ok(Artifact::new(
            ArtifactData::Table(filled),
            self.output_schema(),
        ))
    }
    fn work_units(&self, inputs: &[Artifact]) -> u64 {
        inputs.first().map(|a| a.byte_len() / 8).unwrap_or(1)
    }
    fn ns_per_unit(&self) -> u64 {
        80_000
    }
}

/// Feature extraction: one-hot dx + numeric features; `schema = 1` adds
/// interaction features (wider output — a schema change).
struct FeatureExtract {
    version: SemVer,
}

impl FeatureExtract {
    fn wide(&self) -> bool {
        self.version.schema >= 1
    }

    fn extract(&self, t: &Table) -> Features {
        let dim = if self.wide() { DIM_V1 } else { DIM_V0 };
        // Increments tweak the numeric scaling — each version's output is a
        // distinct artifact.
        let scale = 1.0 + 0.02 * self.version.increment as f32;
        let dx_col = t.col_index("dx_code").unwrap();
        let age_col = t.col_index("age").unwrap();
        let gender_col = t.col_index("gender").unwrap();
        let procs_col = t.col_index("num_procedures").unwrap();
        let los_col = t.col_index("los_days").unwrap();
        let label_col = t.col_index("readmitted").unwrap();
        let lab_cols: Vec<usize> = (0..ehr::N_LABS)
            .map(|i| t.col_index(&format!("lab_{i}")).unwrap())
            .collect();
        let mut x = Matrix::zeros(t.rows.len(), dim);
        let mut y = Vec::with_capacity(t.rows.len());
        for (r, row) in t.rows.iter().enumerate() {
            let dx_idx = match &row[dx_col] {
                Cell::S(code) => ehr::DX_CODES.iter().position(|c| c == code).unwrap_or(0),
                _ => 0,
            };
            x.set(r, dx_idx, 1.0);
            let mut c = ehr::DX_CODES.len();
            let age = row[age_col].as_f32().unwrap_or(50.0) / 100.0 * scale;
            x.set(r, c, age);
            c += 1;
            x.set(
                r,
                c,
                match &row[gender_col] {
                    Cell::S(g) if g == "M" => 1.0,
                    _ => 0.0,
                },
            );
            c += 1;
            let procs = row[procs_col].as_f32().unwrap_or(0.0) / 6.0;
            x.set(r, c, procs);
            c += 1;
            x.set(r, c, row[los_col].as_f32().unwrap_or(1.0) / 20.0);
            c += 1;
            for lc in &lab_cols {
                x.set(r, c, row[*lc].as_f32().unwrap_or(0.0) / 100.0);
                c += 1;
            }
            if self.wide() {
                // Interactions: dx one-hot scaled by (age + procedures).
                let strength = age + procs;
                x.set(r, ehr::DX_CODES.len() + 4 + ehr::N_LABS + dx_idx, strength);
            }
            y.push(match row[label_col] {
                Cell::I(v) => v as usize,
                _ => 0,
            });
        }
        Features { x, y, n_classes: 2 }
    }
}

impl Component for FeatureExtract {
    fn name(&self) -> &str {
        "feature_extract"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::PreProcess
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(ehr_schema().id())
    }
    fn output_schema(&self) -> SchemaId {
        Schema::FeatureMatrix {
            dim: if self.wide() { DIM_V1 } else { DIM_V0 },
            n_classes: 2,
        }
        .id()
    }
    fn run(&self, inputs: &[Artifact]) -> Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Table(t) = &inputs[0].data else {
            return Err(PipelineError::WrongArtifactKind {
                component: self.key(),
                expected: "table",
                actual: inputs[0].data.kind_label(),
            });
        };
        Ok(Artifact::new(
            ArtifactData::Features(self.extract(t)),
            self.output_schema(),
        ))
    }
    fn work_units(&self, inputs: &[Artifact]) -> u64 {
        inputs.first().map(|a| a.byte_len() / 4).unwrap_or(1)
    }
    fn ns_per_unit(&self) -> u64 {
        160_000
    }
}

/// The "CNN" model slot: an MLP whose hyperparameters vary by version.
struct Cnn {
    version: SemVer,
    expects_dim: usize,
    config: MlpConfig,
}

impl Component for Cnn {
    fn name(&self) -> &str {
        "cnn"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::ModelTraining
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(
            Schema::FeatureMatrix {
                dim: self.expects_dim,
                n_classes: 2,
            }
            .id(),
        )
    }
    fn output_schema(&self) -> SchemaId {
        Schema::Model {
            family: "readmission-cnn".into(),
        }
        .id()
    }
    fn run(&self, inputs: &[Artifact]) -> Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Features(f) = &inputs[0].data else {
            return Err(PipelineError::WrongArtifactKind {
                component: self.key(),
                expected: "features",
                actual: inputs[0].data.kind_label(),
            });
        };
        let model = train_eval_mlp(f, self.config.clone(), "readmission-cnn");
        Ok(Artifact::new(
            ArtifactData::Model(model),
            self.output_schema(),
        ))
    }
    fn work_units(&self, _inputs: &[Artifact]) -> u64 {
        mlp_work_units(self.expects_dim, &self.config, N_PATIENTS)
    }
    fn ns_per_unit(&self) -> u64 {
        // Model training dominates the Readmission pipeline (Fig. 6a).
        3_000
    }
}

fn cnn_config(increment: u32) -> MlpConfig {
    // Hyperparameter trajectory across versions: widths/epochs grow, giving
    // later versions (usually) better accuracy at higher cost.
    // Increments 2 and 3 are the newest designs (adapted to the widened
    // feature schema) and carry the largest capacity.
    let widths = [12usize, 16, 40, 48, 32, 40, 48, 56];
    let epochs = [20usize, 24, 36, 40, 32, 36, 40, 44];
    let i = (increment as usize).min(widths.len() - 1);
    MlpConfig {
        hidden: vec![widths[i]],
        learning_rate: 0.1,
        epochs: epochs[i],
        batch_size: 32,
        l2: 1e-4,
        seed: 100 + increment as u64,
    }
}

/// Builds the Readmission workload with its full version family.
pub fn build() -> Workload {
    let mk_key = |h: &ComponentHandle| h.key();
    let data: ComponentHandle = Arc::new(ReadmissionData {
        version: SemVer::master(0, 0),
    });
    let cleanses: Vec<ComponentHandle> = (0..5)
        .map(|i| -> ComponentHandle {
            Arc::new(DataCleanse {
                version: SemVer::master(0, i),
            })
        })
        .collect();
    // Extract 0.0–0.3 keep DIM_V0; 1.0 widens to DIM_V1 (schema change).
    let extracts: Vec<ComponentHandle> = (0..4)
        .map(|i| -> ComponentHandle {
            Arc::new(FeatureExtract {
                version: SemVer::master(0, i),
            })
        })
        .chain(std::iter::once::<ComponentHandle>(Arc::new(
            FeatureExtract {
                version: SemVer::master(1, 0),
            },
        )))
        .collect();
    // CNNs: 0.0, 0.1, 0.4, 0.5, 0.6, 0.7 expect DIM_V0; 0.2, 0.3 expect
    // DIM_V1 (developed against the new extractor).
    let mut cnns: Vec<ComponentHandle> = Vec::new();
    for inc in [0u32, 1, 4, 5, 6, 7] {
        cnns.push(Arc::new(Cnn {
            version: SemVer::master(0, inc),
            expects_dim: DIM_V0,
            config: cnn_config(inc),
        }));
    }
    for inc in [2u32, 3] {
        cnns.push(Arc::new(Cnn {
            version: SemVer::master(0, inc),
            expects_dim: DIM_V1,
            config: cnn_config(inc),
        }));
    }
    let find_cnn = |inc: u32| -> ComponentKey {
        cnns.iter()
            .map(mk_key)
            .find(|k| k.version.increment == inc)
            .expect("cnn version exists")
    };

    let slots = vec![
        "readmission_data".to_string(),
        "data_cleanse".to_string(),
        "feature_extract".to_string(),
        "cnn".to_string(),
    ];
    let initial = vec![
        data.key(),
        cleanses[0].key(),
        extracts[0].key(),
        find_cnn(0),
    ];
    let chains = vec![
        vec![data.key()],
        cleanses.iter().map(mk_key).collect(),
        extracts[..4].iter().map(mk_key).collect(),
        vec![
            find_cnn(0),
            find_cnn(1),
            find_cnn(4),
            find_cnn(5),
            find_cnn(6),
            find_cnn(7),
        ],
    ];
    let fe_v1 = extracts[4].key();
    // Fig. 3 branch histories.
    let head_updates = vec![
        // master.1: cleansing 0.1 + CNN 0.4.
        vec![
            data.key(),
            cleanses[1].key(),
            extracts[0].key(),
            find_cnn(4),
        ],
    ];
    let dev_updates = vec![
        // dev.1: CNN 0.1.
        vec![
            data.key(),
            cleanses[0].key(),
            extracts[0].key(),
            find_cnn(1),
        ],
        // dev.2: feature extraction 1.0 (schema change) + CNN 0.2.
        vec![data.key(), cleanses[0].key(), fe_v1.clone(), find_cnn(2)],
        // dev.3: CNN 0.3.
        vec![data.key(), cleanses[0].key(), fe_v1.clone(), find_cnn(3)],
    ];

    let mut handles = vec![data];
    handles.extend(cleanses);
    handles.extend(extracts);
    handles.extend(cnns);
    Workload {
        name: "readmission".into(),
        slots,
        handles,
        initial,
        chains,
        model_slot: 3,
        incompat_update: (2, fe_v1),
        head_updates,
        dev_updates,
        edges: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcask_pipeline::clock::ClockLedger;
    use mlcask_pipeline::dag::BoundPipeline;
    use mlcask_pipeline::executor::{ExecOptions, Executor};
    use mlcask_storage::store::ChunkStore;

    fn run_pipeline(w: &Workload, keys: &[ComponentKey]) -> (f64, ClockLedger) {
        let store = ChunkStore::in_memory_small();
        let exec = Executor::new(&store);
        let handles: Vec<ComponentHandle> = keys
            .iter()
            .map(|k| {
                w.handles
                    .iter()
                    .find(|h| &h.key() == k)
                    .expect("version exists")
                    .clone()
            })
            .collect();
        let bound = BoundPipeline::new(Arc::new(w.dag()), handles).unwrap();
        let clock = ClockLedger::new();
        let report = exec
            .run(&bound, &clock, None, ExecOptions::RERUN_ALL)
            .unwrap();
        (report.outcome.score().expect("completed").raw, clock)
    }

    #[test]
    fn structure_is_valid() {
        let w = build();
        w.validate();
        assert_eq!(w.slots.len(), 4);
        assert_eq!(w.handles.len(), 1 + 5 + 5 + 8);
        assert_eq!(w.preproc_slots(), vec![1, 2]);
    }

    #[test]
    fn initial_pipeline_learns() {
        let w = build();
        let (score, clock) = run_pipeline(&w, &w.initial);
        assert!(score > 0.55, "readmission accuracy {score}");
        // Model training dominates (Fig. 6a).
        let snap = clock.snapshot();
        assert!(
            snap.training_ns > snap.preprocess_ns,
            "training {} vs preproc {}",
            snap.training_ns,
            snap.preprocess_ns
        );
    }

    #[test]
    fn wide_extractor_with_matching_model_works() {
        let w = build();
        let keys = w.dev_updates[1].clone();
        let (score, _) = run_pipeline(&w, &keys);
        assert!(score > 0.5);
    }

    #[test]
    fn incompatible_update_is_detected() {
        let w = build();
        let (slot, ref v1) = w.incompat_update;
        let mut keys = w.initial.clone();
        keys[slot] = v1.clone();
        let store = ChunkStore::in_memory_small();
        let exec = Executor::new(&store);
        let handles: Vec<ComponentHandle> = keys
            .iter()
            .map(|k| w.handles.iter().find(|h| &h.key() == k).unwrap().clone())
            .collect();
        let bound = BoundPipeline::new(Arc::new(w.dag()), handles).unwrap();
        let clock = ClockLedger::new();
        let report = exec.run(&bound, &clock, None, ExecOptions::MLCASK).unwrap();
        assert!(!report.outcome.is_completed());
    }

    #[test]
    fn model_versions_score_differently() {
        let w = build();
        let mut keys_a = w.initial.clone();
        let mut keys_b = w.initial.clone();
        keys_a[3] = w.chains[3][0].clone();
        keys_b[3] = w.chains[3][4].clone();
        let (a, _) = run_pipeline(&w, &keys_a);
        let (b, _) = run_pipeline(&w, &keys_b);
        assert_ne!(a, b, "different CNN versions must differ in score");
    }
}
