//! The what-if component-swap scenario behind incremental re-evaluation.
//!
//! A team has committed a five-stage pipeline whose pre-processing prefix
//! (`ingest -> clean -> featurize`) is compute-heavy, and now asks a batch
//! of *what-if* questions: "how would the score move if we swapped the
//! feature-selection stage for variant k?" Every what-if candidate shares
//! the expensive prefix and differs only in the cheap suffix
//! (`select -> train`), which is exactly the shape the provenance frontier
//! cut exploits — the prefix is cut out of every candidate's plan
//! statically, so re-evaluation touches only the dirty suffix.
//!
//! The scenario also carries an *alternative ingest version* producing
//! different data: swapping it invalidates every downstream fingerprint,
//! which tests pin as the frontier-invalidation property.

use crate::errors::Result;
use mlcask_core::registry::ComponentRegistry;
use mlcask_core::search_space::SearchSpaces;
use mlcask_ml::metrics::{MetricKind, Score};
use mlcask_ml::tensor::Matrix;
use mlcask_pipeline::artifact::{Artifact, ArtifactData, Features, ModelArtifact};
use mlcask_pipeline::component::{Component, ComponentHandle, ComponentKey, StageKind};
use mlcask_pipeline::dag::PipelineDag;
use mlcask_pipeline::schema::{Schema, SchemaId};
use mlcask_pipeline::semver::SemVer;
use std::sync::Arc;

/// Rows in the synthetic feature matrix.
pub const ROWS: usize = 300;
/// Feature dimensionality.
pub const DIM: usize = 16;
/// Gradient epochs per heavy prefix stage (`clean`, `featurize`).
pub const PREFIX_EPOCHS: usize = 6000;
/// Gradient epochs per light suffix stage (`select`).
pub const SUFFIX_EPOCHS: usize = 2;
/// Number of what-if `select` variants beyond the committed base version.
pub const VARIANTS: usize = 4;

fn feature_schema() -> SchemaId {
    Schema::FeatureMatrix {
        dim: DIM,
        n_classes: 2,
    }
    .id()
}

/// Deterministic logistic-regression epochs; the learned weights re-scale
/// the feature view so downstream scores depend on every upstream stage.
fn gradient_rescale(f: &Features, epochs: usize, lr: f32) -> Features {
    let mut w = [0.05f32; DIM];
    for _ in 0..epochs {
        let mut grad = [0.0f32; DIM];
        for r in 0..f.x.rows() {
            let mut z = 0.0f32;
            for (c, wc) in w.iter().enumerate() {
                z += wc * f.x.get(r, c);
            }
            let p = 1.0 / (1.0 + (-z).exp());
            let err = p - (f.y[r] as f32);
            for (c, g) in grad.iter_mut().enumerate() {
                *g += err * f.x.get(r, c);
            }
        }
        for (wc, g) in w.iter_mut().zip(&grad) {
            *wc -= lr * g / f.x.rows() as f32;
        }
    }
    let x = Matrix::from_fn(f.x.rows(), DIM, |r, c| f.x.get(r, c) * (1.0 + w[c].abs()));
    Features {
        x,
        y: f.y.clone(),
        n_classes: f.n_classes,
    }
}

/// Source stage: generates the synthetic dataset. The version increment
/// seeds the generator, so a new ingest version means new *data* and
/// therefore new fingerprints everywhere downstream.
struct WhatIfIngest {
    version: SemVer,
}

impl Component for WhatIfIngest {
    fn name(&self) -> &str {
        "ingest"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::Ingest
    }
    fn input_schema(&self) -> Option<SchemaId> {
        None
    }
    fn output_schema(&self) -> SchemaId {
        feature_schema()
    }
    fn run(&self, _inputs: &[Artifact]) -> mlcask_pipeline::errors::Result<Artifact> {
        let salt = self.version.increment as usize;
        let x = Matrix::from_fn(ROWS, DIM, |r, c| {
            ((r * 31 + c * 7 + salt * 13) % 17) as f32 / 17.0
        });
        let y = (0..ROWS).map(|r| (r + salt) % 2).collect();
        Ok(Artifact::new(
            ArtifactData::Features(Features { x, y, n_classes: 2 }),
            self.output_schema(),
        ))
    }
    fn work_units(&self, _inputs: &[Artifact]) -> u64 {
        (ROWS * DIM) as u64
    }
}

/// Heavy prefix stage (`clean` or `featurize`): real gradient work.
struct WhatIfHeavy {
    name: &'static str,
    lr: f32,
}

impl Component for WhatIfHeavy {
    fn name(&self) -> &str {
        self.name
    }
    fn version(&self) -> SemVer {
        SemVer::master(0, 0)
    }
    fn stage(&self) -> StageKind {
        StageKind::PreProcess
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(feature_schema())
    }
    fn output_schema(&self) -> SchemaId {
        feature_schema()
    }
    fn run(&self, inputs: &[Artifact]) -> mlcask_pipeline::errors::Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Features(f) = &inputs[0].data else {
            unreachable!("schema-checked input is a feature matrix");
        };
        Ok(Artifact::new(
            ArtifactData::Features(gradient_rescale(f, PREFIX_EPOCHS, self.lr)),
            self.output_schema(),
        ))
    }
    fn work_units(&self, inputs: &[Artifact]) -> u64 {
        inputs
            .first()
            .map(|a| a.byte_len() * PREFIX_EPOCHS as u64)
            .unwrap_or(1)
    }
    fn ns_per_unit(&self) -> u64 {
        4
    }
}

/// The swap slot: a light feature-selection stage whose version picks a
/// different re-weighting — each what-if variant lands a different score.
struct WhatIfSelect {
    version: SemVer,
}

impl Component for WhatIfSelect {
    fn name(&self) -> &str {
        "select"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::PreProcess
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(feature_schema())
    }
    fn output_schema(&self) -> SchemaId {
        feature_schema()
    }
    fn run(&self, inputs: &[Artifact]) -> mlcask_pipeline::errors::Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Features(f) = &inputs[0].data else {
            unreachable!("schema-checked input is a feature matrix");
        };
        let lr = 0.02 + self.version.increment as f32 * 0.015;
        Ok(Artifact::new(
            ArtifactData::Features(gradient_rescale(f, SUFFIX_EPOCHS, lr)),
            self.output_schema(),
        ))
    }
    fn work_units(&self, inputs: &[Artifact]) -> u64 {
        inputs
            .first()
            .map(|a| a.byte_len() * SUFFIX_EPOCHS as u64)
            .unwrap_or(1)
    }
    fn ns_per_unit(&self) -> u64 {
        4
    }
}

/// Terminal stage: scores a simple threshold model on the selected view.
struct WhatIfTrain;

impl Component for WhatIfTrain {
    fn name(&self) -> &str {
        "train"
    }
    fn version(&self) -> SemVer {
        SemVer::master(0, 0)
    }
    fn stage(&self) -> StageKind {
        StageKind::ModelTraining
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(feature_schema())
    }
    fn output_schema(&self) -> SchemaId {
        Schema::Model {
            family: "whatif".into(),
        }
        .id()
    }
    fn run(&self, inputs: &[Artifact]) -> mlcask_pipeline::errors::Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Features(f) = &inputs[0].data else {
            unreachable!("schema-checked input is a feature matrix");
        };
        let mut correct = 0usize;
        for r in 0..f.x.rows() {
            let mut z = 0.0f32;
            for c in 0..DIM {
                z += f.x.get(r, c) - 0.55;
            }
            if (z > 0.0) as usize == f.y[r] {
                correct += 1;
            }
        }
        let acc = correct as f64 / f.x.rows() as f64;
        Ok(Artifact::new(
            ArtifactData::Model(ModelArtifact {
                family: "whatif".into(),
                blob: vec![1u8; 32],
                score: Score::new(MetricKind::Accuracy, acc),
            }),
            self.output_schema(),
        ))
    }
    fn work_units(&self, inputs: &[Artifact]) -> u64 {
        inputs.iter().map(|a| a.byte_len()).sum::<u64>().max(1)
    }
}

/// The what-if scenario: slot names, every registrable version, the
/// committed base pipeline, and the what-if swap candidates.
pub struct WhatIf {
    /// Slot names in (topological) chain order.
    pub slots: Vec<&'static str>,
    /// Every component version, for registration.
    pub handles: Vec<ComponentHandle>,
    /// The committed base pipeline (variant 0 in the swap slot).
    pub base: Vec<ComponentKey>,
    /// The swap-slot versions, base first then the what-if variants.
    pub variants: Vec<ComponentKey>,
    /// An alternative ingest version producing *different data* — swapping
    /// it in must invalidate every downstream frontier fingerprint.
    pub alt_ingest: ComponentKey,
    /// Index of the swap slot (`select`).
    pub swap_slot: usize,
}

impl WhatIf {
    /// The pipeline chain `ingest -> clean -> featurize -> select -> train`.
    pub fn dag(&self) -> PipelineDag {
        PipelineDag::chain(&self.slots).expect("what-if slots form a valid chain")
    }

    /// Registers every component version with a registry.
    pub fn register_all(&self, registry: &ComponentRegistry) -> Result<()> {
        for h in &self.handles {
            registry.register(h.clone())?;
        }
        Ok(())
    }

    /// The what-if candidate space: one version everywhere except the swap
    /// slot, which carries the base version and every variant. A merge
    /// search over this space *is* the what-if batch.
    pub fn spaces(&self) -> SearchSpaces {
        let per_slot = self
            .base
            .iter()
            .enumerate()
            .map(|(i, k)| {
                if i == self.swap_slot {
                    self.variants.clone()
                } else {
                    vec![k.clone()]
                }
            })
            .collect();
        SearchSpaces {
            slot_names: self.slots.iter().map(|s| s.to_string()).collect(),
            per_slot,
        }
    }

    /// The base pipeline with the swap slot replaced by `variant`.
    pub fn swap(&self, variant: &ComponentKey) -> Vec<ComponentKey> {
        let mut keys = self.base.clone();
        keys[self.swap_slot] = variant.clone();
        keys
    }

    /// The base pipeline with the *ingest* slot replaced by the alternative
    /// data version.
    pub fn swap_ingest(&self) -> Vec<ComponentKey> {
        let mut keys = self.base.clone();
        keys[0] = self.alt_ingest.clone();
        keys
    }
}

/// Builds the scenario: heavy 3-stage prefix, light 2-stage suffix, and
/// [`VARIANTS`] what-if versions of the `select` stage.
pub fn build() -> WhatIf {
    let slots = vec!["ingest", "clean", "featurize", "select", "train"];
    let ingest = Arc::new(WhatIfIngest {
        version: SemVer::master(0, 0),
    });
    let alt_ingest = Arc::new(WhatIfIngest {
        version: SemVer::master(0, 1),
    });
    let clean = Arc::new(WhatIfHeavy {
        name: "clean",
        lr: 0.05,
    });
    let featurize = Arc::new(WhatIfHeavy {
        name: "featurize",
        lr: 0.07,
    });
    let selects: Vec<Arc<WhatIfSelect>> = (0..=VARIANTS as u32)
        .map(|i| {
            Arc::new(WhatIfSelect {
                version: SemVer::master(0, i),
            })
        })
        .collect();
    let train = Arc::new(WhatIfTrain);

    let base = vec![
        ingest.key(),
        clean.key(),
        featurize.key(),
        selects[0].key(),
        train.key(),
    ];
    let variants = selects.iter().map(|s| s.key()).collect();
    let mut handles: Vec<ComponentHandle> =
        vec![ingest, alt_ingest.clone(), clean, featurize, train];
    handles.extend(selects.into_iter().map(|s| s as ComponentHandle));
    WhatIf {
        slots,
        handles,
        base,
        variants,
        alt_ingest: alt_ingest.key(),
        swap_slot: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_shape() {
        let w = build();
        assert_eq!(w.slots.len(), 5);
        assert_eq!(w.base.len(), 5);
        assert_eq!(w.variants.len(), VARIANTS + 1);
        assert_eq!(w.base[w.swap_slot], w.variants[0]);
        assert_eq!(w.spaces().candidate_upper_bound(), VARIANTS + 1);
        assert_eq!(
            w.dag().topo_order().unwrap(),
            (0..5).collect::<Vec<usize>>()
        );
    }

    #[test]
    fn swaps_change_exactly_one_slot() {
        let w = build();
        for v in &w.variants[1..] {
            let keys = w.swap(v);
            let diffs = keys.iter().zip(&w.base).filter(|(a, b)| a != b).count();
            assert_eq!(diffs, 1);
            assert_eq!(&keys[w.swap_slot], v);
        }
        let alt = w.swap_ingest();
        assert_eq!(alt[0], w.alt_ingest);
        assert_eq!(alt[1..], w.base[1..]);
    }

    #[test]
    fn components_register_and_run() {
        use mlcask_storage::store::ChunkStore;
        let w = build();
        let store = Arc::new(ChunkStore::in_memory_small());
        let reg = ComponentRegistry::new(store);
        w.register_all(&reg).unwrap();
        for k in &w.base {
            assert!(reg.resolve(k).is_ok());
        }
        assert!(reg.resolve(&w.alt_ingest).is_ok());
    }
}
