//! The DPM (Disease Progression Modeling) pipeline (§VII-A).
//!
//! `dataset → clean → seq_extract → hmm_debias → model`: chronic-kidney
//! patients' one-year lab series are cleaned, discretised into observation
//! sequences, de-biased through an HMM whose state posteriors become
//! features, and fed to a DL model. HMM processing is the expensive stage —
//! the paper calls out iterations 3 and 8 of Fig. 5(b) where updates on or
//! before the HMM force its costly re-execution.

use crate::common::{mlp_work_units, train_eval_mlp, Workload};
use crate::data::ckd;
use mlcask_ml::hmm::Hmm;
use mlcask_ml::mlp::MlpConfig;
use mlcask_ml::tensor::Matrix;
use mlcask_pipeline::artifact::{Artifact, ArtifactData, Cell, Features, SequenceSet, Table};
use mlcask_pipeline::component::{Component, ComponentHandle, ComponentKey, StageKind};
use mlcask_pipeline::errors::{PipelineError, Result};
use mlcask_pipeline::schema::{Schema, SchemaId};
use mlcask_pipeline::semver::SemVer;
use std::sync::Arc;

/// Patients generated.
pub const N_PATIENTS: usize = 100;
/// Visits per patient.
pub const N_VISITS: usize = 16;
/// Observation symbols after discretisation.
pub const N_SYMBOLS: usize = 6;
/// HMM states of the `0.x` de-bias versions.
pub const STATES_V0: usize = 3;
/// HMM states of the schema-changing `1.0` version.
pub const STATES_V1: usize = 5;

/// Feature dimension produced by an HMM with `s` states: average posterior
/// (s) + final posterior (s) + 2 summary stats.
pub fn hmm_feature_dim(states: usize) -> usize {
    2 * states + 2
}

fn ckd_schema() -> Schema {
    Schema::Relational {
        columns: ckd::columns(),
    }
}

fn seq_schema() -> Schema {
    Schema::Sequences {
        n_symbols: N_SYMBOLS,
        n_classes: 2,
    }
}

struct DpmData {
    version: SemVer,
}

impl Component for DpmData {
    fn name(&self) -> &str {
        "dpm_data"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::Ingest
    }
    fn input_schema(&self) -> Option<SchemaId> {
        None
    }
    fn output_schema(&self) -> SchemaId {
        ckd_schema().id()
    }
    fn run(&self, _inputs: &[Artifact]) -> Result<Artifact> {
        let t = ckd::generate(
            N_PATIENTS,
            N_VISITS,
            0.08,
            70 + self.version.increment as u64,
        );
        Ok(Artifact::new(ArtifactData::Table(t), self.output_schema()))
    }
    fn work_units(&self, _inputs: &[Artifact]) -> u64 {
        (N_PATIENTS * N_VISITS * 6) as u64
    }
    fn ns_per_unit(&self) -> u64 {
        2_000
    }
}

/// Cleansing: per-patient forward fill of missing labs (v0.1+ falls back to
/// the column mean for leading nulls; v0.0 uses zero).
struct DpmClean {
    version: SemVer,
}

impl Component for DpmClean {
    fn name(&self) -> &str {
        "dpm_clean"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::PreProcess
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(ckd_schema().id())
    }
    fn output_schema(&self) -> SchemaId {
        ckd_schema().id()
    }
    fn run(&self, inputs: &[Artifact]) -> Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Table(t) = &inputs[0].data else {
            return Err(PipelineError::WrongArtifactKind {
                component: self.key(),
                expected: "table",
                actual: inputs[0].data.kind_label(),
            });
        };
        let numeric_cols: Vec<usize> = ["egfr", "creatinine", "potassium"]
            .iter()
            .map(|c| t.col_index(c).unwrap())
            .collect();
        // Column means for leading-null fallback (v0.1+).
        let mut means = vec![0.0f32; t.columns.len()];
        for &c in &numeric_cols {
            let vals: Vec<f32> = t.rows.iter().filter_map(|r| r[c].as_f32()).collect();
            means[c] = vals.iter().sum::<f32>() / vals.len().max(1) as f32;
        }
        let pid_col = t.col_index("patient_id").unwrap();
        let mut rows = t.rows.clone();
        let mut last_seen: std::collections::HashMap<(i64, usize), f32> = Default::default();
        for row in rows.iter_mut() {
            let pid = match row[pid_col] {
                Cell::I(p) => p,
                _ => -1,
            };
            for &c in &numeric_cols {
                match row[c].as_f32() {
                    Some(v) => {
                        last_seen.insert((pid, c), v);
                    }
                    None => {
                        let fill = last_seen.get(&(pid, c)).copied().unwrap_or(
                            if self.version.increment == 0 {
                                0.0
                            } else {
                                // Increments refine the fallback estimate.
                                means[c] * (1.0 + 0.02 * (self.version.increment - 1) as f32)
                            },
                        );
                        row[c] = Cell::F(fill);
                    }
                }
            }
        }
        Ok(Artifact::new(
            ArtifactData::Table(Table::new(t.columns.clone(), rows)),
            self.output_schema(),
        ))
    }
    fn work_units(&self, inputs: &[Artifact]) -> u64 {
        inputs.first().map(|a| a.byte_len() / 8).unwrap_or(1)
    }
    fn ns_per_unit(&self) -> u64 {
        1_200
    }
}

/// Discretises per-patient eGFR trajectories into symbol sequences.
struct SeqExtract {
    version: SemVer,
}

impl Component for SeqExtract {
    fn name(&self) -> &str {
        "seq_extract"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::PreProcess
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(ckd_schema().id())
    }
    fn output_schema(&self) -> SchemaId {
        seq_schema().id()
    }
    fn run(&self, inputs: &[Artifact]) -> Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Table(t) = &inputs[0].data else {
            return Err(PipelineError::WrongArtifactKind {
                component: self.key(),
                expected: "table",
                actual: inputs[0].data.kind_label(),
            });
        };
        let pid_col = t.col_index("patient_id").unwrap();
        let egfr_col = t.col_index("egfr").unwrap();
        let creat_col = t.col_index("creatinine").unwrap();
        let label_col = t.col_index("progressed").unwrap();
        // v0.1+ blends creatinine into the discretised signal, with each
        // increment adjusting the blend weight.
        let blend = if self.version.increment == 0 {
            0.0
        } else {
            0.12 + 0.03 * self.version.increment as f32
        };
        let mut seqs: Vec<Vec<usize>> = Vec::new();
        let mut labels: Vec<usize> = Vec::new();
        let mut current_pid = i64::MIN;
        for row in &t.rows {
            let pid = match row[pid_col] {
                Cell::I(p) => p,
                _ => continue,
            };
            if pid != current_pid {
                current_pid = pid;
                seqs.push(Vec::with_capacity(N_VISITS));
                labels.push(match row[label_col] {
                    Cell::I(v) => v as usize,
                    _ => 0,
                });
            }
            let egfr = row[egfr_col].as_f32().unwrap_or(60.0);
            let creat = row[creat_col].as_f32().unwrap_or(1.0);
            let signal = egfr - blend * creat * 10.0;
            // eGFR bands (CKD stages-ish) → symbols 0..N_SYMBOLS.
            let sym = ((120.0 - signal.clamp(5.0, 120.0)) / (115.0 / N_SYMBOLS as f32)) as usize;
            seqs.last_mut().unwrap().push(sym.min(N_SYMBOLS - 1));
        }
        Ok(Artifact::new(
            ArtifactData::Sequences(SequenceSet {
                seqs,
                labels,
                n_symbols: N_SYMBOLS,
                n_classes: 2,
            }),
            self.output_schema(),
        ))
    }
    fn work_units(&self, inputs: &[Artifact]) -> u64 {
        inputs.first().map(|a| a.byte_len() / 6).unwrap_or(1)
    }
    fn ns_per_unit(&self) -> u64 {
        1_500
    }
}

/// HMM de-biasing: Baum–Welch over the sequences, posterior features out.
/// `schema = 1` uses more hidden states → wider output (schema change).
struct HmmDebias {
    version: SemVer,
    iterations: usize,
}

impl HmmDebias {
    fn states(&self) -> usize {
        if self.version.schema >= 1 {
            STATES_V1
        } else {
            STATES_V0
        }
    }
}

impl Component for HmmDebias {
    fn name(&self) -> &str {
        "hmm_debias"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::PreProcess
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(seq_schema().id())
    }
    fn output_schema(&self) -> SchemaId {
        Schema::FeatureMatrix {
            dim: hmm_feature_dim(self.states()),
            n_classes: 2,
        }
        .id()
    }
    fn run(&self, inputs: &[Artifact]) -> Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Sequences(s) = &inputs[0].data else {
            return Err(PipelineError::WrongArtifactKind {
                component: self.key(),
                expected: "sequences",
                actual: inputs[0].data.kind_label(),
            });
        };
        let states = self.states();
        let mut hmm = Hmm::random(states, s.n_symbols, 500 + self.version.increment as u64);
        hmm.fit(&s.seqs, self.iterations);
        let dim = hmm_feature_dim(states);
        let mut x = Matrix::zeros(s.seqs.len(), dim);
        for (r, seq) in s.seqs.iter().enumerate() {
            if seq.is_empty() {
                continue;
            }
            let gamma = hmm.posteriors(seq);
            for g in &gamma {
                for (k, v) in g.iter().enumerate() {
                    let cur = x.get(r, k);
                    x.set(r, k, cur + (*v as f32) / gamma.len() as f32);
                }
            }
            for (k, v) in gamma.last().unwrap().iter().enumerate() {
                x.set(r, states + k, *v as f32);
            }
            let mean_sym = seq.iter().sum::<usize>() as f32 / seq.len() as f32;
            x.set(r, 2 * states, mean_sym / s.n_symbols as f32);
            x.set(
                r,
                2 * states + 1,
                hmm.log_likelihood(seq) as f32 / seq.len() as f32 / 10.0,
            );
        }
        Ok(Artifact::new(
            ArtifactData::Features(Features {
                x,
                y: s.labels.clone(),
                n_classes: 2,
            }),
            self.output_schema(),
        ))
    }
    fn work_units(&self, _inputs: &[Artifact]) -> u64 {
        let hmm = Hmm::random(self.states(), N_SYMBOLS, 0);
        hmm.work_units(N_PATIENTS * N_VISITS, self.iterations)
    }
    fn ns_per_unit(&self) -> u64 {
        // HMM processing dominates DPM pre-processing (Fig. 6b).
        9_000
    }
}

/// Terminal DL model.
struct DpmModel {
    version: SemVer,
    expects_states: usize,
    config: MlpConfig,
}

impl Component for DpmModel {
    fn name(&self) -> &str {
        "dpm_model"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::ModelTraining
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(
            Schema::FeatureMatrix {
                dim: hmm_feature_dim(self.expects_states),
                n_classes: 2,
            }
            .id(),
        )
    }
    fn output_schema(&self) -> SchemaId {
        Schema::Model {
            family: "dpm-dl".into(),
        }
        .id()
    }
    fn run(&self, inputs: &[Artifact]) -> Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Features(f) = &inputs[0].data else {
            return Err(PipelineError::WrongArtifactKind {
                component: self.key(),
                expected: "features",
                actual: inputs[0].data.kind_label(),
            });
        };
        let model = train_eval_mlp(f, self.config.clone(), "dpm-dl");
        Ok(Artifact::new(
            ArtifactData::Model(model),
            self.output_schema(),
        ))
    }
    fn work_units(&self, _inputs: &[Artifact]) -> u64 {
        mlp_work_units(
            hmm_feature_dim(self.expects_states),
            &self.config,
            N_PATIENTS,
        )
    }
    fn ns_per_unit(&self) -> u64 {
        1_000
    }
}

fn model_config(increment: u32) -> MlpConfig {
    let widths = [8usize, 12, 16, 16, 20, 24, 28, 32];
    let i = (increment as usize).min(widths.len() - 1);
    MlpConfig {
        hidden: vec![widths[i]],
        learning_rate: 0.1,
        epochs: 10 + 2 * i,
        batch_size: 16,
        l2: 1e-4,
        seed: 200 + increment as u64,
    }
}

/// Builds the DPM workload with its full version family.
pub fn build() -> Workload {
    let mk_key = |h: &ComponentHandle| h.key();
    let data: ComponentHandle = Arc::new(DpmData {
        version: SemVer::master(0, 0),
    });
    let cleans: Vec<ComponentHandle> = (0..5)
        .map(|i| -> ComponentHandle {
            Arc::new(DpmClean {
                version: SemVer::master(0, i),
            })
        })
        .collect();
    let extracts: Vec<ComponentHandle> = (0..4)
        .map(|i| -> ComponentHandle {
            Arc::new(SeqExtract {
                version: SemVer::master(0, i),
            })
        })
        .collect();
    // HMM de-bias: 0.0–0.3 with STATES_V0 (growing iterations), 1.0 with
    // STATES_V1 (schema change).
    let mut hmms: Vec<ComponentHandle> = (0..4)
        .map(|i| -> ComponentHandle {
            Arc::new(HmmDebias {
                version: SemVer::master(0, i),
                iterations: 8 + 2 * i as usize,
            })
        })
        .collect();
    hmms.push(Arc::new(HmmDebias {
        version: SemVer::master(1, 0),
        iterations: 12,
    }));
    let mut models: Vec<ComponentHandle> = Vec::new();
    for inc in [0u32, 1, 4, 5, 6, 7] {
        models.push(Arc::new(DpmModel {
            version: SemVer::master(0, inc),
            expects_states: STATES_V0,
            config: model_config(inc),
        }));
    }
    for inc in [2u32, 3] {
        models.push(Arc::new(DpmModel {
            version: SemVer::master(0, inc),
            expects_states: STATES_V1,
            config: model_config(inc),
        }));
    }
    let find_model = |inc: u32| -> ComponentKey {
        models
            .iter()
            .map(mk_key)
            .find(|k| k.version.increment == inc)
            .expect("model version exists")
    };

    let slots = vec![
        "dpm_data".to_string(),
        "dpm_clean".to_string(),
        "seq_extract".to_string(),
        "hmm_debias".to_string(),
        "dpm_model".to_string(),
    ];
    let initial = vec![
        data.key(),
        cleans[0].key(),
        extracts[0].key(),
        hmms[0].key(),
        find_model(0),
    ];
    let chains = vec![
        vec![data.key()],
        cleans.iter().map(mk_key).collect(),
        extracts.iter().map(mk_key).collect(),
        hmms[..4].iter().map(mk_key).collect(),
        vec![
            find_model(0),
            find_model(1),
            find_model(4),
            find_model(5),
            find_model(6),
            find_model(7),
        ],
    ];
    let hmm_v1 = hmms[4].key();
    let head_updates = vec![vec![
        data.key(),
        cleans[1].key(),
        extracts[0].key(),
        hmms[0].key(),
        find_model(4),
    ]];
    let dev_updates = vec![
        vec![
            data.key(),
            cleans[0].key(),
            extracts[0].key(),
            hmms[0].key(),
            find_model(1),
        ],
        vec![
            data.key(),
            cleans[0].key(),
            extracts[0].key(),
            hmm_v1.clone(),
            find_model(2),
        ],
        vec![
            data.key(),
            cleans[0].key(),
            extracts[0].key(),
            hmm_v1.clone(),
            find_model(3),
        ],
    ];

    let mut handles = vec![data];
    handles.extend(cleans);
    handles.extend(extracts);
    handles.extend(hmms);
    handles.extend(models);
    Workload {
        name: "dpm".into(),
        slots,
        handles,
        initial,
        chains,
        model_slot: 4,
        incompat_update: (3, hmm_v1),
        head_updates,
        dev_updates,
        edges: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcask_pipeline::clock::ClockLedger;
    use mlcask_pipeline::dag::BoundPipeline;
    use mlcask_pipeline::executor::{ExecOptions, Executor};
    use mlcask_storage::store::ChunkStore;

    fn run_pipeline(w: &Workload, keys: &[ComponentKey]) -> (f64, ClockLedger) {
        let store = ChunkStore::in_memory_small();
        let exec = Executor::new(&store);
        let handles: Vec<ComponentHandle> = keys
            .iter()
            .map(|k| w.handles.iter().find(|h| &h.key() == k).unwrap().clone())
            .collect();
        let bound = BoundPipeline::new(Arc::new(w.dag()), handles).unwrap();
        let clock = ClockLedger::new();
        let report = exec
            .run(&bound, &clock, None, ExecOptions::RERUN_ALL)
            .unwrap();
        (report.outcome.score().expect("completed").raw, clock)
    }

    #[test]
    fn structure_is_valid() {
        let w = build();
        w.validate();
        assert_eq!(w.slots.len(), 5);
        assert_eq!(w.preproc_slots(), vec![1, 2, 3]);
    }

    #[test]
    fn initial_pipeline_learns_progression() {
        let w = build();
        let (score, clock) = run_pipeline(&w, &w.initial);
        assert!(score > 0.6, "DPM accuracy {score}");
        // Pre-processing (HMM) dominates (Fig. 6b).
        let snap = clock.snapshot();
        assert!(
            snap.preprocess_ns > snap.training_ns,
            "preproc {} vs training {}",
            snap.preprocess_ns,
            snap.training_ns
        );
    }

    #[test]
    fn schema_change_pairs_with_adapted_model() {
        let w = build();
        let (score, _) = run_pipeline(&w, &w.dev_updates[1]);
        assert!(score > 0.5);
    }

    #[test]
    fn hmm_feature_dims_differ_across_schema_versions() {
        assert_ne!(hmm_feature_dim(STATES_V0), hmm_feature_dim(STATES_V1));
    }
}
