//! # mlcask-workloads
//!
//! The four real-world pipelines of the MLCask evaluation (§VII-A), rebuilt
//! on synthetic data with full component-version families:
//!
//! * [`readmission`] — 30-day hospital readmission (clean → extract → CNN);
//!   model training dominates.
//! * [`dpm`] — disease progression modeling (clean → sequence extraction →
//!   HMM de-biasing → DL model); the HMM stage dominates.
//! * [`sa`] — movie-review sentiment analysis (corpus processing → word
//!   embeddings → DL model); embedding training dominates.
//! * [`autolearn`] — digit classification with Zernike moments + Autolearn
//!   feature generation + AdaBoost; feature generation dominates.
//!
//! Beyond the paper's four chains, [`fusion`] adds a *diamond* pipeline
//! (two independent pre-processing branches fused before the model) that
//! exercises the executor's DAG-internal parallelism, and [`whatif`] adds
//! the what-if component-swap scenario (heavy shared prefix, cheap swapped
//! suffix) that exercises provenance-keyed incremental re-evaluation.
//!
//! Every workload carries the version structure the experiments need: an
//! increment-only chain per slot for the linear-versioning scenario, one
//! schema-changing update for the injected incompatibility, and the Fig. 3
//! branch histories for the merge scenario ([`scenario`]).

#![warn(missing_docs)]

pub mod autolearn;
pub mod common;
pub mod data;
pub mod dpm;
pub mod errors;
pub mod fusion;
pub mod readmission;
pub mod sa;
pub mod scenario;
pub mod whatif;

use common::Workload;

/// Builds all four chain workloads (the paper's evaluation set). The
/// non-chain [`fusion`] workload is deliberately excluded so the figure
/// harnesses keep reproducing the paper's numbers; fetch it via [`by_name`]
/// or [`fusion::build`].
pub fn all_workloads() -> Vec<Workload> {
    vec![
        readmission::build(),
        dpm::build(),
        sa::build(),
        autolearn::build(),
    ]
}

/// Builds a workload by name (the paper's four plus `fusion`).
pub fn by_name(name: &str) -> Option<Workload> {
    match name {
        "readmission" => Some(readmission::build()),
        "dpm" => Some(dpm::build()),
        "sa" => Some(sa::build()),
        "autolearn" => Some(autolearn::build()),
        "fusion" => Some(fusion::build()),
        _ => None,
    }
}

/// Common imports for downstream crates.
pub mod prelude {
    pub use crate::common::Workload;
    pub use crate::scenario::{
        build_multi_tenant, build_system, join_workspace, linear_update_sequence, setup_nonlinear,
        LinearScenario, TenantSystem,
    };
    pub use crate::whatif::WhatIf;
    pub use crate::{all_workloads, by_name};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_workloads_valid() {
        let ws = all_workloads();
        assert_eq!(ws.len(), 4);
        let names: Vec<&str> = ws.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names, vec!["readmission", "dpm", "sa", "autolearn"]);
        for w in &ws {
            w.validate();
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("dpm").is_some());
        assert!(by_name("unknown").is_none());
    }
}
