//! Error alias for the workloads crate (delegates to the core error type).

pub use mlcask_core::errors::{CoreError, Result};
