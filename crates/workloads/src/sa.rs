//! The SA (sentiment analysis) pipeline (§VII-A).
//!
//! `dataset → corpus_clean → token_filter → embed_featurize → model`: the
//! first three steps process the corpus and train word embeddings; the last
//! trains the classifier. Embedding training is the expensive step — the
//! paper points at iteration 9 of Fig. 5(c) where a word-embedding update
//! forces its costly re-execution.

use crate::common::{mlp_work_units, train_eval_mlp, Workload};
use crate::data::reviews;
use mlcask_ml::embedding::{Embedding, EmbeddingConfig};
use mlcask_ml::mlp::MlpConfig;
use mlcask_ml::tensor::Matrix;
use mlcask_pipeline::artifact::{Artifact, ArtifactData, Docs, Features};
use mlcask_pipeline::component::{Component, ComponentHandle, ComponentKey, StageKind};
use mlcask_pipeline::errors::{PipelineError, Result};
use mlcask_pipeline::schema::{Schema, SchemaId};
use mlcask_pipeline::semver::SemVer;
use std::sync::Arc;

/// Reviews generated.
pub const N_REVIEWS: usize = 240;
/// Tokens per review.
pub const REVIEW_LEN: usize = 24;
/// Embedding dimension of the `0.x` featurizer versions.
pub const DIM_V0: usize = 10;
/// Embedding dimension of the schema-changing `1.0` version.
pub const DIM_V1: usize = 16;

fn corpus_schema() -> Schema {
    Schema::TextCorpus {
        vocab_size: reviews::POSITIVE.len() + reviews::NEGATIVE.len() + reviews::NEUTRAL.len(),
    }
}

/// Feature dim = embedding dim + 2 summary statistics.
pub fn feature_dim(embed_dim: usize) -> usize {
    embed_dim + 2
}

struct SaData {
    version: SemVer,
}

impl Component for SaData {
    fn name(&self) -> &str {
        "sa_data"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::Ingest
    }
    fn input_schema(&self) -> Option<SchemaId> {
        None
    }
    fn output_schema(&self) -> SchemaId {
        corpus_schema().id()
    }
    fn run(&self, _inputs: &[Artifact]) -> Result<Artifact> {
        let d = reviews::generate(N_REVIEWS, REVIEW_LEN, 90 + self.version.increment as u64);
        Ok(Artifact::new(ArtifactData::Docs(d), self.output_schema()))
    }
    fn work_units(&self, _inputs: &[Artifact]) -> u64 {
        (N_REVIEWS * REVIEW_LEN) as u64
    }
    fn ns_per_unit(&self) -> u64 {
        2_000
    }
}

/// Corpus normalisation: lowercasing plus (v0.1+) collapsing of immediate
/// duplicate tokens.
struct CorpusClean {
    version: SemVer,
}

impl Component for CorpusClean {
    fn name(&self) -> &str {
        "corpus_clean"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::PreProcess
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(corpus_schema().id())
    }
    fn output_schema(&self) -> SchemaId {
        corpus_schema().id()
    }
    fn run(&self, inputs: &[Artifact]) -> Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Docs(d) = &inputs[0].data else {
            return Err(PipelineError::WrongArtifactKind {
                component: self.key(),
                expected: "docs",
                actual: inputs[0].data.kind_label(),
            });
        };
        let dedup = self.version.increment >= 1;
        // Later increments additionally truncate overly long reviews, so
        // every version emits a distinct corpus.
        let max_len = if self.version.increment >= 2 {
            REVIEW_LEN.saturating_sub(self.version.increment as usize)
        } else {
            usize::MAX
        };
        let docs = d
            .docs
            .iter()
            .map(|doc| {
                let mut out: Vec<String> = Vec::with_capacity(doc.len());
                for t in doc.iter().take(max_len) {
                    let t = t.to_lowercase();
                    if dedup && out.last() == Some(&t) {
                        continue;
                    }
                    out.push(t);
                }
                out
            })
            .collect();
        Ok(Artifact::new(
            ArtifactData::Docs(Docs {
                docs,
                labels: d.labels.clone(),
                vocab_size: d.vocab_size,
            }),
            self.output_schema(),
        ))
    }
    fn work_units(&self, inputs: &[Artifact]) -> u64 {
        inputs.first().map(|a| a.byte_len() / 16).unwrap_or(1)
    }
    fn ns_per_unit(&self) -> u64 {
        1_200
    }
}

/// Rare-token filtering: drops tokens whose corpus frequency falls below a
/// version-dependent threshold.
struct TokenFilter {
    version: SemVer,
}

impl Component for TokenFilter {
    fn name(&self) -> &str {
        "token_filter"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::PreProcess
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(corpus_schema().id())
    }
    fn output_schema(&self) -> SchemaId {
        corpus_schema().id()
    }
    fn run(&self, inputs: &[Artifact]) -> Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Docs(d) = &inputs[0].data else {
            return Err(PipelineError::WrongArtifactKind {
                component: self.key(),
                expected: "docs",
                actual: inputs[0].data.kind_label(),
            });
        };
        // Thresholds scale with the corpus so each version filters a
        // different slice of the frequency tail.
        let min_count = 2 + 40 * self.version.increment as usize;
        let mut counts: std::collections::HashMap<&str, usize> = Default::default();
        for doc in &d.docs {
            for t in doc {
                *counts.entry(t.as_str()).or_default() += 1;
            }
        }
        let docs: Vec<Vec<String>> = d
            .docs
            .iter()
            .map(|doc| {
                doc.iter()
                    .filter(|t| counts.get(t.as_str()).copied().unwrap_or(0) >= min_count)
                    .cloned()
                    .collect()
            })
            .collect();
        Ok(Artifact::new(
            ArtifactData::Docs(Docs {
                docs,
                labels: d.labels.clone(),
                vocab_size: d.vocab_size,
            }),
            self.output_schema(),
        ))
    }
    fn work_units(&self, inputs: &[Artifact]) -> u64 {
        inputs.first().map(|a| a.byte_len() / 16).unwrap_or(1)
    }
    fn ns_per_unit(&self) -> u64 {
        1_200
    }
}

/// Embedding training + document featurisation (the costly stage). The
/// `schema = 1` version widens the embedding dimension (schema change).
struct EmbedFeaturize {
    version: SemVer,
    iterations: usize,
}

impl EmbedFeaturize {
    fn dim(&self) -> usize {
        if self.version.schema >= 1 {
            DIM_V1
        } else {
            DIM_V0
        }
    }
}

impl Component for EmbedFeaturize {
    fn name(&self) -> &str {
        "embed_featurize"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::PreProcess
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(corpus_schema().id())
    }
    fn output_schema(&self) -> SchemaId {
        Schema::FeatureMatrix {
            dim: feature_dim(self.dim()),
            n_classes: 2,
        }
        .id()
    }
    fn run(&self, inputs: &[Artifact]) -> Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Docs(d) = &inputs[0].data else {
            return Err(PipelineError::WrongArtifactKind {
                component: self.key(),
                expected: "docs",
                actual: inputs[0].data.kind_label(),
            });
        };
        let emb = Embedding::train(
            &d.docs,
            EmbeddingConfig {
                dim: self.dim(),
                window: 3,
                iterations: self.iterations,
                min_count: 1,
            },
        );
        let dim = feature_dim(self.dim());
        let mut x = Matrix::zeros(d.docs.len(), dim);
        for (r, doc) in d.docs.iter().enumerate() {
            let v = emb.embed_document(doc);
            for (c, val) in v.iter().enumerate() {
                x.set(r, c, *val);
            }
            x.set(r, self.dim(), doc.len() as f32 / REVIEW_LEN as f32);
            let distinct: std::collections::HashSet<&String> = doc.iter().collect();
            x.set(
                r,
                self.dim() + 1,
                distinct.len() as f32 / doc.len().max(1) as f32,
            );
        }
        Ok(Artifact::new(
            ArtifactData::Features(Features {
                x,
                y: d.labels.clone(),
                n_classes: 2,
            }),
            self.output_schema(),
        ))
    }
    fn work_units(&self, _inputs: &[Artifact]) -> u64 {
        let vocab = reviews::POSITIVE.len() + reviews::NEGATIVE.len() + reviews::NEUTRAL.len();
        Embedding::work_units(
            vocab,
            &EmbeddingConfig {
                dim: self.dim(),
                window: 3,
                iterations: self.iterations,
                min_count: 1,
            },
        )
    }
    fn ns_per_unit(&self) -> u64 {
        // Word-embedding training dominates SA pre-processing (Fig. 6c).
        150_000
    }
}

/// Terminal sentiment classifier.
struct SaModel {
    version: SemVer,
    expects_embed_dim: usize,
    config: MlpConfig,
}

impl Component for SaModel {
    fn name(&self) -> &str {
        "sa_model"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::ModelTraining
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(
            Schema::FeatureMatrix {
                dim: feature_dim(self.expects_embed_dim),
                n_classes: 2,
            }
            .id(),
        )
    }
    fn output_schema(&self) -> SchemaId {
        Schema::Model {
            family: "sa-dl".into(),
        }
        .id()
    }
    fn run(&self, inputs: &[Artifact]) -> Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Features(f) = &inputs[0].data else {
            return Err(PipelineError::WrongArtifactKind {
                component: self.key(),
                expected: "features",
                actual: inputs[0].data.kind_label(),
            });
        };
        let model = train_eval_mlp(f, self.config.clone(), "sa-dl");
        Ok(Artifact::new(
            ArtifactData::Model(model),
            self.output_schema(),
        ))
    }
    fn work_units(&self, _inputs: &[Artifact]) -> u64 {
        mlp_work_units(feature_dim(self.expects_embed_dim), &self.config, N_REVIEWS)
    }
    fn ns_per_unit(&self) -> u64 {
        1_200
    }
}

fn model_config(increment: u32) -> MlpConfig {
    let widths = [12usize, 14, 16, 16, 18, 20, 22, 24];
    let i = (increment as usize).min(widths.len() - 1);
    MlpConfig {
        hidden: vec![widths[i]],
        learning_rate: 0.1,
        epochs: 12 + 2 * i,
        batch_size: 32,
        l2: 1e-4,
        seed: 300 + increment as u64,
    }
}

/// Builds the SA workload with its full version family.
pub fn build() -> Workload {
    let mk_key = |h: &ComponentHandle| h.key();
    let data: ComponentHandle = Arc::new(SaData {
        version: SemVer::master(0, 0),
    });
    let cleans: Vec<ComponentHandle> = (0..5)
        .map(|i| -> ComponentHandle {
            Arc::new(CorpusClean {
                version: SemVer::master(0, i),
            })
        })
        .collect();
    let filters: Vec<ComponentHandle> = (0..4)
        .map(|i| -> ComponentHandle {
            Arc::new(TokenFilter {
                version: SemVer::master(0, i),
            })
        })
        .collect();
    let mut embeds: Vec<ComponentHandle> = (0..4)
        .map(|i| -> ComponentHandle {
            Arc::new(EmbedFeaturize {
                version: SemVer::master(0, i),
                iterations: 10 + 3 * i as usize,
            })
        })
        .collect();
    embeds.push(Arc::new(EmbedFeaturize {
        version: SemVer::master(1, 0),
        iterations: 14,
    }));
    let mut models: Vec<ComponentHandle> = Vec::new();
    for inc in [0u32, 1, 4, 5, 6, 7] {
        models.push(Arc::new(SaModel {
            version: SemVer::master(0, inc),
            expects_embed_dim: DIM_V0,
            config: model_config(inc),
        }));
    }
    for inc in [2u32, 3] {
        models.push(Arc::new(SaModel {
            version: SemVer::master(0, inc),
            expects_embed_dim: DIM_V1,
            config: model_config(inc),
        }));
    }
    let find_model = |inc: u32| -> ComponentKey {
        models
            .iter()
            .map(mk_key)
            .find(|k| k.version.increment == inc)
            .expect("model version exists")
    };

    let slots = vec![
        "sa_data".to_string(),
        "corpus_clean".to_string(),
        "token_filter".to_string(),
        "embed_featurize".to_string(),
        "sa_model".to_string(),
    ];
    let initial = vec![
        data.key(),
        cleans[0].key(),
        filters[0].key(),
        embeds[0].key(),
        find_model(0),
    ];
    let chains = vec![
        vec![data.key()],
        cleans.iter().map(mk_key).collect(),
        filters.iter().map(mk_key).collect(),
        embeds[..4].iter().map(mk_key).collect(),
        vec![
            find_model(0),
            find_model(1),
            find_model(4),
            find_model(5),
            find_model(6),
            find_model(7),
        ],
    ];
    let embed_v1 = embeds[4].key();
    let head_updates = vec![vec![
        data.key(),
        cleans[1].key(),
        filters[0].key(),
        embeds[0].key(),
        find_model(4),
    ]];
    let dev_updates = vec![
        vec![
            data.key(),
            cleans[0].key(),
            filters[0].key(),
            embeds[0].key(),
            find_model(1),
        ],
        vec![
            data.key(),
            cleans[0].key(),
            filters[0].key(),
            embed_v1.clone(),
            find_model(2),
        ],
        vec![
            data.key(),
            cleans[0].key(),
            filters[0].key(),
            embed_v1.clone(),
            find_model(3),
        ],
    ];

    let mut handles = vec![data];
    handles.extend(cleans);
    handles.extend(filters);
    handles.extend(embeds);
    handles.extend(models);
    Workload {
        name: "sa".into(),
        slots,
        handles,
        initial,
        chains,
        model_slot: 4,
        incompat_update: (3, embed_v1),
        head_updates,
        dev_updates,
        edges: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcask_pipeline::clock::ClockLedger;
    use mlcask_pipeline::dag::BoundPipeline;
    use mlcask_pipeline::executor::{ExecOptions, Executor};
    use mlcask_storage::store::ChunkStore;

    fn run_pipeline(w: &Workload, keys: &[ComponentKey]) -> (f64, ClockLedger) {
        let store = ChunkStore::in_memory_small();
        let exec = Executor::new(&store);
        let handles: Vec<ComponentHandle> = keys
            .iter()
            .map(|k| w.handles.iter().find(|h| &h.key() == k).unwrap().clone())
            .collect();
        let bound = BoundPipeline::new(Arc::new(w.dag()), handles).unwrap();
        let clock = ClockLedger::new();
        let report = exec
            .run(&bound, &clock, None, ExecOptions::RERUN_ALL)
            .unwrap();
        (report.outcome.score().expect("completed").raw, clock)
    }

    #[test]
    fn structure_is_valid() {
        let w = build();
        w.validate();
        assert_eq!(w.slots.len(), 5);
    }

    #[test]
    fn initial_pipeline_separates_sentiment() {
        let w = build();
        let (score, clock) = run_pipeline(&w, &w.initial);
        assert!(score > 0.7, "SA accuracy {score}");
        // Embedding (pre-processing) dominates (Fig. 6c).
        let snap = clock.snapshot();
        assert!(snap.preprocess_ns > snap.training_ns);
    }

    #[test]
    fn wide_embedding_with_adapted_model_works() {
        let w = build();
        let (score, _) = run_pipeline(&w, &w.dev_updates[1]);
        assert!(score > 0.6);
    }
}
