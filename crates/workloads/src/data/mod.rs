//! Synthetic data generators standing in for the paper's proprietary
//! datasets (NUH EHR extracts, movie reviews, digit images).
//!
//! Each generator is seeded and deterministic, and reproduces the
//! *structural* properties the pipelines exercise: relational schemas with
//! missing values for the cleansing stages, label-correlated signals so the
//! models genuinely learn, and version-sensitive content so dataset updates
//! change artifact hashes.

pub mod ckd;
pub mod digits;
pub mod ehr;
pub mod reviews;
