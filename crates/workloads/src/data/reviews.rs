//! Synthetic movie reviews for the SA (sentiment analysis) pipeline.
//!
//! Reviews are sampled from sentiment-bearing word pools mixed with neutral
//! filler, so co-occurrence embeddings genuinely separate the classes and a
//! downstream classifier has real signal.

use mlcask_pipeline::artifact::Docs;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Positive sentiment vocabulary.
pub const POSITIVE: [&str; 12] = [
    "great",
    "excellent",
    "wonderful",
    "superb",
    "masterpiece",
    "moving",
    "brilliant",
    "delightful",
    "captivating",
    "stunning",
    "charming",
    "perfect",
];

/// Negative sentiment vocabulary.
pub const NEGATIVE: [&str; 12] = [
    "terrible",
    "awful",
    "boring",
    "dreadful",
    "mess",
    "tedious",
    "bland",
    "clumsy",
    "forgettable",
    "painful",
    "shallow",
    "incoherent",
];

/// Neutral filler vocabulary.
pub const NEUTRAL: [&str; 16] = [
    "movie",
    "film",
    "plot",
    "actor",
    "scene",
    "director",
    "story",
    "screen",
    "character",
    "dialogue",
    "music",
    "ending",
    "camera",
    "script",
    "cast",
    "pacing",
];

/// Generates `n` labelled reviews of roughly `len` tokens each.
pub fn generate(n: usize, len: usize, seed: u64) -> Docs {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut docs = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let positive = i % 2 == 0;
        let pool: &[&str] = if positive { &POSITIVE } else { &NEGATIVE };
        let other: &[&str] = if positive { &NEGATIVE } else { &POSITIVE };
        let mut tokens = Vec::with_capacity(len);
        for _ in 0..len {
            // ~25% sentiment-bearing, with occasional contamination from the
            // opposite pool ("not bad", sarcasm, quoted reviews) so the task
            // is genuinely hard and candidate scores spread out.
            if rng.gen_bool(0.22) {
                if rng.gen_bool(0.18) {
                    tokens.push(other.choose(&mut rng).unwrap().to_string());
                } else {
                    tokens.push(pool.choose(&mut rng).unwrap().to_string());
                }
            } else {
                tokens.push(NEUTRAL.choose(&mut rng).unwrap().to_string());
            }
        }
        docs.push(tokens);
        labels.push(usize::from(positive));
    }
    let vocab_size = POSITIVE.len() + NEGATIVE.len() + NEUTRAL.len();
    Docs {
        docs,
        labels,
        vocab_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let d = generate(50, 20, 3);
        assert_eq!(d.docs.len(), 50);
        assert_eq!(d.labels.len(), 50);
        assert!(d.docs.iter().all(|doc| doc.len() == 20));
        assert_eq!(d.docs, generate(50, 20, 3).docs);
    }

    #[test]
    fn classes_balanced() {
        let d = generate(100, 10, 4);
        let pos = d.labels.iter().filter(|&&l| l == 1).count();
        assert_eq!(pos, 50);
    }

    #[test]
    fn sentiment_words_separate_classes_in_aggregate() {
        let d = generate(200, 30, 5);
        let pos_set: std::collections::HashSet<&str> = POSITIVE.into_iter().collect();
        let neg_set: std::collections::HashSet<&str> = NEGATIVE.into_iter().collect();
        let mut own_hits = 0usize;
        let mut other_hits = 0usize;
        for (doc, &label) in d.docs.iter().zip(&d.labels) {
            let pos_hits = doc.iter().filter(|t| pos_set.contains(t.as_str())).count();
            let neg_hits = doc.iter().filter(|t| neg_set.contains(t.as_str())).count();
            if label == 1 {
                own_hits += pos_hits;
                other_hits += neg_hits;
            } else {
                own_hits += neg_hits;
                other_hits += pos_hits;
            }
        }
        // Contamination exists (the task is hard) but the dominant signal is
        // from the class's own pool.
        assert!(other_hits > 0, "contamination should be present");
        assert!(
            own_hits > other_hits * 3,
            "own-pool {own_hits} vs contamination {other_hits}"
        );
    }
}
