//! Synthetic digit-like images for the Autolearn pipeline.
//!
//! Each class is a deterministic stroke template (horizontal/vertical bars,
//! diagonals, rings) rendered at 16×16 with per-sample jitter and noise —
//! enough shape variety that Zernike moments separate the classes.

use mlcask_ml::zernike::Image;
use mlcask_pipeline::artifact::ImageSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Image side length.
pub const SIDE: usize = 16;

/// Number of digit classes generated.
pub const N_CLASSES: usize = 6;

fn render_template(class: usize, jitter: (i32, i32), rng: &mut StdRng, noise: f32) -> Image {
    let mut px = vec![0.0f32; SIDE * SIDE];
    let s = SIDE as i32;
    let set = |x: i32, y: i32, px: &mut Vec<f32>| {
        let x = x + jitter.0;
        let y = y + jitter.1;
        if (0..s).contains(&x) && (0..s).contains(&y) {
            px[(y * s + x) as usize] = 1.0;
        }
    };
    match class {
        // 0: ring
        0 => {
            let c = (s - 1) as f32 / 2.0;
            for y in 0..s {
                for x in 0..s {
                    let d = ((x as f32 - c).powi(2) + (y as f32 - c).powi(2)).sqrt();
                    if (d - 5.0).abs() < 1.0 {
                        set(x, y, &mut px);
                    }
                }
            }
        }
        // 1: vertical bar
        1 => {
            for y in 2..s - 2 {
                set(s / 2, y, &mut px);
                set(s / 2 - 1, y, &mut px);
            }
        }
        // 2: horizontal bars top/middle/bottom
        2 => {
            for x in 3..s - 3 {
                set(x, 3, &mut px);
                set(x, s / 2, &mut px);
                set(x, s - 4, &mut px);
            }
        }
        // 3: main diagonal
        3 => {
            for i in 2..s - 2 {
                set(i, i, &mut px);
                set(i + 1, i, &mut px);
            }
        }
        // 4: cross
        4 => {
            for i in 2..s - 2 {
                set(i, s / 2, &mut px);
                set(s / 2, i, &mut px);
            }
        }
        // 5: two vertical bars
        _ => {
            for y in 2..s - 2 {
                set(4, y, &mut px);
                set(s - 5, y, &mut px);
            }
        }
    }
    // Pixel noise.
    for p in px.iter_mut() {
        if rng.gen_bool(noise as f64) {
            *p = 1.0 - *p;
        }
    }
    Image::new(SIDE, px)
}

/// Generates `n` labelled images with the given pixel-flip noise rate.
pub fn generate(n: usize, noise: f32, seed: u64) -> ImageSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut images = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % N_CLASSES;
        let jitter = (rng.gen_range(-2i32..=2), rng.gen_range(-2i32..=2));
        images.push(render_template(class, jitter, &mut rng, noise));
        labels.push(class);
    }
    ImageSet {
        images,
        labels,
        n_classes: N_CLASSES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcask_ml::zernike::zernike_moments;

    #[test]
    fn shape_and_determinism() {
        let s = generate(30, 0.01, 2);
        assert_eq!(s.images.len(), 30);
        assert!(s.images.iter().all(|i| i.side == SIDE));
        assert_eq!(s.labels, generate(30, 0.01, 2).labels);
        assert_eq!(s.images[0].pixels, generate(30, 0.01, 2).images[0].pixels);
    }

    #[test]
    fn classes_cycle() {
        let s = generate(12, 0.0, 1);
        assert_eq!(s.labels, vec![0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn templates_have_distinct_moments() {
        let s = generate(N_CLASSES, 0.0, 3);
        let moments: Vec<Vec<f32>> = s.images.iter().map(|i| zernike_moments(i, 6)).collect();
        for a in 0..N_CLASSES {
            for b in (a + 1)..N_CLASSES {
                let dist: f32 = moments[a]
                    .iter()
                    .zip(&moments[b])
                    .map(|(x, y)| (x - y).abs())
                    .sum();
                assert!(dist > 0.02, "classes {a} and {b} indistinguishable: {dist}");
            }
        }
    }

    #[test]
    fn noise_flips_pixels() {
        let clean = generate(6, 0.0, 4);
        let noisy = generate(6, 0.3, 4);
        let diff: usize = clean.images[0]
            .pixels
            .iter()
            .zip(&noisy.images[0].pixels)
            .filter(|(a, b)| a != b)
            .count();
        assert!(diff > 20, "noise should flip a visible number of pixels");
    }
}
