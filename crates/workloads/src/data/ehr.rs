//! Synthetic hospital-admission records for the Readmission pipeline.
//!
//! Mimics the NUHS setting (§II): inpatient episodes with demographics,
//! diagnosis codes (some missing — the cleansing stage fills them), lab
//! results, and a 30-day readmission label correlated with the features.

use mlcask_pipeline::artifact::{Cell, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Diagnosis code pool (ICD-10-ish).
pub const DX_CODES: [&str; 8] = ["I10", "E11", "N18", "J44", "I50", "C34", "K70", "F32"];

/// Number of lab columns generated.
pub const N_LABS: usize = 6;

/// Column layout of the admissions table.
pub fn columns() -> Vec<String> {
    let mut cols = vec![
        "patient_id".to_string(),
        "age".to_string(),
        "gender".to_string(),
        "dx_code".to_string(),
        "num_procedures".to_string(),
        "los_days".to_string(),
    ];
    for i in 0..N_LABS {
        cols.push(format!("lab_{i}"));
    }
    cols.push("readmitted".to_string());
    cols
}

/// Generates `n` admission episodes. `missing_rate` controls the fraction
/// of null diagnosis codes and lab values (the cleansing stage's work).
pub fn generate(n: usize, missing_rate: f64, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    for pid in 0..n {
        let age = rng.gen_range(18.0f32..95.0);
        let gender = if rng.gen_bool(0.5) { "M" } else { "F" };
        let dx_idx = rng.gen_range(0..DX_CODES.len());
        let n_procs = rng.gen_range(0i64..6);
        // Risk score drives both labs and the label.
        let risk =
            (age - 18.0) / 77.0 * 0.4 + dx_idx as f32 / 8.0 * 0.3 + n_procs as f32 / 6.0 * 0.3;
        let los = 1.0 + risk * 20.0 + rng.gen_range(-0.5f32..0.5);
        let mut row = vec![
            Cell::I(pid as i64),
            Cell::F(age),
            Cell::S(gender.to_string()),
            if rng.gen_bool(missing_rate) {
                Cell::Null
            } else {
                Cell::S(DX_CODES[dx_idx].to_string())
            },
            Cell::I(n_procs),
            Cell::F(los.max(1.0)),
        ];
        for lab in 0..N_LABS {
            if rng.gen_bool(missing_rate) {
                row.push(Cell::Null);
            } else {
                let base = (lab as f32 + 1.0) * 10.0;
                row.push(Cell::F(
                    base * (1.0 + 2.0 * risk) + rng.gen_range(-1.0f32..1.0),
                ));
            }
        }
        // Sharpen the risk-label link so model quality is measurable.
        let p_readmit = (0.02 + (risk as f64).powf(1.5) * 1.1).min(0.97);
        row.push(Cell::I(if rng.gen_bool(p_readmit) { 1 } else { 0 }));
        rows.push(row);
    }
    Table::new(columns(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let t = generate(100, 0.1, 7);
        assert_eq!(t.rows.len(), 100);
        assert_eq!(t.columns.len(), 6 + N_LABS + 1);
        let t2 = generate(100, 0.1, 7);
        assert_eq!(t, t2);
        assert_ne!(t, generate(100, 0.1, 8));
    }

    #[test]
    fn missing_rate_controls_nulls() {
        let none = generate(200, 0.0, 1);
        assert_eq!(none.null_count(), 0);
        let some = generate(200, 0.3, 1);
        // dx + labs eligible: 7 cells/row; expect roughly 30%.
        let frac = some.null_count() as f64 / (200.0 * 7.0);
        assert!((0.2..0.4).contains(&frac), "null fraction {frac}");
    }

    #[test]
    fn labels_are_binary_and_correlated() {
        let t = generate(500, 0.0, 3);
        let label_col = t.col_index("readmitted").unwrap();
        let age_col = t.col_index("age").unwrap();
        let mut age_pos = 0.0;
        let mut n_pos = 0.0;
        let mut age_neg = 0.0;
        let mut n_neg = 0.0;
        for r in &t.rows {
            let y = match r[label_col] {
                Cell::I(v) => v,
                _ => panic!("label must be an integer"),
            };
            assert!(y == 0 || y == 1);
            let age = r[age_col].as_f32().unwrap() as f64;
            if y == 1 {
                age_pos += age;
                n_pos += 1.0;
            } else {
                age_neg += age;
                n_neg += 1.0;
            }
        }
        assert!(n_pos > 20.0 && n_neg > 20.0, "both classes present");
        assert!(
            age_pos / n_pos > age_neg / n_neg,
            "older patients readmit more"
        );
    }
}
