//! Synthetic chronic-kidney-disease lab time series for the DPM pipeline.
//!
//! Each patient contributes one year of periodic visits with eGFR/creatinine
//! style measurements (some missing). The progression label reflects the
//! latent decline-rate regime, which also shapes the measurement
//! trajectories — so the HMM de-biasing stage has real temporal structure to
//! model.

use mlcask_pipeline::artifact::{Cell, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Column layout of the visit table.
pub fn columns() -> Vec<String> {
    vec![
        "patient_id".to_string(),
        "visit".to_string(),
        "egfr".to_string(),
        "creatinine".to_string(),
        "potassium".to_string(),
        "progressed".to_string(),
    ]
}

/// Generates `n_patients × visits` rows of longitudinal labs.
pub fn generate(n_patients: usize, visits: usize, missing_rate: f64, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n_patients * visits);
    for pid in 0..n_patients {
        // Latent regime: stable (slow decline) vs progressive (fast).
        let progressive = rng.gen_bool(0.45);
        let decline = if progressive {
            rng.gen_range(1.5f32..3.0)
        } else {
            rng.gen_range(0.0f32..0.6)
        };
        let mut egfr = rng.gen_range(55.0f32..95.0);
        for v in 0..visits {
            egfr = (egfr - decline + rng.gen_range(-1.5f32..1.5)).clamp(5.0, 120.0);
            let creat = (80.0 / egfr.max(5.0)) * rng.gen_range(0.9f32..1.1);
            let potassium = 4.0 + (60.0 - egfr).max(0.0) / 40.0 + rng.gen_range(-0.3f32..0.3);
            let mk = |v: f32, rng: &mut StdRng| {
                if rng.gen_bool(missing_rate) {
                    Cell::Null
                } else {
                    Cell::F(v)
                }
            };
            let egfr_cell = mk(egfr, &mut rng);
            let creat_cell = mk(creat, &mut rng);
            let pot_cell = mk(potassium, &mut rng);
            rows.push(vec![
                Cell::I(pid as i64),
                Cell::I(v as i64),
                egfr_cell,
                creat_cell,
                pot_cell,
                Cell::I(progressive as i64),
            ]);
        }
    }
    Table::new(columns(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let t = generate(20, 12, 0.05, 11);
        assert_eq!(t.rows.len(), 20 * 12);
        assert_eq!(t.columns.len(), 6);
        assert_eq!(t, generate(20, 12, 0.05, 11));
    }

    #[test]
    fn progressive_patients_decline_faster() {
        let t = generate(60, 12, 0.0, 5);
        let egfr_col = t.col_index("egfr").unwrap();
        let label_col = t.col_index("progressed").unwrap();
        let pid_col = t.col_index("patient_id").unwrap();
        // Mean first-to-last eGFR drop per class.
        let mut drops = [0.0f64; 2];
        let mut counts = [0.0f64; 2];
        for pid in 0..60i64 {
            let patient_rows: Vec<_> = t
                .rows
                .iter()
                .filter(|r| matches!(r[pid_col], Cell::I(p) if p == pid))
                .collect();
            let label = match patient_rows[0][label_col] {
                Cell::I(v) => v as usize,
                _ => unreachable!(),
            };
            let first = patient_rows.first().unwrap()[egfr_col].as_f32().unwrap();
            let last = patient_rows.last().unwrap()[egfr_col].as_f32().unwrap();
            drops[label] += (first - last) as f64;
            counts[label] += 1.0;
        }
        assert!(counts[0] > 5.0 && counts[1] > 5.0);
        assert!(
            drops[1] / counts[1] > drops[0] / counts[0] + 3.0,
            "progressive class should decline much faster"
        );
    }

    #[test]
    fn missing_rate_respected() {
        let t = generate(30, 10, 0.2, 9);
        let frac = t.null_count() as f64 / (30.0 * 10.0 * 3.0);
        assert!((0.12..0.28).contains(&frac), "null fraction {frac}");
    }
}
