//! Shared scaffolding for the evaluation workloads.
//!
//! Every workload exposes the same structure: a pipeline DAG (the paper's
//! four pipelines are chains; [`crate::fusion`] is a diamond), a family of
//! component versions mirroring the paper's Figs. 2–3 histories, an
//! increment-only *linear chain* per slot (for the Fig. 5–7 scenario), one
//! schema-changing *incompatible update* (the last linear iteration), and
//! the Fig. 3 branch histories (for the Fig. 8–10 merge scenario).

use crate::errors::Result;
use mlcask_core::registry::ComponentRegistry;
use mlcask_ml::metrics::{MetricKind, Score};
use mlcask_ml::mlp::{Mlp, MlpConfig};
use mlcask_pipeline::artifact::{Features, ModelArtifact};
use mlcask_pipeline::component::{ComponentHandle, ComponentKey};
use mlcask_pipeline::dag::PipelineDag;

/// A fully described evaluation workload.
pub struct Workload {
    /// Workload name (matches the paper: readmission / dpm / sa / autolearn).
    pub name: String,
    /// Slot names in pipeline order.
    pub slots: Vec<String>,
    /// Every component version (to be registered before use).
    pub handles: Vec<ComponentHandle>,
    /// The initial (`0.0` everywhere) pipeline.
    pub initial: Vec<ComponentKey>,
    /// Increment-only version chain per slot (index-aligned with `slots`);
    /// `chain[0]` is the initial version.
    pub chains: Vec<Vec<ComponentKey>>,
    /// Which slot holds the model.
    pub model_slot: usize,
    /// The schema-changing pre-processing update injected at the last
    /// linear-versioning iteration: `(slot, version)`.
    pub incompat_update: (usize, ComponentKey),
    /// Successive full pipelines committed on HEAD after branching (Fig. 3).
    pub head_updates: Vec<Vec<ComponentKey>>,
    /// Successive full pipelines committed on MERGE_HEAD (Fig. 3).
    pub dev_updates: Vec<Vec<ComponentKey>>,
    /// Data-flow edges by slot name. Empty means a linear chain over
    /// `slots` (the shape of the paper's four pipelines); non-empty gives
    /// the full DAG (e.g. the [`crate::fusion`] diamond). Slot order must
    /// be topological.
    pub edges: Vec<(String, String)>,
}

impl Workload {
    /// The pipeline DAG: a chain over `slots` unless explicit `edges` give
    /// a non-chain shape.
    pub fn dag(&self) -> PipelineDag {
        let names: Vec<&str> = self.slots.iter().map(|s| s.as_str()).collect();
        if self.edges.is_empty() {
            return PipelineDag::chain(&names).expect("workload slots form a valid chain");
        }
        let mut dag = PipelineDag::new();
        for n in &names {
            dag.add_node(n).expect("workload slot names are unique");
        }
        for (f, t) in &self.edges {
            dag.add_edge(f, t)
                .expect("workload edges reference known slots");
        }
        dag
    }

    /// Registers every component version with a registry.
    pub fn register_all(&self, registry: &ComponentRegistry) -> Result<()> {
        for h in &self.handles {
            registry.register(h.clone())?;
        }
        Ok(())
    }

    /// Pre-processing slots (everything but the dataset and the model).
    pub fn preproc_slots(&self) -> Vec<usize> {
        (1..self.slots.len())
            .filter(|&i| i != self.model_slot)
            .collect()
    }

    /// Sanity checks the internal structure (used by tests).
    pub fn validate(&self) {
        assert_eq!(self.slots.len(), self.chains.len());
        assert_eq!(self.slots.len(), self.initial.len());
        for (slot, chain) in self.chains.iter().enumerate() {
            assert!(!chain.is_empty(), "slot {slot} has an empty chain");
            assert_eq!(chain[0], self.initial[slot], "chain must start at initial");
            for k in chain {
                assert_eq!(k.name, self.slots[slot], "chain key in wrong slot");
            }
        }
        assert!(self.model_slot < self.slots.len());
        let (slot, ref v) = self.incompat_update;
        assert!(
            slot != self.model_slot,
            "incompat update must be pre-processing"
        );
        assert_eq!(v.name, self.slots[slot]);
        for update in self.head_updates.iter().chain(self.dev_updates.iter()) {
            assert_eq!(update.len(), self.slots.len());
        }
        // The DAG must be well-formed *and* listed in topological slot
        // order (node ids equal slot indices; the merge-search tree indexes
        // per-level path state by predecessor slot). With in-order slots,
        // the canonical topo order is exactly 0..n.
        let order = self.dag().topo_order().expect("workload DAG is acyclic");
        assert_eq!(
            order,
            (0..self.slots.len()).collect::<Vec<_>>(),
            "workload slots must be listed in topological order"
        );
    }
}

/// Deterministic train/eval split: every `k`-th sample held out.
pub fn holdout_split(n: usize, every_k: usize) -> (Vec<usize>, Vec<usize>) {
    let mut train = Vec::with_capacity(n);
    let mut eval = Vec::with_capacity(n / every_k + 1);
    for i in 0..n {
        if i % every_k == 0 {
            eval.push(i);
        } else {
            train.push(i);
        }
    }
    (train, eval)
}

/// Deterministic *stratified* split: within each class, every `k`-th member
/// is held out. Generators emit labels in cyclic patterns, so a plain
/// every-`k`-th split can collapse the eval set onto a single class; the
/// stratified variant keeps class proportions intact.
pub fn stratified_holdout(labels: &[usize], every_k: usize) -> (Vec<usize>, Vec<usize>) {
    let mut per_class_seen: std::collections::HashMap<usize, usize> = Default::default();
    let mut train = Vec::with_capacity(labels.len());
    let mut eval = Vec::with_capacity(labels.len() / every_k + 1);
    for (i, &y) in labels.iter().enumerate() {
        let seen = per_class_seen.entry(y).or_insert(0);
        if (*seen).is_multiple_of(every_k) {
            eval.push(i);
        } else {
            train.push(i);
        }
        *seen += 1;
    }
    (train, eval)
}

/// Trains an MLP on a deterministic split of `features` and packages the
/// held-out metric as a model artifact — the standard terminal stage of the
/// Readmission/DPM/SA pipelines.
///
/// Binary tasks are scored by held-out **AUC**: it is continuous, so the
/// metric-driven merge and prioritized search see real orderings rather
/// than the ties a small-eval-set accuracy would produce. Multiclass tasks
/// fall back to accuracy.
pub fn train_eval_mlp(features: &Features, config: MlpConfig, family: &str) -> ModelArtifact {
    let (train_idx, eval_idx) = stratified_holdout(&features.y, 4);
    let x_train = features.x.select_rows(&train_idx);
    let y_train: Vec<usize> = train_idx.iter().map(|&i| features.y[i]).collect();
    let x_eval = features.x.select_rows(&eval_idx);
    let y_eval: Vec<usize> = eval_idx.iter().map(|&i| features.y[i]).collect();
    let mut mlp = Mlp::new(features.x.cols(), features.n_classes, config.clone());
    let final_loss = mlp.fit(&x_train, &y_train);
    let score = if features.n_classes == 2 {
        let probs = mlp.predict_proba(&x_eval);
        let pos: Vec<f64> = (0..x_eval.rows()).map(|r| probs.get(r, 1) as f64).collect();
        Score::new(MetricKind::Auc, mlcask_ml::metrics::auc(&pos, &y_eval))
    } else {
        Score::new(MetricKind::Accuracy, mlp.evaluate(&x_eval, &y_eval))
    };
    let blob = serde_json::to_vec(&(config, final_loss, mlp.loss_history.clone()))
        .expect("model summary serialises");
    ModelArtifact {
        family: family.to_string(),
        blob,
        score,
    }
}

/// MLP training work in abstract units for the given shape (mirrors
/// `Mlp::training_work_units` without constructing the network).
pub fn mlp_work_units(input_dim: usize, config: &MlpConfig, n_samples: usize) -> u64 {
    let mut dims = vec![input_dim];
    dims.extend_from_slice(&config.hidden);
    dims.push(2);
    let params: usize = dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum();
    (params as u64) * (n_samples as u64) * (config.epochs as u64) * 6
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcask_ml::mlp::synthetic_classification;

    #[test]
    fn holdout_split_partitions() {
        let (train, eval) = holdout_split(10, 4);
        assert_eq!(eval, vec![0, 4, 8]);
        assert_eq!(train.len(), 7);
        let mut all: Vec<usize> = train.iter().chain(eval.iter()).copied().collect();
        all.sort();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn train_eval_mlp_produces_score() {
        let (x, y) = synthetic_classification(200, 6, 2, 0.2, 9);
        let f = Features { x, y, n_classes: 2 };
        let m = train_eval_mlp(&f, MlpConfig::default(), "test");
        assert!(m.score.raw > 0.6, "separable data should score well");
        assert!(!m.blob.is_empty());
        assert_eq!(m.family, "test");
        // Deterministic.
        let m2 = train_eval_mlp(&f, MlpConfig::default(), "test");
        assert_eq!(m.score.raw, m2.score.raw);
    }

    #[test]
    fn work_units_formula_matches_model() {
        let cfg = MlpConfig {
            hidden: vec![8],
            ..Default::default()
        };
        let units = mlp_work_units(10, &cfg, 50);
        let model = Mlp::new(10, 2, cfg);
        assert_eq!(units, model.training_work_units(50));
    }
}
