//! Experiment scenario drivers (§VII-B).
//!
//! *Linear versioning*: "we perform a series of pipeline component updates
//! and pipeline retraining operations … In every iteration, we update the
//! pre-processing component at a probability of 0.4 and update the model
//! component at a probability of 0.6. At the last iteration, the pipeline is
//! designed to have an incompatibility problem between the last two
//! components."
//!
//! *Non-linear versioning*: "we first generate two branches, then update
//! components on both branches and merge the two updated branches" —
//! reproduced with the Fig. 3 histories each workload carries.

use crate::common::Workload;
use crate::errors::Result;
use mlcask_core::merge::MergeStrategy;
use mlcask_core::registry::ComponentRegistry;
use mlcask_core::system::{MergeOutcome, MlCask};
use mlcask_core::workspace::{Tenant, Workspace};
use mlcask_pipeline::clock::ClockLedger;
use mlcask_pipeline::component::ComponentKey;
use mlcask_pipeline::parallel::ParallelismPolicy;
use mlcask_storage::chunk::ChunkParams;
use mlcask_storage::costmodel::StorageCostModel;
use mlcask_storage::store::ChunkStore;
use mlcask_storage::tenant::{QuotaPolicy, ShareRight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Linear-versioning scenario parameters (paper defaults).
#[derive(Debug, Clone, Copy)]
pub struct LinearScenario {
    /// Number of iterations (10 in the paper).
    pub iterations: usize,
    /// Probability that an iteration updates a pre-processing component
    /// (0.4 in the paper; otherwise the model updates).
    pub p_update_preproc: f64,
    /// RNG seed controlling the update schedule.
    pub seed: u64,
}

impl Default for LinearScenario {
    fn default() -> Self {
        LinearScenario {
            iterations: 10,
            p_update_preproc: 0.4,
            seed: 42,
        }
    }
}

/// Produces the pipeline binding for every iteration of the linear
/// scenario. All systems under test replay this same sequence, so
/// comparisons isolate the system policies.
pub fn linear_update_sequence(w: &Workload, sc: &LinearScenario) -> Vec<Vec<ComponentKey>> {
    assert!(
        sc.iterations >= 2,
        "need at least initial + final iterations"
    );
    let mut rng = StdRng::seed_from_u64(sc.seed);
    let mut idx: Vec<usize> = vec![0; w.slots.len()];
    let preproc_slots = w.preproc_slots();
    let mut out = Vec::with_capacity(sc.iterations);
    out.push(w.initial.clone());
    let current = |idx: &[usize]| -> Vec<ComponentKey> {
        idx.iter()
            .enumerate()
            .map(|(s, &i)| w.chains[s][i].clone())
            .collect()
    };
    for it in 1..sc.iterations {
        if it == sc.iterations - 1 {
            // Final iteration: schema-changing pre-processing update without
            // a matching model update → incompatible pipeline.
            let (slot, ref v) = w.incompat_update;
            let mut keys = current(&idx);
            keys[slot] = v.clone();
            out.push(keys);
            break;
        }
        let update_preproc = rng.gen_bool(sc.p_update_preproc);
        let advanced = if update_preproc {
            advance_one(&mut idx, &preproc_slots, &w.chains, &mut rng)
        } else {
            advance_one(&mut idx, &[w.model_slot], &w.chains, &mut rng)
        };
        if !advanced {
            // Preferred kind exhausted; fall back to the other kind.
            let fallback: Vec<usize> = if update_preproc {
                vec![w.model_slot]
            } else {
                preproc_slots.clone()
            };
            advance_one(&mut idx, &fallback, &w.chains, &mut rng);
        }
        out.push(current(&idx));
    }
    out
}

/// Advances one randomly chosen slot (among `slots`) that still has unused
/// chain versions. Returns false if all given slots are exhausted.
fn advance_one(
    idx: &mut [usize],
    slots: &[usize],
    chains: &[Vec<ComponentKey>],
    rng: &mut StdRng,
) -> bool {
    let available: Vec<usize> = slots
        .iter()
        .copied()
        .filter(|&s| idx[s] + 1 < chains[s].len())
        .collect();
    if available.is_empty() {
        return false;
    }
    let slot = available[rng.gen_range(0..available.len())];
    idx[slot] += 1;
    true
}

/// Creates a fresh registry + MLCask system for a workload. The store
/// backend honours `MLCASK_BACKEND` (`mem` default, `cask`, `file`) so the
/// same scenarios drive CI's durable-backend matrix leg.
pub fn build_system(w: &Workload) -> Result<(Arc<ComponentRegistry>, MlCask)> {
    let store = Arc::new(ChunkStore::new(
        mlcask_storage::backend::backend_from_env(&w.name),
        ChunkParams::DEFAULT,
        StorageCostModel::FORKBASE,
    ));
    let registry = Arc::new(ComponentRegistry::new(store));
    w.register_all(&registry)?;
    let sys = MlCask::new(&w.name, w.dag(), Arc::clone(&registry));
    Ok((registry, sys))
}

/// One team's view of a shared multi-tenant workspace: the tenant handle,
/// its registry (built over the tenant-scoped store view), and its pipeline
/// system.
pub struct TenantSystem {
    /// The tenant handle (accounting + store view).
    pub tenant: Tenant,
    /// The team's component registry over the tenant store.
    pub registry: Arc<ComponentRegistry>,
    /// The team's pipeline system (branches namespaced by team name).
    pub sys: MlCask,
}

/// Registers one team as a tenant of `ws` and opens its pipeline system for
/// workload `w`: the registry is built over the tenant-scoped store view so
/// the team's library archives are attributed (and quota-checked) to it,
/// while deduplicating against every other team's chunks.
pub fn join_workspace(
    ws: &Arc<Workspace>,
    w: &Workload,
    team: &str,
    quota: QuotaPolicy,
) -> Result<TenantSystem> {
    let tenant = ws.add_tenant(team, quota)?;
    let registry = Arc::new(ComponentRegistry::new(Arc::clone(tenant.store())));
    w.register_all(&registry)?;
    let sys = tenant.open_pipeline(&w.name, w.dag(), Arc::clone(&registry));
    Ok(TenantSystem {
        tenant,
        registry,
        sys,
    })
}

/// Builds the multi-tenant collaboration scenario: `teams` teams share one
/// workspace (one deduplicating store, one commit graph, one checkpoint
/// history), each evolving its own copy of workload `w`. Because every team
/// registers the same component versions and datasets, the shared store
/// holds each blob **once** however many teams joined — the cross-pipeline
/// sharing the paper's collaborative setting is about.
pub fn build_multi_tenant(
    w: &Workload,
    teams: &[&str],
) -> Result<(Arc<Workspace>, Vec<TenantSystem>)> {
    let ws = Workspace::over(Arc::new(ChunkStore::new(
        mlcask_storage::backend::backend_from_env(&w.name),
        ChunkParams::DEFAULT,
        StorageCostModel::FORKBASE,
    )));
    let systems = teams
        .iter()
        .map(|team| join_workspace(&ws, w, team, QuotaPolicy::UNLIMITED))
        .collect::<Result<Vec<_>>>()?;
    Ok((ws, systems))
}

/// Outcome of the upstream/downstream collaboration scenario
/// ([`run_upstream_downstream`]).
pub struct Collaboration {
    /// The shared workspace.
    pub ws: Arc<Workspace>,
    /// The upstream team (owns `master`, grants the downstream team).
    pub upstream: TenantSystem,
    /// The downstream team (forks, evolves, contributes back).
    pub downstream: TenantSystem,
    /// The downstream team's cross-tenant merge back into
    /// `upstream/master`.
    pub merge: MergeOutcome,
    /// Virtual time consumed by the whole scenario.
    pub clock: ClockLedger,
}

/// Drives the paper's collaborative workflow across *two tenants* of one
/// workspace — the situation PAPER.md's merge semantics are about, which a
/// single tenant's `master`/`dev` branches only approximate:
///
/// 1. the upstream team commits the workload's initial pipeline and its
///    head-update sequence on `master`;
/// 2. upstream grants downstream [`ShareRight::MergeInto`] (which implies
///    `Fork` and `Read`);
/// 3. downstream forks `upstream/master` into its own `feature` branch
///    right after the initial commit — cross-namespace parentage, no bytes
///    copied — and applies the workload's dev-update sequence there;
/// 4. downstream merges `feature` back **into `upstream/master`** with the
///    full metric-driven search; the peer's cached outputs are reused
///    through the shared history, and every newly materialized candidate
///    output is charged to downstream.
///
/// The same `policy` is applied to both systems; all observables (merge
/// report, usages, commit ids) are byte-identical across worker counts.
pub fn run_upstream_downstream(w: &Workload, policy: ParallelismPolicy) -> Result<Collaboration> {
    let ws = Workspace::over(Arc::new(ChunkStore::new(
        mlcask_storage::backend::backend_from_env(&w.name),
        ChunkParams::DEFAULT,
        StorageCostModel::FORKBASE,
    )));
    let with_policy = |t: TenantSystem| TenantSystem {
        tenant: t.tenant,
        registry: t.registry,
        sys: t.sys.with_parallelism(policy),
    };
    let upstream = with_policy(join_workspace(&ws, w, "upstream", QuotaPolicy::UNLIMITED)?);
    let downstream = with_policy(join_workspace(
        &ws,
        w,
        "downstream",
        QuotaPolicy::UNLIMITED,
    )?);
    let clock = ClockLedger::new();
    upstream
        .sys
        .commit_pipeline("master", &w.initial, "initial pipeline", &clock)?;
    upstream
        .tenant
        .grant_to("downstream", ShareRight::MergeInto)?;
    downstream
        .tenant
        .fork_from("upstream", "master", "feature")?;
    for (i, keys) in w.head_updates.iter().enumerate() {
        let res =
            upstream
                .sys
                .commit_pipeline("master", keys, &format!("head update {i}"), &clock)?;
        assert!(res.commit.is_some(), "head update {i} must be committable");
    }
    for (i, keys) in w.dev_updates.iter().enumerate() {
        let res = downstream.sys.commit_pipeline(
            "feature",
            keys,
            &format!("feature update {i}"),
            &clock,
        )?;
        assert!(
            res.commit.is_some(),
            "feature update {i} must be committable"
        );
    }
    let merge =
        downstream
            .sys
            .merge_into("upstream", "master", "feature", MergeStrategy::Full, &clock)?;
    Ok(Collaboration {
        ws,
        upstream,
        downstream,
        merge,
        clock,
    })
}

/// Sets up the Fig. 3 non-linear history on a fresh system: the initial
/// commit on `master`, a `dev` branch, then the workload's head/dev update
/// sequences. Returns the clock used (development time, excluded from merge
/// measurements).
pub fn setup_nonlinear(sys: &MlCask, w: &Workload) -> Result<ClockLedger> {
    let clock = ClockLedger::new();
    sys.commit_pipeline("master", &w.initial, "initial pipeline", &clock)?;
    sys.branch("master", "dev")?;
    for (i, keys) in w.head_updates.iter().enumerate() {
        let res = sys.commit_pipeline("master", keys, &format!("head update {i}"), &clock)?;
        assert!(res.commit.is_some(), "head update {i} must be committable");
    }
    for (i, keys) in w.dev_updates.iter().enumerate() {
        let res = sys.commit_pipeline("dev", keys, &format!("dev update {i}"), &clock)?;
        assert!(res.commit.is_some(), "dev update {i} must be committable");
    }
    Ok(clock)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::readmission;
    use mlcask_core::merge::MergeStrategy;

    #[test]
    fn linear_sequence_structure() {
        let w = readmission::build();
        let sc = LinearScenario::default();
        let seq = linear_update_sequence(&w, &sc);
        assert_eq!(seq.len(), 10);
        assert_eq!(seq[0], w.initial);
        // Exactly one slot changes between consecutive iterations (except
        // possibly none if everything was exhausted).
        for wpair in seq.windows(2) {
            let diffs = wpair[0]
                .iter()
                .zip(wpair[1].iter())
                .filter(|(a, b)| a != b)
                .count();
            assert!(diffs <= 1, "at most one component updates per iteration");
        }
        // Final iteration contains the schema-changing update.
        let (slot, ref v) = w.incompat_update;
        assert_eq!(&seq[9][slot], v);
    }

    #[test]
    fn linear_sequence_is_deterministic() {
        let w = readmission::build();
        let sc = LinearScenario::default();
        assert_eq!(
            linear_update_sequence(&w, &sc),
            linear_update_sequence(&w, &sc)
        );
        let other = LinearScenario {
            seed: 7,
            ..LinearScenario::default()
        };
        assert_ne!(
            linear_update_sequence(&w, &sc),
            linear_update_sequence(&w, &other)
        );
    }

    #[test]
    fn nonlinear_setup_builds_fig3_history() {
        let w = readmission::build();
        let (_reg, sys) = build_system(&w).unwrap();
        setup_nonlinear(&sys, &w).unwrap();
        // master has initial + 1 head update; dev has 3 updates.
        assert_eq!(sys.graph().head("master").unwrap().seq, 1);
        assert_eq!(sys.graph().head("dev").unwrap().seq, 3);
        let spaces = sys.merge_search_spaces("master", "dev").unwrap();
        // Fig. 4's space: 1 dataset × 2 cleansing × 2 extraction × 5 CNN.
        assert_eq!(spaces.candidate_upper_bound(), 20);
    }

    #[test]
    fn multi_tenant_teams_share_physical_chunks() {
        let w = readmission::build();
        let (ws, teams) = build_multi_tenant(&w, &["team_a", "team_b", "team_c"]).unwrap();
        // All three teams registered identical component versions: the
        // second and third paid (almost) nothing physically.
        let usage = ws.usages();
        assert!(usage["team_a"].physical_bytes > 0);
        assert!(usage["team_b"].physical_bytes < usage["team_a"].physical_bytes / 10);
        assert_eq!(
            usage.values().map(|u| u.physical_bytes).sum::<u64>(),
            ws.store().physical_bytes()
        );
        // Each team drives its own Fig. 3 history on the shared graph.
        for t in &teams {
            setup_nonlinear(&t.sys, &w).unwrap();
        }
        assert_eq!(ws.graph().branches().len(), 6, "3 teams x (master, dev)");
        assert_eq!(
            teams[0].sys.graph().head("team_a/master").unwrap().seq,
            1,
            "namespaced branch visible in the shared graph"
        );
        // Identical pipelines: later teams reuse earlier teams' checkpoints
        // through the shared history, so the store grew sub-linearly.
        let logical = ws.store().stats().total().logical_bytes;
        let physical = ws.store().physical_bytes();
        assert!(
            logical as f64 / physical as f64 > 2.0,
            "dedup ratio {:.2} too low",
            logical as f64 / physical as f64
        );
    }

    #[test]
    fn upstream_downstream_collaboration_end_to_end() {
        let w = readmission::build();
        let c = run_upstream_downstream(&w, ParallelismPolicy::Sequential).unwrap();
        // The merge landed on the *upstream* branch with both heads as
        // parents, searched over both teams' histories.
        assert!(!c.merge.fast_forward);
        let commit = c.merge.commit.as_ref().unwrap();
        assert_eq!(commit.branch, "upstream/master");
        assert_eq!(commit.parents.len(), 2);
        let report = c.merge.report.as_ref().unwrap();
        assert_eq!(
            report.candidates_total, 20,
            "same Fig. 4 space as the single-tenant nonlinear setup"
        );
        assert!(report.reused_components > 0, "peer checkpoints reused");
        // Downstream paid for what it materialized; attribution still sums
        // to the store total and no reservations are left open.
        let usage = c.ws.usages();
        assert!(usage["downstream"].physical_bytes < usage["upstream"].physical_bytes);
        assert_eq!(
            usage.values().map(|u| u.physical_bytes).sum::<u64>(),
            c.ws.store().physical_bytes()
        );
        assert_eq!(c.ws.store().tenant_accounts().open_reservations(), 0);
        assert_eq!(c.downstream.tenant.branches(), vec!["feature"]);
    }

    #[test]
    fn nonlinear_merge_runs_end_to_end() {
        let w = readmission::build();
        let (_reg, sys) = build_system(&w).unwrap();
        setup_nonlinear(&sys, &w).unwrap();
        let clock = ClockLedger::new();
        let out = sys
            .merge("master", "dev", MergeStrategy::Full, &clock)
            .unwrap();
        assert!(!out.fast_forward);
        let report = out.report.unwrap();
        assert_eq!(report.candidates_total, 20);
        assert!(
            report.candidates_pruned > 0,
            "PC must prune some candidates"
        );
        assert!(report.reused_components > 0, "PR must reuse checkpoints");
        assert!(report.best.is_some());
    }
}
