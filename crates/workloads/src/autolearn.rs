//! The Autolearn pipeline (§VII-A).
//!
//! `dataset → zernike_extract → autolearn_feat → ada_model`: digit images
//! are turned into Zernike-moment features, the Autolearn algorithm (Kaul
//! et al.) generates and selects derived features, and an AdaBoost
//! classifier finishes the pipeline. Feature generation dominates the cost —
//! the paper points at iterations 5 and 9 of Fig. 5(d).

use crate::common::Workload;
use crate::data::digits;
use mlcask_ml::adaboost::{AdaBoost, AdaBoostConfig};
use mlcask_ml::autofeat::{AutoFeat, AutoFeatConfig};
use mlcask_ml::metrics::{MetricKind, Score};
use mlcask_ml::tensor::Matrix;
use mlcask_ml::zernike::{feature_count, zernike_moments};
use mlcask_pipeline::artifact::{Artifact, ArtifactData, Features, ModelArtifact};
use mlcask_pipeline::component::{Component, ComponentHandle, ComponentKey, StageKind};
use mlcask_pipeline::errors::{PipelineError, Result};
use mlcask_pipeline::schema::{Schema, SchemaId};
use mlcask_pipeline::semver::SemVer;
use std::sync::Arc;

/// Images generated.
pub const N_IMAGES: usize = 240;
/// Zernike moment order used by the extractor.
pub const MOMENT_ORDER: u32 = 8;
/// Generated features kept by `0.x` Autolearn versions.
pub const TOP_K_V0: usize = 8;
/// Generated features kept by the schema-changing `1.0` version.
pub const TOP_K_V1: usize = 14;

fn image_schema() -> Schema {
    Schema::ImageSet {
        side: digits::SIDE,
        n_classes: digits::N_CLASSES,
    }
}

/// Zernike feature dimension.
pub fn zernike_dim() -> usize {
    feature_count(MOMENT_ORDER)
}

/// Output dimension of the Autolearn stage for a given `top_k`.
pub fn autolearn_dim(top_k: usize) -> usize {
    zernike_dim() + top_k
}

struct DigitsData {
    version: SemVer,
}

impl Component for DigitsData {
    fn name(&self) -> &str {
        "digits_data"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::Ingest
    }
    fn input_schema(&self) -> Option<SchemaId> {
        None
    }
    fn output_schema(&self) -> SchemaId {
        image_schema().id()
    }
    fn run(&self, _inputs: &[Artifact]) -> Result<Artifact> {
        let s = digits::generate(N_IMAGES, 0.015, 120 + self.version.increment as u64);
        Ok(Artifact::new(ArtifactData::Images(s), self.output_schema()))
    }
    fn work_units(&self, _inputs: &[Artifact]) -> u64 {
        (N_IMAGES * digits::SIDE * digits::SIDE) as u64
    }
    fn ns_per_unit(&self) -> u64 {
        1_000
    }
}

/// Zernike-moment extraction; `increment` adds light normalisation tweaks.
struct ZernikeExtract {
    version: SemVer,
}

impl Component for ZernikeExtract {
    fn name(&self) -> &str {
        "zernike_extract"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::PreProcess
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(image_schema().id())
    }
    fn output_schema(&self) -> SchemaId {
        Schema::FeatureMatrix {
            dim: zernike_dim(),
            n_classes: digits::N_CLASSES,
        }
        .id()
    }
    fn run(&self, inputs: &[Artifact]) -> Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Images(s) = &inputs[0].data else {
            return Err(PipelineError::WrongArtifactKind {
                component: self.key(),
                expected: "images",
                actual: inputs[0].data.kind_label(),
            });
        };
        let dim = zernike_dim();
        let scale = 1.0 + self.version.increment as f32 * 0.05;
        let mut x = Matrix::zeros(s.images.len(), dim);
        for (r, img) in s.images.iter().enumerate() {
            for (c, m) in zernike_moments(img, MOMENT_ORDER).iter().enumerate() {
                x.set(r, c, m * scale);
            }
        }
        Ok(Artifact::new(
            ArtifactData::Features(Features {
                x,
                y: s.labels.clone(),
                n_classes: s.n_classes,
            }),
            self.output_schema(),
        ))
    }
    fn work_units(&self, _inputs: &[Artifact]) -> u64 {
        mlcask_ml::zernike::work_units(N_IMAGES, digits::SIDE, MOMENT_ORDER)
    }
    fn ns_per_unit(&self) -> u64 {
        // Feature generation dominates Autolearn (Fig. 6d).
        4_000
    }
}

/// Autolearn feature generation + selection; `schema = 1` keeps more
/// generated features (wider output — schema change).
struct AutolearnFeat {
    version: SemVer,
}

impl AutolearnFeat {
    fn top_k(&self) -> usize {
        if self.version.schema >= 1 {
            TOP_K_V1
        } else {
            TOP_K_V0
        }
    }
}

impl Component for AutolearnFeat {
    fn name(&self) -> &str {
        "autolearn_feat"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::PreProcess
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(
            Schema::FeatureMatrix {
                dim: zernike_dim(),
                n_classes: digits::N_CLASSES,
            }
            .id(),
        )
    }
    fn output_schema(&self) -> SchemaId {
        Schema::FeatureMatrix {
            dim: autolearn_dim(self.top_k()),
            n_classes: digits::N_CLASSES,
        }
        .id()
    }
    fn run(&self, inputs: &[Artifact]) -> Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Features(f) = &inputs[0].data else {
            return Err(PipelineError::WrongArtifactKind {
                component: self.key(),
                expected: "features",
                actual: inputs[0].data.kind_label(),
            });
        };
        let cfg = AutoFeatConfig {
            top_k: self.top_k(),
            products: true,
            // Ratios only arrive in late versions (they are empirically a
            // regression here — which is exactly the kind of "update that
            // does not necessarily improve the pipeline" the metric-driven
            // merge is designed to catch).
            ratios: self.version.increment >= 3,
            min_std: 1e-6 * 10f32.powi(self.version.increment as i32),
        };
        let af = AutoFeat::fit(&f.x, &f.y, cfg);
        let mut x = af.transform(&f.x);
        // Pad to the declared dimension if fewer candidates survived.
        let want = autolearn_dim(self.top_k());
        if x.cols() < want {
            x = x.hcat(&Matrix::zeros(x.rows(), want - x.cols()));
        }
        // Increments rescale the generated block so each version's output is
        // a distinct artifact.
        let scale = 1.0 + 0.005 * self.version.increment as f32;
        if scale != 1.0 {
            x.map_inplace(|v| v * scale);
        }
        Ok(Artifact::new(
            ArtifactData::Features(Features {
                x,
                y: f.y.clone(),
                n_classes: f.n_classes,
            }),
            self.output_schema(),
        ))
    }
    fn work_units(&self, _inputs: &[Artifact]) -> u64 {
        AutoFeat::work_units(
            N_IMAGES,
            zernike_dim(),
            AutoFeatConfig {
                top_k: self.top_k(),
                products: true,
                ratios: true,
                min_std: 1e-6,
            },
        )
    }
    fn ns_per_unit(&self) -> u64 {
        5_000
    }
}

/// Terminal AdaBoost classifier.
struct AdaModel {
    version: SemVer,
    expects_top_k: usize,
    rounds: usize,
}

impl Component for AdaModel {
    fn name(&self) -> &str {
        "ada_model"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::ModelTraining
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(
            Schema::FeatureMatrix {
                dim: autolearn_dim(self.expects_top_k),
                n_classes: digits::N_CLASSES,
            }
            .id(),
        )
    }
    fn output_schema(&self) -> SchemaId {
        Schema::Model {
            family: "autolearn-ada".into(),
        }
        .id()
    }
    fn run(&self, inputs: &[Artifact]) -> Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Features(f) = &inputs[0].data else {
            return Err(PipelineError::WrongArtifactKind {
                component: self.key(),
                expected: "features",
                actual: inputs[0].data.kind_label(),
            });
        };
        // Deterministic stratified train/eval split.
        let (train_idx, eval_idx) = crate::common::stratified_holdout(&f.y, 4);
        let x_train = f.x.select_rows(&train_idx);
        let y_train: Vec<usize> = train_idx.iter().map(|&i| f.y[i]).collect();
        let x_eval = f.x.select_rows(&eval_idx);
        let y_eval: Vec<usize> = eval_idx.iter().map(|&i| f.y[i]).collect();
        let cfg = AdaBoostConfig {
            rounds: self.rounds,
            threshold_stride: 1,
        };
        let model = AdaBoost::fit(&x_train, &y_train, f.n_classes, cfg);
        let acc = model.evaluate(&x_eval, &y_eval);
        // Accuracy over a small eval set quantises coarsely; break ties with
        // the mean training-error margin so the merge search sees a total
        // order over candidates (raw accuracy is preserved in `raw`).
        let margin: f64 = 1.0
            - model.error_history.iter().copied().sum::<f64>()
                / model.error_history.len().max(1) as f64;
        let mut score = Score::new(MetricKind::Accuracy, acc);
        score.value += margin * 1e-4;
        let blob = serde_json::to_vec(&(self.rounds, model.error_history.clone()))
            .expect("model summary serialises");
        Ok(Artifact::new(
            ArtifactData::Model(ModelArtifact {
                family: "autolearn-ada".into(),
                blob,
                score,
            }),
            self.output_schema(),
        ))
    }
    fn work_units(&self, _inputs: &[Artifact]) -> u64 {
        AdaBoost::work_units(
            N_IMAGES,
            autolearn_dim(self.expects_top_k),
            AdaBoostConfig {
                rounds: self.rounds,
                threshold_stride: 1,
            },
        )
    }
    fn ns_per_unit(&self) -> u64 {
        3_000
    }
}

/// Builds the Autolearn workload with its full version family.
pub fn build() -> Workload {
    let mk_key = |h: &ComponentHandle| h.key();
    let data: ComponentHandle = Arc::new(DigitsData {
        version: SemVer::master(0, 0),
    });
    let zernikes: Vec<ComponentHandle> = (0..5)
        .map(|i| -> ComponentHandle {
            Arc::new(ZernikeExtract {
                version: SemVer::master(0, i),
            })
        })
        .collect();
    let mut autos: Vec<ComponentHandle> = (0..4)
        .map(|i| -> ComponentHandle {
            Arc::new(AutolearnFeat {
                version: SemVer::master(0, i),
            })
        })
        .collect();
    autos.push(Arc::new(AutolearnFeat {
        version: SemVer::master(1, 0),
    }));
    let rounds_for = |inc: u32| 60 + 15 * inc as usize;
    let mut models: Vec<ComponentHandle> = Vec::new();
    for inc in [0u32, 1, 4, 5, 6, 7] {
        models.push(Arc::new(AdaModel {
            version: SemVer::master(0, inc),
            expects_top_k: TOP_K_V0,
            rounds: rounds_for(inc),
        }));
    }
    for inc in [2u32, 3] {
        models.push(Arc::new(AdaModel {
            version: SemVer::master(0, inc),
            expects_top_k: TOP_K_V1,
            rounds: rounds_for(inc),
        }));
    }
    let find_model = |inc: u32| -> ComponentKey {
        models
            .iter()
            .map(mk_key)
            .find(|k| k.version.increment == inc)
            .expect("model version exists")
    };

    let slots = vec![
        "digits_data".to_string(),
        "zernike_extract".to_string(),
        "autolearn_feat".to_string(),
        "ada_model".to_string(),
    ];
    let initial = vec![data.key(), zernikes[0].key(), autos[0].key(), find_model(0)];
    let chains = vec![
        vec![data.key()],
        zernikes.iter().map(mk_key).collect(),
        autos[..4].iter().map(mk_key).collect(),
        vec![
            find_model(0),
            find_model(1),
            find_model(4),
            find_model(5),
            find_model(6),
            find_model(7),
        ],
    ];
    let auto_v1 = autos[4].key();
    let head_updates = vec![vec![
        data.key(),
        zernikes[1].key(),
        autos[0].key(),
        find_model(4),
    ]];
    let dev_updates = vec![
        vec![data.key(), zernikes[0].key(), autos[0].key(), find_model(1)],
        vec![
            data.key(),
            zernikes[0].key(),
            auto_v1.clone(),
            find_model(2),
        ],
        vec![
            data.key(),
            zernikes[0].key(),
            auto_v1.clone(),
            find_model(3),
        ],
    ];

    let mut handles = vec![data];
    handles.extend(zernikes);
    handles.extend(autos);
    handles.extend(models);
    Workload {
        name: "autolearn".into(),
        slots,
        handles,
        initial,
        chains,
        model_slot: 3,
        incompat_update: (2, auto_v1),
        head_updates,
        dev_updates,
        edges: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcask_pipeline::clock::ClockLedger;
    use mlcask_pipeline::dag::BoundPipeline;
    use mlcask_pipeline::executor::{ExecOptions, Executor};
    use mlcask_storage::store::ChunkStore;

    fn run_pipeline(w: &Workload, keys: &[ComponentKey]) -> (f64, ClockLedger) {
        let store = ChunkStore::in_memory_small();
        let exec = Executor::new(&store);
        let handles: Vec<ComponentHandle> = keys
            .iter()
            .map(|k| w.handles.iter().find(|h| &h.key() == k).unwrap().clone())
            .collect();
        let bound = BoundPipeline::new(Arc::new(w.dag()), handles).unwrap();
        let clock = ClockLedger::new();
        let report = exec
            .run(&bound, &clock, None, ExecOptions::RERUN_ALL)
            .unwrap();
        (report.outcome.score().expect("completed").raw, clock)
    }

    #[test]
    fn structure_is_valid() {
        let w = build();
        w.validate();
        assert_eq!(w.slots.len(), 4);
        assert_eq!(w.model_slot, 3);
    }

    #[test]
    fn initial_pipeline_classifies_digits() {
        let w = build();
        let (score, clock) = run_pipeline(&w, &w.initial);
        assert!(score > 0.6, "Autolearn accuracy {score}");
        // Pre-processing dominates (Fig. 6d).
        let snap = clock.snapshot();
        assert!(snap.preprocess_ns > snap.training_ns);
    }

    #[test]
    fn wide_autolearn_with_adapted_model_works() {
        let w = build();
        let (score, _) = run_pipeline(&w, &w.dev_updates[1]);
        assert!(score > 0.5);
    }

    #[test]
    fn dims_differ_across_schema_versions() {
        assert_ne!(autolearn_dim(TOP_K_V0), autolearn_dim(TOP_K_V1));
    }
}
