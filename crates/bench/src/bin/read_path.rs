//! Hot read path of the durable backend: blob cache + group commit.
//!
//! Two deterministic gates plus a determinism sweep:
//!
//! 1. **Cache win** — a read-heavy loop (the access pattern of merge search
//!    and incremental re-evaluation re-reading reusable component outputs)
//!    over a cask store, cache off vs on. The portable win metric is the
//!    backend's `read_ops` counter — segment disk reads, each of which also
//!    pays a content-hash verification. With the cache on, only the first
//!    round misses; every later round is served from memory. The binary
//!    exits nonzero unless cached disk reads undercut uncached by at least
//!    2x and the cache reports hits. Wall-clock is printed too, and gated
//!    (cached < uncached) outside smoke mode.
//!
//! 2. **Group commit** — the write phase runs on the default writer pool,
//!    where each drained batch costs one `sync_data`. Exits nonzero unless
//!    fsyncs-per-append lands below 1.
//!
//! 3. **Determinism sweep** — the what-if merge search (primed +
//!    incremental) on {`MemBackend`, `CaskBackend`} x {cache off, cache on}
//!    x workers {1, 2, 8}: every normalized observation (report + modeled
//!    ledger + store stats) must be byte-identical to the reference. The
//!    cache is keyed by content hash, so it can change *where* bytes come
//!    from but never *what* they are — this sweep is the executable proof.
//!
//! ```text
//! cargo run --release -p mlcask_bench --bin read_path
//! ```

use mlcask_bench::{f2, print_header, print_row, write_bench_json};
use mlcask_core::history::HistoryIndex;
use mlcask_core::merge::{MergeEngine, MergeStrategy};
use mlcask_core::registry::ComponentRegistry;
use mlcask_pipeline::clock::ClockLedger;
use mlcask_pipeline::executor::{ExecOptions, Executor};
use mlcask_pipeline::parallel::ParallelismPolicy;
use mlcask_storage::backend::MemBackend;
use mlcask_storage::cache::CacheOptions;
use mlcask_storage::cask::{CaskBackend, CaskOptions};
use mlcask_storage::chunk::ChunkParams;
use mlcask_storage::costmodel::StorageCostModel;
use mlcask_storage::object::{ObjectKind, ObjectRef};
use mlcask_storage::store::ChunkStore;
use mlcask_workloads::whatif;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct BenchPayload {
    scenario: &'static str,
    objects: usize,
    rounds: usize,
    uncached_disk_reads: u64,
    cached_disk_reads: u64,
    disk_read_reduction: f64,
    cache_hit_rate: f64,
    uncached_wall_s: f64,
    cached_wall_s: f64,
    appends: u64,
    fsyncs: u64,
    fsyncs_per_append: f64,
    group_commit_batches: u64,
    determinism_configs: usize,
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mlcask-read-path-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Reads every object `rounds` times and returns the wall-clock seconds.
fn read_loop(store: &ChunkStore, refs: &[ObjectRef], rounds: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..rounds {
        for r in refs {
            let blob = store.get_blob(r).expect("stored blob reads back");
            assert_eq!(blob.len() as u64, r.len);
        }
    }
    start.elapsed().as_secs_f64()
}

/// One primed incremental what-if search over `store`, reduced to the
/// normalized observation string: report (frontier telemetry zeroed — it is
/// designed to vary), the modeled clock ledger, and the store statistics.
fn search_obs(store: Arc<ChunkStore>, policy: ParallelismPolicy) -> String {
    let w = whatif::build();
    let reg = ComponentRegistry::new(store.clone());
    w.register_all(&reg).expect("what-if components register");
    let engine = MergeEngine::new(&reg, reg.store(), Arc::new(w.dag()))
        .with_parallelism(policy)
        .with_incremental(true);
    let history = HistoryIndex::new();
    let bound = engine.bind(&w.base).expect("base pipeline binds");
    let clock = ClockLedger::new();
    Executor::new(reg.store())
        .run(&bound, &clock, Some(&history), ExecOptions::MLCASK)
        .expect("base pipeline runs");
    history
        .provenance()
        .absorb(&bound, &history)
        .expect("committed run lifts into provenance");
    let clock = ClockLedger::new();
    let mut report = engine
        .search(&w.spaces(), &history, MergeStrategy::Full, &clock)
        .expect("what-if search succeeds");
    store.flush().expect("store flushes");
    report.skipped_by_frontier = 0;
    format!(
        "report={} ledger={} stats={}",
        serde_json::to_string(&report).expect("report serializes"),
        serde_json::to_string(&clock.snapshot()).expect("ledger serializes"),
        serde_json::to_string(&store.stats()).expect("stats serialize"),
    )
}

/// Builds a fresh store for one determinism-sweep cell. Cask stores get
/// their own temp directory (returned for cleanup).
fn sweep_store(backend: &str, cache: bool) -> (Arc<ChunkStore>, Option<std::path::PathBuf>) {
    let cache = cache.then(CacheOptions::default);
    match backend {
        "mem" => (
            Arc::new(ChunkStore::with_cache(
                Arc::new(MemBackend::new()),
                ChunkParams::DEFAULT,
                StorageCostModel::FORKBASE,
                cache,
            )),
            None,
        ),
        _ => {
            let root = temp_root("sweep");
            let be = CaskBackend::open_with(&root, CaskOptions::default()).expect("cask opens");
            (
                Arc::new(ChunkStore::with_cache(
                    Arc::new(be),
                    ChunkParams::DEFAULT,
                    StorageCostModel::FORKBASE,
                    cache,
                )),
                Some(root),
            )
        }
    }
}

fn main() {
    let smoke = std::env::var("MLCASK_BENCH_SMOKE").is_ok();
    let objects = if smoke { 48 } else { 160 };
    let rounds = if smoke { 6 } else { 16 };
    println!("# Durable hot read path — blob cache + group commit");
    println!(
        "\nworkload: {objects} archived library versions on a writer-pool cask, \
         re-read {rounds} rounds with the blob cache off vs on"
    );

    // -- Write phase (group-commit gate) ------------------------------------
    let root = temp_root("store");
    let be = Arc::new(CaskBackend::open_with(&root, CaskOptions::default()).expect("cask opens"));
    let store_off = ChunkStore::with_cache(
        be.clone(),
        ChunkParams::DEFAULT,
        StorageCostModel::FORKBASE,
        None,
    );
    let refs: Vec<ObjectRef> = (0..objects)
        .map(|i| {
            let payload = mlcask_core::registry::simulated_executable(
                "read-path-lib",
                &format!("0.{i}"),
                32 * 1024,
            );
            store_off
                .put_blob(ObjectKind::Library, &payload)
                .expect("library archives")
                .object
        })
        .collect();
    store_off.flush().expect("flush drains and group-commits");
    let appends = be.append_count();
    let fsyncs = be.sync_count();
    let batches = be.group_commit_batches();
    let fsyncs_per_append = fsyncs as f64 / appends.max(1) as f64;

    // -- Read phase: cache off vs on over the same backend ------------------
    let base_reads = be.read_ops();
    let uncached_wall = read_loop(&store_off, &refs, rounds);
    let uncached_reads = be.read_ops() - base_reads;

    let store_on = ChunkStore::with_cache(
        be.clone(),
        ChunkParams::DEFAULT,
        StorageCostModel::FORKBASE,
        Some(CacheOptions::default()),
    );
    let base_reads = be.read_ops();
    let cached_wall = read_loop(&store_on, &refs, rounds);
    let cached_reads = be.read_ops() - base_reads;
    let cache = store_on.cache_stats().expect("cache is on");

    print_header(
        "read-heavy loop on cask",
        &["mode", "wall s", "disk reads", "cache hit rate"],
    );
    print_row(&[
        "cache off".into(),
        f2(uncached_wall),
        uncached_reads.to_string(),
        "-".into(),
    ]);
    print_row(&[
        "cache on".into(),
        f2(cached_wall),
        cached_reads.to_string(),
        format!("{:.3}", cache.hit_rate()),
    ]);
    let reduction = uncached_reads as f64 / cached_reads.max(1) as f64;
    println!(
        "\ndisk reads: {uncached_reads} -> {cached_reads} ({reduction:.1}x fewer); \
         group commit: {fsyncs} fsyncs for {appends} appends \
         ({fsyncs_per_append:.3} per append, {batches} batches)"
    );

    // -- Determinism sweep ---------------------------------------------------
    print_header(
        "observation identity vs mem/cache-off/sequential",
        &["backend", "cache", "workers", "identical"],
    );
    let mut reference: Option<String> = None;
    let mut configs = 0usize;
    for backend in ["mem", "cask"] {
        for cache_on in [false, true] {
            for workers in [1usize, 2, 8] {
                let policy = if workers == 1 {
                    ParallelismPolicy::Sequential
                } else {
                    ParallelismPolicy::Parallel(workers)
                };
                let (store, tmp) = sweep_store(backend, cache_on);
                let obs = search_obs(store, policy);
                if let Some(tmp) = tmp {
                    let _ = std::fs::remove_dir_all(&tmp);
                }
                let reference = reference.get_or_insert(obs.clone());
                let same = &obs == reference;
                print_row(&[
                    backend.into(),
                    if cache_on { "on" } else { "off" }.into(),
                    workers.to_string(),
                    if same { "yes" } else { "NO" }.into(),
                ]);
                assert_eq!(
                    &obs, reference,
                    "observation diverged: backend={backend} cache={cache_on} workers={workers}"
                );
                configs += 1;
            }
        }
    }

    write_bench_json(
        "read_path",
        &BenchPayload {
            scenario: "library_reread_plus_whatif_sweep",
            objects,
            rounds,
            uncached_disk_reads: uncached_reads,
            cached_disk_reads: cached_reads,
            disk_read_reduction: reduction,
            cache_hit_rate: cache.hit_rate(),
            uncached_wall_s: uncached_wall,
            cached_wall_s: cached_wall,
            appends,
            fsyncs,
            fsyncs_per_append,
            group_commit_batches: batches,
            determinism_configs: configs,
        },
    );

    drop(store_off);
    drop(store_on);
    drop(be);
    let _ = std::fs::remove_dir_all(&root);

    // -- Gates ---------------------------------------------------------------
    if cache.hits == 0 {
        println!("error: the blob cache never served a hit");
        std::process::exit(1);
    }
    if cached_reads * 2 > uncached_reads {
        println!(
            "error: cached reads show no win ({cached_reads} disk reads vs {uncached_reads} uncached)"
        );
        std::process::exit(1);
    }
    if fsyncs >= appends {
        println!("error: group commit shows no coalescing ({fsyncs} fsyncs for {appends} appends)");
        std::process::exit(1);
    }
    if !smoke && cached_wall >= uncached_wall {
        println!(
            "error: cached read loop was not faster ({} s vs {} s)",
            f2(cached_wall),
            f2(uncached_wall)
        );
        std::process::exit(1);
    }
}
