//! Write-overlap win of the cask backend's asynchronous writer pool.
//!
//! Runs the same durable workload — an autolearn pipeline execution plus a
//! library-archive burst — against two cask configurations:
//!
//! * **synchronous** — `CaskOptions::synchronous()`: every segment append
//!   fsyncs on the caller's thread before the write returns, the classic
//!   write-through baseline;
//! * **asynchronous** — the default writer pool: appends are acknowledged
//!   once indexed, per-shard writers drain them in the background, and only
//!   `CaskBackend::flush` (the commit point) fsyncs on the caller.
//!
//! The deterministic win metric is `blocking_syncs` — fsyncs the workload
//! thread had to wait for. Synchronous mode pays one per append; the pool
//! pays a handful at flush. The binary exits nonzero if the pool shows no
//! win, so CI's bench-smoke leg gates on the overlap actually existing.
//! Wall-clock is reported too (informational — tmpfs fsyncs are nearly
//! free, so the blocking count is the portable signal). Both modes must
//! recover byte-identical contents after a real close-and-reopen.
//!
//! ```text
//! cargo run --release -p mlcask_bench --bin durable_overlap
//! ```

use mlcask_bench::{f2, print_header, print_row, write_bench_json};
use mlcask_pipeline::clock::ClockLedger;
use mlcask_pipeline::dag::BoundPipeline;
use mlcask_pipeline::executor::{ExecOptions, Executor};
use mlcask_storage::cask::{CaskBackend, CaskOptions};
use mlcask_storage::chunk::ChunkParams;
use mlcask_storage::costmodel::StorageCostModel;
use mlcask_storage::object::ObjectKind;
use mlcask_storage::store::ChunkStore;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct BenchPayload {
    scenario: &'static str,
    appends: u64,
    sync_blocking_syncs: u64,
    async_blocking_syncs: u64,
    sync_wall_s: f64,
    async_wall_s: f64,
    wall_speedup: f64,
    /// Blob-cache hit rate over the workload (0 when the cache is off —
    /// the `MLCASK_CACHE_BYTES` env knob governs it here).
    cache_hit_rate: f64,
}

struct Run {
    wall: f64,
    appends: u64,
    blocking_syncs: u64,
    /// Blob-cache hit rate, when the store had a cache.
    cache_hit_rate: Option<f64>,
    /// Sorted (key, len) pairs recovered after close-and-reopen.
    recovered: Vec<(String, u64)>,
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mlcask-durable-overlap-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The timed workload: one autolearn pipeline run plus `libs` archived
/// library versions, every write flushed durable at the end.
fn drive(store: &ChunkStore, libs: usize) {
    let w = mlcask_workloads::by_name("autolearn").expect("autolearn workload");
    let comps = w
        .initial
        .iter()
        .map(|key| {
            w.handles
                .iter()
                .find(|h| &h.key() == key)
                .expect("initial key registered")
                .clone()
        })
        .collect();
    let bound = BoundPipeline::new(Arc::new(w.dag()), comps).expect("pipeline binds");
    let clock = ClockLedger::new();
    let report = Executor::new(store)
        .run(&bound, &clock, None, ExecOptions::RERUN_ALL)
        .expect("pipeline runs");
    assert!(report.outcome.is_completed());
    for v in 0..libs {
        let payload = mlcask_core::registry::simulated_executable(
            "overlap-lib",
            &format!("0.{v}"),
            48 * 1024,
        );
        store
            .put_blob(ObjectKind::Library, &payload)
            .expect("library archives");
    }
    store.flush().expect("flush drains and syncs");
}

fn run_mode(tag: &str, opts: CaskOptions, libs: usize) -> Run {
    let root = temp_root(tag);
    let be = Arc::new(CaskBackend::open_with(&root, opts).expect("cask opens"));
    let store = ChunkStore::new(be.clone(), ChunkParams::DEFAULT, StorageCostModel::FORKBASE);
    let start = Instant::now();
    drive(&store, libs);
    let wall = start.elapsed().as_secs_f64();
    let appends = be.append_count();
    let blocking_syncs = be.blocking_syncs();
    let cache_hit_rate = store.cache_stats().map(|c| c.hit_rate());
    drop(store);
    drop(be);

    // Reopen cold and enumerate what recovery sees.
    let be = CaskBackend::open(&root).expect("cask reopens");
    let mut recovered: Vec<(String, u64)> = {
        use mlcask_storage::backend::StorageBackend;
        be.keys()
            .into_iter()
            .map(|k| {
                let len = be.get(k).expect("recovered key reads").len() as u64;
                (k.to_hex(), len)
            })
            .collect()
    };
    recovered.sort();
    let _ = std::fs::remove_dir_all(&root);
    Run {
        wall,
        appends,
        blocking_syncs,
        cache_hit_rate,
        recovered,
    }
}

/// `hit_rate` formatted for the table ("off" when the cache is disabled).
fn hit_rate_cell(run: &Run) -> String {
    match run.cache_hit_rate {
        Some(rate) => format!("{rate:.3}"),
        None => "off".into(),
    }
}

fn main() {
    let smoke = std::env::var("MLCASK_BENCH_SMOKE").is_ok();
    let libs = if smoke { 12 } else { 64 };
    println!("# Durable write overlap — synchronous vs writer-pool cask");
    println!(
        "\nworkload: autolearn pipeline run + {libs} archived library versions, \
         flushed durable; same bytes in both modes"
    );

    let reps = if smoke { 1 } else { 3 };
    let mut sync_best: Option<Run> = None;
    let mut async_best: Option<Run> = None;
    for _ in 0..reps {
        let s = run_mode("sync", CaskOptions::synchronous(), libs);
        if sync_best.as_ref().is_none_or(|b| s.wall < b.wall) {
            sync_best = Some(s);
        }
        let a = run_mode("async", CaskOptions::default(), libs);
        if async_best.as_ref().is_none_or(|b| a.wall < b.wall) {
            async_best = Some(a);
        }
    }
    let sync = sync_best.expect("at least one rep");
    let async_ = async_best.expect("at least one rep");

    print_header(
        "durable write overlap",
        &["mode", "wall s", "appends", "blocking fsyncs", "cache hits"],
    );
    print_row(&[
        "synchronous".into(),
        f2(sync.wall),
        sync.appends.to_string(),
        sync.blocking_syncs.to_string(),
        hit_rate_cell(&sync),
    ]);
    print_row(&[
        "writer pool".into(),
        f2(async_.wall),
        async_.appends.to_string(),
        async_.blocking_syncs.to_string(),
        hit_rate_cell(&async_),
    ]);
    let speedup = sync.wall / async_.wall.max(1e-9);
    println!(
        "\nblocking fsyncs: {} -> {}; wall-clock speedup: {speedup:.1}x",
        sync.blocking_syncs, async_.blocking_syncs
    );

    // Both modes persist exactly the same objects and recover them after a
    // cold reopen.
    assert_eq!(sync.appends, async_.appends, "same workload, same appends");
    assert_eq!(
        sync.recovered, async_.recovered,
        "recovered contents must be identical between modes"
    );
    println!(
        "recovered after reopen: {} objects, identical in both modes",
        sync.recovered.len()
    );

    write_bench_json(
        "durable_overlap",
        &BenchPayload {
            scenario: "autolearn_plus_library_burst",
            appends: sync.appends,
            sync_blocking_syncs: sync.blocking_syncs,
            async_blocking_syncs: async_.blocking_syncs,
            sync_wall_s: sync.wall,
            async_wall_s: async_.wall,
            wall_speedup: speedup,
            cache_hit_rate: async_.cache_hit_rate.unwrap_or(0.0),
        },
    );

    // The gate: the pool must actually take fsyncs off the workload thread.
    if async_.blocking_syncs >= sync.blocking_syncs {
        println!(
            "error: writer pool shows no overlap win ({} blocking fsyncs vs {} synchronous)",
            async_.blocking_syncs, sync.blocking_syncs
        );
        std::process::exit(1);
    }
    if !smoke && async_.blocking_syncs * 4 > sync.blocking_syncs {
        println!("error: expected >=4x fewer blocking fsyncs from the writer pool");
        std::process::exit(1);
    }
}
