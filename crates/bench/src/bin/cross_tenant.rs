//! Cross-tenant collaboration economics: permissioned fork/merge over one
//! shared workspace vs. an export/re-import-into-isolated-store baseline.
//!
//! The scenario is the paper's upstream/downstream-team workflow
//! (`mlcask_workloads::scenario::run_upstream_downstream`): the upstream
//! team evolves `master`, grants the downstream team `MergeInto`, the
//! downstream team forks `upstream/master` into its own namespace, applies
//! its dev updates, and merges the result back into `upstream/master` with
//! the full metric-driven search.
//!
//! Two deployments run the identical workflow:
//!
//! 1. **Shared workspace** — one deduplicating store; the fork hands over
//!    references (no bytes), the merge search reuses the peer's cached
//!    component outputs through the shared history, and downstream is
//!    charged only for newly materialized blobs.
//! 2. **Export/re-import baseline** — the downstream team owns an isolated
//!    store, so collaboration means re-materializing the upstream history
//!    there (re-running upstream's commits), then diverging and merging
//!    locally. Every byte upstream already stored is paid again.
//!
//! The bench reports the bytes the *downstream team* materializes under
//! each deployment, plus a determinism check of the cross-tenant merge
//! across worker counts.
//!
//! Run with `--release`:
//!
//! ```text
//! cargo run --release -p mlcask_bench --bin cross_tenant
//! ```
//!
//! Set `MLCASK_BENCH_SMOKE=1` for a reduced CI configuration (determinism
//! assertions stay on, economics thresholds are skipped).

use mlcask_bench::{mib, print_header, print_row, ratio};
use mlcask_core::merge::MergeStrategy;
use mlcask_pipeline::clock::ClockLedger;
use mlcask_pipeline::parallel::ParallelismPolicy;
use mlcask_workloads::readmission;
use mlcask_workloads::scenario::{build_system, run_upstream_downstream};
use std::time::Instant;

fn main() {
    let smoke = std::env::var("MLCASK_BENCH_SMOKE").is_ok();
    let w = readmission::build();

    println!("# Cross-tenant collaboration — shared workspace vs export/re-import");

    // ---- 1. Shared workspace: permissioned fork + cross-tenant merge. ----
    let start = Instant::now();
    let c = run_upstream_downstream(&w, ParallelismPolicy::Sequential).expect("collaboration runs");
    let shared_wall = start.elapsed().as_secs_f64();
    let usages = c.ws.usages();
    let shares = c.ws.shared_view();
    let shared_down_bytes = usages["downstream"].physical_bytes;
    assert_eq!(
        usages.values().map(|u| u.physical_bytes).sum::<u64>(),
        c.ws.store().physical_bytes(),
        "first-writer-pays attribution must sum to the store total"
    );
    assert_eq!(
        c.ws.store().tenant_accounts().open_reservations(),
        0,
        "no reservation may outlive the evaluation"
    );
    let report = c.merge.report.as_ref().expect("diverged merge searched");

    print_header(
        "shared workspace: per-team attribution",
        &[
            "team",
            "logical MiB",
            "paid MiB (first-writer)",
            "fair-share MiB",
        ],
    );
    for team in ["upstream", "downstream"] {
        print_row(&[
            team.into(),
            mib(usages[team].logical_bytes),
            mib(usages[team].physical_bytes),
            mib(shares[team].amortized_bytes as u64),
        ]);
    }
    println!(
        "\nmerge: {} candidates searched, {} pruned, {} component runs reused from the peer's \
         history, winner committed on upstream/master",
        report.candidates_evaluated, report.candidates_pruned, report.reused_components,
    );

    // ---- 2. Baseline: export upstream's history, re-import it into the
    // downstream team's isolated store, then merge locally. ----
    let start = Instant::now();
    let (_reg, iso) = build_system(&w).expect("isolated system builds");
    let clock = ClockLedger::new();
    iso.commit_pipeline("master", &w.initial, "re-import initial", &clock)
        .expect("re-import initial");
    iso.branch("master", "feature").expect("local fork");
    for (i, keys) in w.head_updates.iter().enumerate() {
        iso.commit_pipeline("master", keys, &format!("re-import head {i}"), &clock)
            .expect("re-import head update");
    }
    for (i, keys) in w.dev_updates.iter().enumerate() {
        iso.commit_pipeline("feature", keys, &format!("feature {i}"), &clock)
            .expect("feature update");
    }
    iso.merge("master", "feature", MergeStrategy::Full, &clock)
        .expect("local merge");
    let iso_wall = start.elapsed().as_secs_f64();
    // Everything in the isolated store was materialized by (and billed to)
    // the downstream team — that is the point of the baseline.
    let iso_down_bytes = iso.store().physical_bytes();

    print_header(
        "bytes the downstream team materializes",
        &["deployment", "physical MiB", "vs shared", "wall s"],
    );
    print_row(&[
        "shared workspace (fork + merge_into)".into(),
        mib(shared_down_bytes),
        "1.0x".into(),
        format!("{shared_wall:.2}"),
    ]);
    print_row(&[
        "export/re-import into isolated store".into(),
        mib(iso_down_bytes),
        ratio(iso_down_bytes as f64, shared_down_bytes as f64),
        format!("{iso_wall:.2}"),
    ]);
    let saved = iso_down_bytes.saturating_sub(shared_down_bytes);
    println!(
        "\nsharing the workspace saves the downstream team {} MiB ({:.1}x fewer bytes \
         materialized)",
        mib(saved),
        iso_down_bytes as f64 / shared_down_bytes.max(1) as f64,
    );

    // ---- 3. Determinism: the cross-tenant merge is byte-identical for
    // every worker count. ----
    let fingerprint = |policy: ParallelismPolicy| -> String {
        let c = run_upstream_downstream(&w, policy).expect("collaboration runs");
        format!(
            "report={} usages={} physical={}",
            serde_json::to_string(c.merge.report.as_ref().unwrap()).unwrap(),
            serde_json::to_string(&c.ws.usages()).unwrap(),
            c.ws.store().physical_bytes(),
        )
    };
    let sequential = fingerprint(ParallelismPolicy::Sequential);
    let worker_counts: &[usize] = if smoke { &[2] } else { &[1, 2, 8] };
    for &workers in worker_counts {
        assert_eq!(
            sequential,
            fingerprint(ParallelismPolicy::Parallel(workers)),
            "cross-tenant merge with {workers} workers diverged"
        );
    }
    println!(
        "\ndeterminism: merge report, per-tenant usage, and store bytes identical at workers \
         {worker_counts:?}"
    );

    if !smoke {
        assert!(
            iso_down_bytes as f64 > shared_down_bytes as f64 * 1.5,
            "expected the export/re-import baseline to materialize >1.5x the bytes, got {} vs {}",
            iso_down_bytes,
            shared_down_bytes
        );
    }
}
