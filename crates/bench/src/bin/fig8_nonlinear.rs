//! Fig. 8 — Non-linear versioning (merge) performance.
//!
//! Cumulative pipeline time (CPT), storage size (CSS), execution time (CET)
//! and storage time (CST) of the merge operation under the three systems:
//! full MLCask, MLCask w/o PCPR (no pruning, no reuse), and MLCask w/o PR
//! (compatibility pruning only). Also prints the headline ratios the
//! abstract quotes ("up to 7.8x faster and saves up to 11.9x storage").

use mlcask_baselines::prelude::*;
use mlcask_bench::{f2, mib, print_header, print_row, ratio};
use mlcask_core::merge::MergeStrategy;
use mlcask_workloads::prelude::*;

fn main() {
    println!("# Fig. 8 — Non-linear versioning performance (merge operation)");
    let mut headline_speed: f64 = 0.0;
    let mut headline_storage: f64 = 0.0;
    for workload in all_workloads() {
        print_header(
            &workload.name,
            &[
                "system",
                "CPT (s)",
                "CSS (MiB)",
                "CET (s)",
                "CST (s)",
                "candidates run",
                "components run",
            ],
        );
        let mut rows = Vec::new();
        for strategy in [
            MergeStrategy::Full,
            MergeStrategy::WithoutPcPr,
            MergeStrategy::WithoutPr,
        ] {
            let r = run_merge(&workload, strategy).expect("merge run");
            print_row(&[
                strategy.label().into(),
                f2(r.cpt_secs),
                mib(r.css_bytes),
                f2(r.cet_secs),
                f2(r.cst_secs),
                format!("{}", r.report.candidates_evaluated),
                format!("{}", r.report.executed_components),
            ]);
            rows.push(r);
        }
        let (full, no_pcpr, no_pr) = (&rows[0], &rows[1], &rows[2]);
        let speedup = no_pcpr.cpt_secs / full.cpt_secs;
        let storage_saving = no_pcpr.css_bytes as f64 / full.css_bytes as f64;
        headline_speed = headline_speed.max(speedup);
        headline_storage = headline_storage.max(storage_saving);
        println!(
            "\ncheck: CPT MLCask {} < w/o PR {} < w/o PCPR {} — {}",
            f2(full.cpt_secs),
            f2(no_pr.cpt_secs),
            f2(no_pcpr.cpt_secs),
            if full.cpt_secs < no_pr.cpt_secs && no_pr.cpt_secs < no_pcpr.cpt_secs {
                "OK (paper shape)"
            } else {
                "MISMATCH"
            }
        );
        println!(
            "ratios vs w/o PCPR: merge {} faster, storage {} smaller",
            ratio(no_pcpr.cpt_secs, full.cpt_secs),
            ratio(no_pcpr.css_bytes as f64, full.css_bytes as f64)
        );
        println!(
            "tree: {} candidates, {} pruned by PC, {} checkpointed by PR",
            full.report.candidates_total,
            full.report.candidates_pruned,
            full.report.state_counts.checkpointed
        );
    }
    println!("\n## Headline (abstract: up to 7.8x faster, up to 11.9x storage saving)\n");
    println!(
        "measured: up to {headline_speed:.1}x faster, up to {headline_storage:.1}x storage saving"
    );
}
