//! Fig. 6 — Pipeline time composition (linear versioning).
//!
//! For each workload and system, splits cumulative pipeline time into
//! storage, pre-processing, and model training. Paper shape: model-training
//! time is comparable across systems; the difference sits in
//! pre-processing (reuse) and the baselines' near-zero storage time versus
//! MLCask's small ForkBase overhead.

use mlcask_baselines::prelude::*;
use mlcask_bench::{f2, print_header, print_row};
use mlcask_workloads::prelude::*;

fn main() {
    let scenario = LinearScenario::default();
    println!("# Fig. 6 — Pipeline time composition (virtual seconds)");
    for workload in all_workloads() {
        let sequence = linear_update_sequence(&workload, &scenario);
        print_header(
            &workload.name,
            &[
                "system",
                "storage",
                "pre-processing",
                "model training",
                "total",
            ],
        );
        let mut training: Vec<f64> = Vec::new();
        let mut preproc: Vec<f64> = Vec::new();
        for &system in &SystemKind::ALL {
            let r = run_linear(system, &workload, &sequence).expect("linear run");
            let last = r.iterations.last().unwrap().cumulative;
            let storage_s = last.storage_ns as f64 / 1e9;
            let pre_s = (last.preprocess_ns + last.ingest_ns) as f64 / 1e9;
            let train_s = last.training_ns as f64 / 1e9;
            training.push(train_s);
            preproc.push(pre_s);
            print_row(&[
                system.label().into(),
                f2(storage_s),
                f2(pre_s),
                f2(train_s),
                f2(last.total_secs()),
            ]);
        }
        // Paper checks: training comparable across systems; pre-processing
        // is where the difference lies (ModelDB >> MLflow ≈ MLCask).
        let train_spread = training.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            / training
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min)
                .max(1e-9);
        println!(
            "\ncheck: training spread {:.2}x across systems; ModelDB preproc {} vs MLCask {} — {}",
            train_spread,
            f2(preproc[0]),
            f2(preproc[2]),
            if preproc[0] > preproc[2] {
                "OK (paper shape)"
            } else {
                "MISMATCH"
            }
        );
    }
}
