//! Fig. 9 — Pipeline time composition during the merge operation.
//!
//! Paper shape: differences among the three systems are almost entirely in
//! pre-processing time (both pruning heuristics act there); model-training
//! time is nearly equal; storage time is a small fraction.

use mlcask_baselines::prelude::*;
use mlcask_bench::{f2, print_header, print_row};
use mlcask_core::merge::MergeStrategy;
use mlcask_workloads::prelude::*;

fn main() {
    println!("# Fig. 9 — Merge-time composition (virtual seconds)");
    for workload in all_workloads() {
        print_header(
            &workload.name,
            &[
                "system",
                "storage",
                "pre-processing",
                "model training",
                "total",
            ],
        );
        let mut pre = Vec::new();
        let mut train = Vec::new();
        for strategy in [
            MergeStrategy::Full,
            MergeStrategy::WithoutPcPr,
            MergeStrategy::WithoutPr,
        ] {
            let r = run_merge(&workload, strategy).expect("merge run");
            let c = r.report.clock;
            let storage_s = c.storage_ns as f64 / 1e9;
            let pre_s = (c.preprocess_ns + c.ingest_ns) as f64 / 1e9;
            let train_s = c.training_ns as f64 / 1e9;
            pre.push(pre_s);
            train.push(train_s);
            print_row(&[
                strategy.label().into(),
                f2(storage_s),
                f2(pre_s),
                f2(train_s),
                f2(c.total_secs()),
            ]);
        }
        // The pre-processing gap should dominate the training gap for the
        // pre-processing-heavy pipelines (DPM/SA/Autolearn, as in the
        // paper). Readmission is training-dominated, and PR legitimately
        // reuses *trained models* checkpointed during branch development, so
        // its ablation gap shows up in training time — a deviation from the
        // paper explained in EXPERIMENTS.md.
        let pre_gap = pre[1] - pre[0];
        let train_gap = (train[1] - train[0]).abs();
        if workload.name == "readmission" {
            println!(
                "\nnote: preproc gap {} vs training gap {} — training gap comes \
                 from PR reusing models trained during development (see EXPERIMENTS.md)",
                f2(pre_gap),
                f2(train_gap),
            );
        } else {
            println!(
                "\ncheck: preproc gap {} vs training gap {} — {}",
                f2(pre_gap),
                f2(train_gap),
                if pre_gap > train_gap {
                    "OK (paper shape)"
                } else {
                    "MISMATCH"
                }
            );
        }
    }
}
