//! Table I — Percentage of trials with the optimal pipeline found.
//!
//! For each application and search method, the fraction of 100 trials in
//! which the optimal pipeline was found within the first 20%, 40%, 60%,
//! 80%, and 100% of searches. Paper shape: prioritized dominates random at
//! every cutoff and reaches 100% well before all searches complete.

use mlcask_bench::{print_header, print_row};
use mlcask_core::prelude::*;
use mlcask_workloads::prelude::*;

const TRIALS: usize = 100;

fn main() {
    println!("# Table I — % of trials with the optimal pipeline found ({TRIALS} trials)");
    print_header(
        "Percentage of trials with the optimal pipeline found",
        &[
            "Application",
            "Method",
            "20% Searches",
            "40% Searches",
            "60% Searches",
            "80% Searches",
            "100% Searches",
        ],
    );
    let cutoffs = [0.2, 0.4, 0.6, 0.8, 1.0];
    for workload in all_workloads() {
        let (registry, sys) = build_system(&workload).expect("system");
        setup_nonlinear(&sys, &workload).expect("fig-3 history");
        let spaces = sys.merge_search_spaces("master", "dev").expect("spaces");
        let init = sys.initial_scores("master", "dev").expect("initial scores");
        let searcher = PrioritizedSearcher::new(&registry, sys.dag().clone());
        let mut at_cutoffs: Vec<Vec<f64>> = Vec::new();
        for method in [SearchMethod::Random, SearchMethod::Prioritized] {
            let stats = searcher
                .run_trials(&spaces, sys.history(), &init, method, TRIALS, 17)
                .expect("trials");
            let row: Vec<f64> = cutoffs.iter().map(|&c| stats.optimal_within(c)).collect();
            print_row(
                &std::iter::once(workload.name.clone())
                    .chain(std::iter::once(method.label().to_string()))
                    .chain(row.iter().map(|v| format!("{:.0}%", v * 100.0)))
                    .collect::<Vec<_>>(),
            );
            at_cutoffs.push(row);
        }
        let dominated = at_cutoffs[1]
            .iter()
            .zip(at_cutoffs[0].iter())
            .all(|(p, r)| p >= r);
        println!(
            "check {}: prioritized >= random at every cutoff — {}",
            workload.name,
            if dominated {
                "OK (paper shape)"
            } else {
                "MISMATCH"
            }
        );
    }
}
