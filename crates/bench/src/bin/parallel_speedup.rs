//! Wall-clock speedup of parallel candidate evaluation.
//!
//! Builds a merge scenario whose model components do real (deterministic)
//! training work, then runs the same `MergeEngine::search` under
//! `ParallelismPolicy::Sequential` and increasing worker counts. The
//! reports are asserted byte-identical (the engine's determinism contract);
//! only wall-clock time should change. Run with `--release`:
//!
//! ```text
//! cargo run --release --bin parallel_speedup
//! ```

use mlcask_bench::{f2, print_header, print_row, write_bench_json};
use mlcask_core::history::HistoryIndex;
use mlcask_core::merge::{MergeEngine, MergeStrategy};
use mlcask_core::registry::ComponentRegistry;
use mlcask_core::search_space::SearchSpaces;
use mlcask_ml::metrics::{MetricKind, Score};
use mlcask_ml::tensor::Matrix;
use mlcask_pipeline::artifact::{Artifact, ArtifactData, Features, ModelArtifact};
use mlcask_pipeline::clock::ClockLedger;
use mlcask_pipeline::component::{Component, StageKind};
use mlcask_pipeline::dag::PipelineDag;
use mlcask_pipeline::parallel::ParallelismPolicy;
use mlcask_pipeline::schema::{Schema, SchemaId};
use mlcask_pipeline::semver::SemVer;
use mlcask_storage::store::ChunkStore;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct BenchPayload {
    candidates: usize,
    cores: usize,
    wall_sequential_s: f64,
    best_speedup: f64,
    best_workers: usize,
}

const ROWS: usize = 1500;
const DIM: usize = 16;
const TRAIN_EPOCHS: usize = 120;

struct HeavySource;

impl Component for HeavySource {
    fn name(&self) -> &str {
        "bench_source"
    }
    fn version(&self) -> SemVer {
        SemVer::master(0, 0)
    }
    fn stage(&self) -> StageKind {
        StageKind::Ingest
    }
    fn input_schema(&self) -> Option<SchemaId> {
        None
    }
    fn output_schema(&self) -> SchemaId {
        Schema::FeatureMatrix {
            dim: DIM,
            n_classes: 2,
        }
        .id()
    }
    fn run(&self, _inputs: &[Artifact]) -> mlcask_pipeline::errors::Result<Artifact> {
        let x = Matrix::from_fn(ROWS, DIM, |r, c| ((r * 31 + c * 7) % 17) as f32 / 17.0);
        let y = (0..ROWS).map(|r| r % 2).collect();
        Ok(Artifact::new(
            ArtifactData::Features(Features { x, y, n_classes: 2 }),
            self.output_schema(),
        ))
    }
    fn work_units(&self, _inputs: &[Artifact]) -> u64 {
        (ROWS * DIM) as u64
    }
}

struct HeavyScaler {
    version: SemVer,
    factor: f32,
}

impl Component for HeavyScaler {
    fn name(&self) -> &str {
        "bench_scaler"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::PreProcess
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(
            Schema::FeatureMatrix {
                dim: DIM,
                n_classes: 2,
            }
            .id(),
        )
    }
    fn output_schema(&self) -> SchemaId {
        self.input_schema().expect("scaler has an input schema")
    }
    fn run(&self, inputs: &[Artifact]) -> mlcask_pipeline::errors::Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Features(f) = &inputs[0].data else {
            unreachable!("schema-checked input is a feature matrix");
        };
        let x = Matrix::from_fn(f.x.rows(), DIM, |r, c| f.x.get(r, c) * self.factor);
        Ok(Artifact::new(
            ArtifactData::Features(Features {
                x,
                y: f.y.clone(),
                n_classes: f.n_classes,
            }),
            self.output_schema(),
        ))
    }
    fn work_units(&self, inputs: &[Artifact]) -> u64 {
        inputs.first().map(|a| a.byte_len()).unwrap_or(1)
    }
}

/// A model whose `run` performs real gradient-descent epochs, so candidate
/// evaluation is compute-bound — the regime the worker pool targets.
struct HeavyModel {
    version: SemVer,
    lr: f32,
}

impl Component for HeavyModel {
    fn name(&self) -> &str {
        "bench_model"
    }
    fn version(&self) -> SemVer {
        self.version.clone()
    }
    fn stage(&self) -> StageKind {
        StageKind::ModelTraining
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(
            Schema::FeatureMatrix {
                dim: DIM,
                n_classes: 2,
            }
            .id(),
        )
    }
    fn output_schema(&self) -> SchemaId {
        Schema::Model {
            family: "bench".into(),
        }
        .id()
    }
    fn run(&self, inputs: &[Artifact]) -> mlcask_pipeline::errors::Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Features(f) = &inputs[0].data else {
            unreachable!("schema-checked input is a feature matrix");
        };
        // Deterministic logistic-regression training.
        let mut w = [0.0f32; DIM];
        for _ in 0..TRAIN_EPOCHS {
            let mut grad = [0.0f32; DIM];
            for r in 0..f.x.rows() {
                let mut z = 0.0f32;
                for (c, wc) in w.iter().enumerate() {
                    z += wc * f.x.get(r, c);
                }
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - (f.y[r] as f32);
                for (c, g) in grad.iter_mut().enumerate() {
                    *g += err * f.x.get(r, c);
                }
            }
            for (wc, g) in w.iter_mut().zip(&grad) {
                *wc -= self.lr * g / f.x.rows() as f32;
            }
        }
        let mut correct = 0usize;
        for r in 0..f.x.rows() {
            let mut z = 0.0f32;
            for (c, wc) in w.iter().enumerate() {
                z += wc * f.x.get(r, c);
            }
            if (z > 0.0) as usize == f.y[r] {
                correct += 1;
            }
        }
        let acc = correct as f64 / f.x.rows() as f64;
        Ok(Artifact::new(
            ArtifactData::Model(ModelArtifact {
                family: "bench".into(),
                blob: w.iter().flat_map(|v| v.to_le_bytes()).collect(),
                score: Score::new(MetricKind::Accuracy, acc),
            }),
            self.output_schema(),
        ))
    }
    fn work_units(&self, inputs: &[Artifact]) -> u64 {
        inputs
            .first()
            .map(|a| a.byte_len() * TRAIN_EPOCHS as u64)
            .unwrap_or(1)
    }
    fn ns_per_unit(&self) -> u64 {
        4
    }
}

fn scenario(scalers: usize, models: usize) -> (ComponentRegistry, Arc<PipelineDag>, SearchSpaces) {
    let store = Arc::new(ChunkStore::in_memory());
    let reg = ComponentRegistry::with_exe_size(store, 4096);
    let slots = ["bench_source", "bench_scaler", "bench_model"];
    let mut spaces = SearchSpaces {
        slot_names: slots.iter().map(|s| s.to_string()).collect(),
        per_slot: vec![vec![], vec![], vec![]],
    };
    let src: Arc<dyn Component> = Arc::new(HeavySource);
    reg.register(src.clone()).expect("register source");
    spaces.per_slot[0].push(src.key());
    for i in 0..scalers {
        let c: Arc<dyn Component> = Arc::new(HeavyScaler {
            version: SemVer::master(0, i as u32),
            factor: 1.0 + i as f32 * 0.25,
        });
        reg.register(c.clone()).expect("register scaler");
        spaces.per_slot[1].push(c.key());
    }
    for i in 0..models {
        let c: Arc<dyn Component> = Arc::new(HeavyModel {
            version: SemVer::master(0, i as u32),
            lr: 0.05 + i as f32 * 0.01,
        });
        reg.register(c.clone()).expect("register model");
        spaces.per_slot[2].push(c.key());
    }
    let dag = Arc::new(PipelineDag::chain(&slots).expect("chain dag"));
    (reg, dag, spaces)
}

fn timed_search(policy: ParallelismPolicy) -> (f64, String) {
    let (reg, dag, spaces) = scenario(4, 8);
    let history = HistoryIndex::new();
    let engine = MergeEngine::new(&reg, reg.store(), dag).with_parallelism(policy);
    let ledger = ClockLedger::new();
    let start = Instant::now();
    let report = engine
        .search(&spaces, &history, MergeStrategy::Full, &ledger)
        .expect("search succeeds");
    let wall = start.elapsed().as_secs_f64();
    (wall, serde_json::to_string(&report).expect("serializable"))
}

fn main() {
    // Smoke mode (CI): one parallel run instead of the full worker sweep,
    // and no wall-clock threshold — the identity assertion still runs.
    let smoke = std::env::var("MLCASK_BENCH_SMOKE").is_ok();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("# Parallel candidate evaluation — wall-clock speedup");
    println!("\nmachine parallelism: {cores} — 1 source x 4 scalers x 8 models = 32 candidates");
    print_header(
        "merge search (Full strategy)",
        &["workers", "wall s", "speedup", "report identical"],
    );
    let (seq_wall, seq_report) = timed_search(ParallelismPolicy::Sequential);
    print_row(&[
        "1 (sequential)".into(),
        f2(seq_wall),
        "1.0x".into(),
        "-".into(),
    ]);
    let mut best_speedup = 1.0f64;
    let mut best_workers = 1usize;
    let sweep = if smoke {
        vec![2]
    } else {
        vec![2, 4, cores.max(4)]
    };
    for workers in sweep {
        let (wall, report) = timed_search(ParallelismPolicy::Parallel(workers));
        let speedup = seq_wall / wall.max(1e-9);
        if speedup > best_speedup {
            best_speedup = speedup;
            best_workers = workers;
        }
        print_row(&[
            workers.to_string(),
            f2(wall),
            format!("{speedup:.1}x"),
            if report == seq_report { "yes" } else { "NO" }.into(),
        ]);
        assert_eq!(
            report, seq_report,
            "parallel report diverged at {workers} workers"
        );
    }
    println!(
        "\nbest speedup {best_speedup:.1}x over sequential ({} candidates, identical reports)",
        32
    );
    write_bench_json(
        "parallel_speedup",
        &BenchPayload {
            candidates: 32,
            cores,
            wall_sequential_s: seq_wall,
            best_speedup,
            best_workers,
        },
    );
    if smoke {
        return;
    }
    if cores >= 4 && best_speedup < 1.5 {
        println!("warning: expected >=1.5x speedup on a >=4-core machine");
        std::process::exit(1);
    }
}
