//! Serving under live merges: snapshot-isolated reads vs the coarse-lock
//! baseline, driven end-to-end through the JSON-RPC daemon path.
//!
//! Three deterministic gates:
//!
//! 1. **Reader scaling** — 8 read-heavy sessions (log/head/branches/usage)
//!    hammer the router while one writer session runs a full cross-tenant
//!    merge. With snapshot publication every read resolves against a
//!    frozen [`GraphView`](mlcask_storage::commit::GraphView) and never
//!    waits; under `coarse_lock` (the pre-refactor discipline: one
//!    workspace-wide RwLock, mutations in write mode end to end) the merge
//!    starves every reader. The binary exits nonzero unless aggregate
//!    reader throughput during the merge is at least 2x the baseline's.
//!
//! 2. **No blocked readers** — in snapshot mode, no single reader
//!    operation may stall for the full merge duration (the coarse
//!    baseline's failure shape). Exits nonzero otherwise.
//!
//! 3. **Identity sweep** — the complete serving script (sessions, commits,
//!    grant/fork, merge, log, usages) on {mem, cask} x workers {1, 2, 8}:
//!    the concatenated response lines must be byte-identical across all
//!    six cells. The daemon is in the loop for every byte, so this extends
//!    the repo's determinism invariant over the serving surface.
//!
//! ```text
//! cargo run --release -p mlcask_bench --bin serving_load
//! ```

use mlcask_bench::{f2, print_header, print_row, write_bench_json};
use mlcask_core::workspace::Workspace;
use mlcask_pipeline::component::ComponentKey;
use mlcask_pipeline::parallel::ParallelismPolicy;
use mlcask_server::limits::AdmissionControl;
use mlcask_server::service::{Router, ServerOptions};
use mlcask_storage::backend::MemBackend;
use mlcask_storage::chunk::ChunkParams;
use mlcask_storage::costmodel::StorageCostModel;
use mlcask_storage::store::ChunkStore;
use mlcask_workloads::common::Workload;
use mlcask_workloads::readmission;
use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

const READERS: usize = 8;

#[derive(Serialize)]
struct BenchPayload {
    scenario: &'static str,
    readers: usize,
    snapshot_merge_s: f64,
    snapshot_reader_ops: u64,
    snapshot_reader_ops_per_s: f64,
    snapshot_max_read_s: f64,
    coarse_merge_s: f64,
    coarse_reader_ops: u64,
    coarse_reader_ops_per_s: f64,
    coarse_max_read_s: f64,
    throughput_ratio: f64,
    identity_configs: usize,
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mlcask-serving-load-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Issues one request line and asserts it succeeded.
fn rpc(router: &Router, id: u64, method: &str, params: &str) -> String {
    let line = format!(r#"{{"id":{id},"method":"{method}","params":{params}}}"#);
    let resp = router.handle_text(&line);
    assert!(!resp.contains(r#""error""#), "rpc {method} failed: {resp}");
    resp
}

/// Renders component keys as the protocol's `"name@version"` specs.
fn spec(keys: &[ComponentKey]) -> String {
    let items: Vec<String> = keys
        .iter()
        .map(|k| format!(r#""{}@{}""#, k.name, k.version))
        .collect();
    format!("[{}]", items.join(","))
}

/// Drives the collaboration setup through the daemon: upstream (session 1)
/// commits its history on `master`, grants downstream (session 2), which
/// forks `feature` and applies its dev updates. Every response line is
/// appended to `out` (the identity sweep's observation).
fn drive_setup(router: &Router, w: &Workload, out: &mut Vec<String>) {
    let mut id = 0u64;
    let mut next = || {
        id += 1;
        id
    };
    out.push(rpc(
        router,
        next(),
        "session.open",
        r#"{"tenant":"upstream"}"#,
    ));
    out.push(rpc(
        router,
        next(),
        "session.open",
        r#"{"tenant":"downstream"}"#,
    ));
    out.push(rpc(
        router,
        next(),
        "commit",
        &format!(
            r#"{{"session":1,"branch":"master","components":{},"message":"initial pipeline"}}"#,
            spec(&w.initial)
        ),
    ));
    out.push(rpc(
        router,
        next(),
        "grant",
        r#"{"session":1,"peer":"downstream","right":"merge_into"}"#,
    ));
    out.push(rpc(
        router,
        next(),
        "fork",
        r#"{"session":2,"peer":"upstream","branch":"master","new_branch":"feature"}"#,
    ));
    for (i, keys) in w.head_updates.iter().enumerate() {
        out.push(rpc(
            router,
            next(),
            "commit",
            &format!(
                r#"{{"session":1,"branch":"master","components":{},"message":"head update {i}"}}"#,
                spec(keys)
            ),
        ));
    }
    for (i, keys) in w.dev_updates.iter().enumerate() {
        out.push(rpc(
            router,
            next(),
            "commit",
            &format!(
                r#"{{"session":2,"branch":"feature","components":{},"message":"feature update {i}"}}"#,
                spec(keys)
            ),
        ));
    }
}

const MERGE_PARAMS: &str = r#"{"session":2,"peer":"upstream","peer_branch":"master","merging":"feature","strategy":"full"}"#;

struct LiveStats {
    merge_s: f64,
    reader_ops: u64,
    ops_per_s: f64,
    max_read_s: f64,
}

/// Phase A: 8 reader sessions walk upstream's history while downstream's
/// merge runs; returns merge duration and aggregate reader counters.
fn run_live(coarse: bool) -> LiveStats {
    let router = Arc::new(Router::in_memory(
        readmission::build(),
        ServerOptions {
            parallelism: ParallelismPolicy::Sequential,
            coarse_lock: coarse,
            admission: AdmissionControl::unlimited(),
        },
    ));
    let mut setup = Vec::new();
    drive_setup(&router, &readmission::build(), &mut setup);
    // Reader sessions 3..=2+READERS, all on the upstream tenant.
    for i in 0..READERS {
        rpc(
            &router,
            100 + i as u64,
            "session.open",
            r#"{"tenant":"upstream"}"#,
        );
    }

    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    let max_ns = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(READERS + 1));
    let mut handles = Vec::new();
    for r in 0..READERS {
        let router = Arc::clone(&router);
        let stop = Arc::clone(&stop);
        let ops = Arc::clone(&ops);
        let max_ns = Arc::clone(&max_ns);
        let barrier = Arc::clone(&barrier);
        let session = 3 + r as u64;
        handles.push(std::thread::spawn(move || {
            let reads = [
                format!(r#"{{"session":{session},"branch":"master","limit":10}}"#),
                format!(r#"{{"session":{session},"branch":"master"}}"#),
                format!(r#"{{"session":{session}}}"#),
                format!(r#"{{"session":{session}}}"#),
            ];
            let methods = ["log", "head", "branches", "usage"];
            barrier.wait();
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let t0 = Instant::now();
                rpc(&router, 1000 + i as u64, methods[i % 4], &reads[i % 4]);
                let ns = t0.elapsed().as_nanos() as u64;
                max_ns.fetch_max(ns, Ordering::Relaxed);
                ops.fetch_add(1, Ordering::Relaxed);
                i += 1;
            }
        }));
    }
    barrier.wait();
    let before = ops.load(Ordering::Relaxed);
    let t0 = Instant::now();
    let merged = rpc(&router, 999, "merge.into", MERGE_PARAMS);
    let merge_s = t0.elapsed().as_secs_f64();
    let during = ops.load(Ordering::Relaxed) - before;
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("reader thread");
    }
    assert!(
        merged.contains(r#""committed":true"#),
        "live merge must commit: {merged}"
    );
    LiveStats {
        merge_s,
        reader_ops: during,
        ops_per_s: during as f64 / merge_s.max(1e-9),
        max_read_s: max_ns.load(Ordering::Relaxed) as f64 / 1e9,
    }
}

/// Phase B: one full serving script, single-threaded, returning the
/// concatenated response lines as the cell's observation.
fn sweep_obs(backend: &str, workers: usize) -> String {
    let policy = if workers == 1 {
        ParallelismPolicy::Sequential
    } else {
        ParallelismPolicy::Parallel(workers)
    };
    let opts = ServerOptions {
        parallelism: policy,
        coarse_lock: false,
        admission: AdmissionControl::unlimited(),
    };
    let w = readmission::build();
    let (router, tmp) = match backend {
        "mem" => {
            let store = Arc::new(ChunkStore::new(
                Arc::new(MemBackend::new()),
                ChunkParams::DEFAULT,
                StorageCostModel::FORKBASE,
            ));
            (Router::over(Workspace::over(store), w, opts), None)
        }
        _ => {
            let root = temp_root("sweep");
            let ws = Workspace::durable(&root).expect("durable workspace opens");
            (Router::over(ws, w, opts), Some(root))
        }
    };
    let mut out = Vec::new();
    drive_setup(&router, &readmission::build(), &mut out);
    out.push(rpc(&router, 500, "merge.into", MERGE_PARAMS));
    out.push(rpc(
        &router,
        501,
        "log",
        r#"{"session":1,"branch":"master","limit":50}"#,
    ));
    out.push(rpc(&router, 502, "usage", r#"{"session":1}"#));
    out.push(rpc(&router, 503, "usage", r#"{"session":2}"#));
    out.push(rpc(&router, 504, "workspace.usage", "{}"));
    drop(router);
    if let Some(tmp) = tmp {
        let _ = std::fs::remove_dir_all(&tmp);
    }
    out.join("\n")
}

fn main() {
    println!("# Serving under live merges — snapshot isolation vs coarse lock");
    println!(
        "\nworkload: readmission collaboration over the JSON-RPC daemon path; \
         {READERS} reader sessions vs 1 merge writer"
    );

    // -- Phase A: reader scaling under a live merge --------------------------
    let snap = run_live(false);
    let coarse = run_live(true);
    print_header(
        "readers during the merge window",
        &["mode", "merge s", "reader ops", "ops/s", "max read s"],
    );
    print_row(&[
        "snapshot".into(),
        f2(snap.merge_s),
        snap.reader_ops.to_string(),
        f2(snap.ops_per_s),
        format!("{:.4}", snap.max_read_s),
    ]);
    print_row(&[
        "coarse lock".into(),
        f2(coarse.merge_s),
        coarse.reader_ops.to_string(),
        f2(coarse.ops_per_s),
        format!("{:.4}", coarse.max_read_s),
    ]);
    let ratio = snap.ops_per_s / coarse.ops_per_s.max(1e-9);
    println!(
        "\nreader throughput under a live merge: {:.0} vs {:.0} ops/s ({ratio:.1}x)",
        snap.ops_per_s, coarse.ops_per_s
    );

    // -- Phase B: identity sweep over the daemon path ------------------------
    print_header(
        "serving-script identity vs mem/sequential",
        &["backend", "workers", "identical"],
    );
    let mut reference: Option<String> = None;
    let mut configs = 0usize;
    for backend in ["mem", "cask"] {
        for workers in [1usize, 2, 8] {
            let obs = sweep_obs(backend, workers);
            let reference = reference.get_or_insert(obs.clone());
            let same = &obs == reference;
            print_row(&[
                backend.into(),
                workers.to_string(),
                if same { "yes" } else { "NO" }.into(),
            ]);
            assert_eq!(
                &obs, reference,
                "serving responses diverged: backend={backend} workers={workers}"
            );
            configs += 1;
        }
    }

    // -- Phase C: metrics scrape over the daemon path ------------------------
    // The registry is process-global, so a scrape through a fresh router
    // must expose the series phases A/B populated: per-tenant request
    // latency histograms, cask fsync latency, and (cache enabled) the blob
    // cache hit rate. A missing core series fails the bench — this is what
    // CI's bench-smoke leans on.
    let scraper = Router::in_memory(readmission::build(), ServerOptions::default());
    let scrape = rpc(&scraper, 600, "metrics.scrape", "{}");
    let mut required: Vec<&str> = vec![
        "mlcask_server_request_seconds_bucket",
        "mlcask_server_requests_total",
        "mlcask_cask_fsync_seconds",
        "mlcask_graph_append_ops_total",
        r#"tenant=\"upstream\""#,
    ];
    if mlcask_storage::cache::CacheOptions::from_env().is_some() {
        required.push("mlcask_blob_cache_hit_rate");
    }
    print_header("metrics.scrape core series", &["series", "present"]);
    let mut scrape_ok = true;
    for series in &required {
        let present = scrape.contains(series);
        scrape_ok &= present;
        print_row(&[
            series.to_string(),
            if present { "yes" } else { "NO" }.into(),
        ]);
    }

    write_bench_json(
        "serving_load",
        &BenchPayload {
            scenario: "readmission_collab_served",
            readers: READERS,
            snapshot_merge_s: snap.merge_s,
            snapshot_reader_ops: snap.reader_ops,
            snapshot_reader_ops_per_s: snap.ops_per_s,
            snapshot_max_read_s: snap.max_read_s,
            coarse_merge_s: coarse.merge_s,
            coarse_reader_ops: coarse.reader_ops,
            coarse_reader_ops_per_s: coarse.ops_per_s,
            coarse_max_read_s: coarse.max_read_s,
            throughput_ratio: ratio,
            identity_configs: configs,
        },
    );

    // -- Gates ---------------------------------------------------------------
    if ratio < 2.0 {
        println!("error: snapshot reads show no scaling win over the coarse lock ({ratio:.2}x)");
        std::process::exit(1);
    }
    if snap.max_read_s >= snap.merge_s {
        println!(
            "error: a snapshot-mode reader op stalled for a full merge duration \
             ({:.4} s vs merge {:.4} s)",
            snap.max_read_s, snap.merge_s
        );
        std::process::exit(1);
    }
    if snap.reader_ops == 0 {
        println!("error: no reader ops completed during the merge window");
        std::process::exit(1);
    }
    if !scrape_ok {
        println!("error: metrics.scrape is missing core telemetry series (see table above)");
        std::process::exit(1);
    }
}
