//! Fig. 7 — Cumulative storage size (CSS) for linear versioning.
//!
//! Paper shape: ModelDB grows linearly (every iteration re-archives all
//! outputs); MLflow stores each distinct output once but archives full
//! library copies; MLCask's chunk-level dedup keeps both libraries and
//! outputs cheapest, with visibly flatter growth.

use mlcask_baselines::prelude::*;
use mlcask_bench::{print_header, print_row, print_series};
use mlcask_workloads::prelude::*;

fn main() {
    let scenario = LinearScenario::default();
    println!("# Fig. 7 — Cumulative storage size (MiB)");
    for workload in all_workloads() {
        let sequence = linear_update_sequence(&workload, &scenario);
        print_header(
            &workload.name,
            &["iteration", "ModelDB", "MLflow", "MLCask"],
        );
        let results: Vec<LinearRunResult> = SystemKind::ALL
            .iter()
            .map(|&s| run_linear(s, &workload, &sequence).expect("linear run"))
            .collect();
        let css = |r: &LinearRunResult, it: usize| {
            r.iterations[it].cumulative_storage_bytes as f64 / (1024.0 * 1024.0)
        };
        for it in 0..results[0].iterations.len() {
            print_row(&[
                format!("{}", it + 1),
                format!("{:.2}", css(&results[0], it)),
                format!("{:.2}", css(&results[1], it)),
                format!("{:.2}", css(&results[2], it)),
            ]);
        }
        for r in &results {
            print_series(
                &format!("series {} {}", workload.name, r.system.label()),
                &(0..r.iterations.len())
                    .map(|it| format!("{:.2}", css(r, it)))
                    .collect::<Vec<_>>(),
            );
        }
        let (m, f, c) = (
            results[0].final_css_mib(),
            results[1].final_css_mib(),
            results[2].final_css_mib(),
        );
        println!(
            "\ncheck: ModelDB {m:.2} > MLflow {f:.2} > MLCask {c:.2} MiB — {}",
            if m > f && f > c {
                "OK (paper shape)"
            } else {
                "MISMATCH"
            }
        );
    }
}
