//! Fig. 11 — Distributed training analysis.
//!
//! (a) Training loss vs virtual time for k ∈ {1, 2, 4, 8} workers of
//! synchronous data-parallel SGD (real gradient math, modeled step time):
//! more workers reach low loss sooner.
//! (b) The pipeline-time speedup surface `1/((1-p) + p/k)` for training
//! fraction p and training speedup k, including the paper's observation
//! that p > 0.9 with k = 8 shrinks pipeline time below one fourth.

use mlcask_bench::{print_header, print_row, print_series};
use mlcask_ml::distributed::{pipeline_speedup, train_distributed, training_speedup, GpuCostModel};
use mlcask_ml::mlp::{synthetic_classification, MlpConfig};

fn main() {
    println!("# Fig. 11(a) — Training loss vs time (synchronous data-parallel)");
    let (x, y) = synthetic_classification(2048, 16, 2, 0.35, 77);
    let base = MlpConfig {
        hidden: vec![32],
        learning_rate: 0.1,
        epochs: 1,
        batch_size: 256,
        l2: 1e-4,
        seed: 5,
    };
    let cost = GpuCostModel::default();
    let steps = 60;
    let mut final_times = Vec::new();
    for k in [1usize, 2, 4, 8] {
        let run = train_distributed(&x, &y, 2, &base, k, 256, steps, cost);
        // Print a sparse curve: every 10th point.
        let pts: Vec<String> = run
            .curve
            .iter()
            .step_by(10)
            .map(|p| format!("({:.2}s,{:.4})", p.time_s, p.loss))
            .collect();
        print_series(&format!("{k} GPU loss curve"), &pts);
        final_times.push(run.curve.last().unwrap().time_s);
    }
    println!(
        "\ncheck: time to finish {steps} steps: 1gpu {:.2}s > 2gpu {:.2}s > 4gpu {:.2}s > 8gpu {:.2}s — {}",
        final_times[0],
        final_times[1],
        final_times[2],
        final_times[3],
        if final_times.windows(2).all(|w| w[0] > w[1]) {
            "OK (paper shape)"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "measured training speedup at batch 256: k=2 → {:.2}x, k=4 → {:.2}x, k=8 → {:.2}x",
        training_speedup(cost, 256, 2),
        training_speedup(cost, 256, 4),
        training_speedup(cost, 256, 8)
    );

    println!("\n# Fig. 11(b) — Pipeline time speedup = 1 / ((1-p) + p/k)");
    print_header("speedup surface", &["p \\ k", "1", "2", "4", "8"]);
    for p in [0.1, 0.3, 0.5, 0.7, 0.9, 0.95] {
        print_row(
            &std::iter::once(format!("{p:.2}"))
                .chain(
                    [1.0, 2.0, 4.0, 8.0]
                        .iter()
                        .map(|&k| format!("{:.2}", pipeline_speedup(p, k))),
                )
                .collect::<Vec<_>>(),
        );
    }
    let s = pipeline_speedup(0.92, 8.0);
    println!(
        "\ncheck: p=0.92, k=8 → speedup {s:.2} (> 4 ⇒ pipeline time < 1/4) — {}",
        if s > 4.0 {
            "OK (paper claim)"
        } else {
            "MISMATCH"
        }
    );
}
