//! Fig. 10 — Prioritized pipeline search vs random search.
//!
//! For each workload's merge scenario, runs 100 trials of both search
//! methods over all N candidates and prints, per search rank, the average
//! end time, mean score, and score variance — the quantities behind the
//! paper's scatter plots. Paper shape: prioritized scores are widely spread
//! (high first, low last) with high-score candidates finishing early;
//! random scores are flat across ranks.

use mlcask_bench::{f4, print_header, print_row};
use mlcask_core::prelude::*;
use mlcask_workloads::prelude::*;

const TRIALS: usize = 100;

fn main() {
    println!("# Fig. 10 — Prioritized pipeline search ({TRIALS} trials)");
    for workload in all_workloads() {
        let (registry, sys) = build_system(&workload).expect("system");
        setup_nonlinear(&sys, &workload).expect("fig-3 history");
        let spaces = sys.merge_search_spaces("master", "dev").expect("spaces");
        let init = sys.initial_scores("master", "dev").expect("initial scores");
        let searcher = PrioritizedSearcher::new(&registry, sys.dag().clone());
        print_header(
            &workload.name,
            &[
                "rank",
                "prioritized avg end (s)",
                "prioritized mean score",
                "prioritized var",
                "random avg end (s)",
                "random mean score",
                "random var",
            ],
        );
        let pri = searcher
            .run_trials(
                &spaces,
                sys.history(),
                &init,
                SearchMethod::Prioritized,
                TRIALS,
                11,
            )
            .expect("prioritized trials");
        let rnd = searcher
            .run_trials(
                &spaces,
                sys.history(),
                &init,
                SearchMethod::Random,
                TRIALS,
                11,
            )
            .expect("random trials");
        for (k, (p, r)) in pri.per_rank.iter().zip(rnd.per_rank.iter()).enumerate() {
            print_row(&[
                format!("{}", k + 1),
                format!("{:.3}", p.avg_end_time_s),
                f4(p.mean_score),
                format!("{:.5}", p.var_score),
                format!("{:.3}", r.avg_end_time_s),
                f4(r.mean_score),
                format!("{:.5}", r.var_score),
            ]);
        }
        // Shape check: prioritized search runs high-score candidates first,
        // so the mean score of the first third of ranks exceeds the last
        // third by more than random's (whose ranks are exchangeable).
        let third = (pri.per_rank.len() / 3).max(1);
        let mean_of = |ranks: &[mlcask_core::prelude::RankStats]| {
            ranks.iter().map(|r| r.mean_score).sum::<f64>() / ranks.len() as f64
        };
        let p_spread =
            mean_of(&pri.per_rank[..third]) - mean_of(&pri.per_rank[pri.per_rank.len() - third..]);
        let r_spread = (mean_of(&rnd.per_rank[..third])
            - mean_of(&rnd.per_rank[rnd.per_rank.len() - third..]))
        .abs();
        println!(
            "\ncheck: prioritized first-vs-last-third spread {:.4} > random {:.4} — {}",
            p_spread,
            r_spread,
            if p_spread > r_spread {
                "OK (paper shape)"
            } else {
                "MISMATCH"
            }
        );
    }
}
