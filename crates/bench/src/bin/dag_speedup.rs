//! Wall-clock speedup of DAG-internal parallel execution.
//!
//! Builds a *wide* pipeline — one source fanning out to eight independent,
//! compute-heavy feature branches that a sink model fuses — and runs the
//! same `Executor::run` under `ParallelismPolicy::Sequential` and
//! increasing worker counts. Reports, ledger charges, and store statistics
//! are asserted byte-identical (the wavefront determinism contract); only
//! wall-clock time should change. Run with `--release`:
//!
//! ```text
//! cargo run --release -p mlcask_bench --bin dag_speedup
//! ```

use mlcask_bench::{f2, print_header, print_row, write_bench_json};
use mlcask_ml::metrics::{MetricKind, Score};
use mlcask_ml::tensor::Matrix;
use mlcask_pipeline::artifact::{Artifact, ArtifactData, Features, ModelArtifact};
use mlcask_pipeline::clock::ClockLedger;
use mlcask_pipeline::component::{Component, ComponentHandle, StageKind};
use mlcask_pipeline::dag::{BoundPipeline, PipelineDag};
use mlcask_pipeline::executor::{ExecOptions, Executor};
use mlcask_pipeline::parallel::ParallelismPolicy;
use mlcask_pipeline::schema::{Schema, SchemaId};
use mlcask_pipeline::semver::SemVer;
use mlcask_storage::store::ChunkStore;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct BenchPayload {
    branches: usize,
    cores: usize,
    wall_sequential_s: f64,
    best_speedup: f64,
    best_workers: usize,
}

const ROWS: usize = 1200;
const DIM: usize = 16;
const BRANCHES: usize = 8;
const BRANCH_EPOCHS: usize = 60;

fn feature_schema() -> SchemaId {
    Schema::FeatureMatrix {
        dim: DIM,
        n_classes: 2,
    }
    .id()
}

struct WideSource;

impl Component for WideSource {
    fn name(&self) -> &str {
        "wide_source"
    }
    fn version(&self) -> SemVer {
        SemVer::master(0, 0)
    }
    fn stage(&self) -> StageKind {
        StageKind::Ingest
    }
    fn input_schema(&self) -> Option<SchemaId> {
        None
    }
    fn output_schema(&self) -> SchemaId {
        feature_schema()
    }
    fn run(&self, _inputs: &[Artifact]) -> mlcask_pipeline::errors::Result<Artifact> {
        let x = Matrix::from_fn(ROWS, DIM, |r, c| ((r * 31 + c * 7) % 17) as f32 / 17.0);
        let y = (0..ROWS).map(|r| r % 2).collect();
        Ok(Artifact::new(
            ArtifactData::Features(Features { x, y, n_classes: 2 }),
            self.output_schema(),
        ))
    }
    fn work_units(&self, _inputs: &[Artifact]) -> u64 {
        (ROWS * DIM) as u64
    }
}

/// One independent feature branch doing real (deterministic) gradient work
/// — the compute-bound regime DAG-internal fan-out targets.
struct HeavyBranch {
    name: String,
    lr: f32,
}

impl Component for HeavyBranch {
    fn name(&self) -> &str {
        &self.name
    }
    fn version(&self) -> SemVer {
        SemVer::master(0, 0)
    }
    fn stage(&self) -> StageKind {
        StageKind::PreProcess
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(feature_schema())
    }
    fn output_schema(&self) -> SchemaId {
        feature_schema()
    }
    fn run(&self, inputs: &[Artifact]) -> mlcask_pipeline::errors::Result<Artifact> {
        self.check_compatibility(inputs)?;
        let ArtifactData::Features(f) = &inputs[0].data else {
            unreachable!("schema-checked input is a feature matrix");
        };
        // Deterministic logistic-regression epochs whose weights re-scale
        // the branch's feature view.
        let mut w = [0.05f32; DIM];
        for _ in 0..BRANCH_EPOCHS {
            let mut grad = [0.0f32; DIM];
            for r in 0..f.x.rows() {
                let mut z = 0.0f32;
                for (c, wc) in w.iter().enumerate() {
                    z += wc * f.x.get(r, c);
                }
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - (f.y[r] as f32);
                for (c, g) in grad.iter_mut().enumerate() {
                    *g += err * f.x.get(r, c);
                }
            }
            for (wc, g) in w.iter_mut().zip(&grad) {
                *wc -= self.lr * g / f.x.rows() as f32;
            }
        }
        let x = Matrix::from_fn(f.x.rows(), DIM, |r, c| f.x.get(r, c) * (1.0 + w[c].abs()));
        Ok(Artifact::new(
            ArtifactData::Features(Features {
                x,
                y: f.y.clone(),
                n_classes: f.n_classes,
            }),
            self.output_schema(),
        ))
    }
    fn work_units(&self, inputs: &[Artifact]) -> u64 {
        inputs
            .first()
            .map(|a| a.byte_len() * BRANCH_EPOCHS as u64)
            .unwrap_or(1)
    }
    fn ns_per_unit(&self) -> u64 {
        4
    }
}

/// Sink: fuses every branch's view and scores a simple threshold model.
struct FuseModel;

impl Component for FuseModel {
    fn name(&self) -> &str {
        "fuse_model"
    }
    fn version(&self) -> SemVer {
        SemVer::master(0, 0)
    }
    fn stage(&self) -> StageKind {
        StageKind::ModelTraining
    }
    fn input_schema(&self) -> Option<SchemaId> {
        Some(feature_schema())
    }
    fn output_schema(&self) -> SchemaId {
        Schema::Model {
            family: "wide".into(),
        }
        .id()
    }
    fn run(&self, inputs: &[Artifact]) -> mlcask_pipeline::errors::Result<Artifact> {
        self.check_compatibility(inputs)?;
        let branches: Vec<&Features> = inputs
            .iter()
            .map(|a| match &a.data {
                ArtifactData::Features(f) => f,
                _ => unreachable!("schema-checked inputs are feature matrices"),
            })
            .collect();
        let first = branches[0];
        let mut correct = 0usize;
        for r in 0..first.x.rows() {
            let mut z = 0.0f32;
            for f in &branches {
                for c in 0..DIM {
                    z += f.x.get(r, c) - 0.55;
                }
            }
            if (z > 0.0) as usize == first.y[r] {
                correct += 1;
            }
        }
        let acc = correct as f64 / first.x.rows() as f64;
        Ok(Artifact::new(
            ArtifactData::Model(ModelArtifact {
                family: "wide".into(),
                blob: vec![1u8; 32],
                score: Score::new(MetricKind::Accuracy, acc),
            }),
            self.output_schema(),
        ))
    }
    fn work_units(&self, inputs: &[Artifact]) -> u64 {
        inputs.iter().map(|a| a.byte_len()).sum::<u64>().max(1)
    }
}

fn wide_pipeline() -> BoundPipeline {
    let branch_names: Vec<String> = (0..BRANCHES).map(|i| format!("branch_{i}")).collect();
    let branch_refs: Vec<&str> = branch_names.iter().map(|s| s.as_str()).collect();
    let dag = PipelineDag::fan("wide_source", &branch_refs, "fuse_model").expect("well-formed fan");
    let mut comps: Vec<ComponentHandle> = vec![Arc::new(WideSource)];
    for (i, n) in branch_names.iter().enumerate() {
        comps.push(Arc::new(HeavyBranch {
            name: n.clone(),
            lr: 0.05 + i as f32 * 0.01,
        }));
    }
    comps.push(Arc::new(FuseModel));
    BoundPipeline::new(Arc::new(dag), comps).expect("well-formed wide pipeline")
}

fn timed_run(policy: ParallelismPolicy) -> (f64, String) {
    let pipeline = wide_pipeline();
    let store = ChunkStore::in_memory();
    let exec = Executor::new(&store);
    let ledger = ClockLedger::new();
    let start = Instant::now();
    let report = exec
        .run(
            &pipeline,
            &ledger,
            None,
            ExecOptions::RERUN_ALL.with_parallelism(policy),
        )
        .expect("run succeeds");
    let wall = start.elapsed().as_secs_f64();
    let observables = format!(
        "report={} ledger={} stats={}",
        serde_json::to_string(&report).expect("serializable"),
        serde_json::to_string(&ledger.snapshot()).expect("serializable"),
        serde_json::to_string(&store.stats()).expect("serializable"),
    );
    (wall, observables)
}

fn main() {
    // Smoke mode (CI): one parallel run instead of the full worker sweep,
    // and no wall-clock threshold — the identity assertion still runs.
    let smoke = std::env::var("MLCASK_BENCH_SMOKE").is_ok();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("# DAG-internal parallel execution — wall-clock speedup");
    println!(
        "\nmachine parallelism: {cores} — one pipeline: source -> {BRANCHES} heavy branches -> sink"
    );
    print_header(
        "single-pipeline wavefront execution",
        &["workers", "wall s", "speedup", "report identical"],
    );
    let (seq_wall, seq_obs) = timed_run(ParallelismPolicy::Sequential);
    print_row(&[
        "1 (sequential)".into(),
        f2(seq_wall),
        "1.0x".into(),
        "-".into(),
    ]);
    let mut best_speedup = 1.0f64;
    let mut best_workers = 1usize;
    let mut sweep = if smoke { vec![2] } else { vec![2, 4] };
    if !smoke && cores > 4 {
        sweep.push(cores);
    }
    for workers in sweep {
        let (wall, obs) = timed_run(ParallelismPolicy::Parallel(workers));
        let speedup = seq_wall / wall.max(1e-9);
        if speedup > best_speedup {
            best_speedup = speedup;
            best_workers = workers;
        }
        print_row(&[
            workers.to_string(),
            f2(wall),
            format!("{speedup:.1}x"),
            if obs == seq_obs { "yes" } else { "NO" }.into(),
        ]);
        assert_eq!(
            obs, seq_obs,
            "wavefront report diverged at {workers} workers"
        );
    }
    println!(
        "\nbest speedup {best_speedup:.1}x over sequential ({BRANCHES} independent branches, identical reports)"
    );
    write_bench_json(
        "dag_speedup",
        &BenchPayload {
            branches: BRANCHES,
            cores,
            wall_sequential_s: seq_wall,
            best_speedup,
            best_workers,
        },
    );
    if smoke {
        return;
    }
    if cores >= 4 && best_speedup < 1.5 {
        println!("warning: expected >=1.5x speedup on a >=4-core machine");
        std::process::exit(1);
    }
}
