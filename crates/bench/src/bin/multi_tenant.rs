//! Multi-tenant workspace economics: cross-pipeline dedup + batched commits.
//!
//! Two measurements on the shared-workspace layer:
//!
//! 1. **Cross-tenant dedup** — N teams evolve the Readmission workload over
//!    one shared `Workspace` vs. one isolated `MlCask` instance per team.
//!    Shared chunks (datasets, library executables, reusable outputs) are
//!    stored once physically; the bench reports the per-tenant
//!    first-writer-pays attribution, the fair-share view, and the bytes an
//!    isolated-store deployment would pay instead.
//! 2. **Batched commits** — the same update sequence committed one
//!    `commit_pipeline` at a time vs. one `Workspace::commit_batch`: heads
//!    and commit ids are asserted identical while the batch performs a
//!    single commit-graph append and amortizes the store's fixed per-object
//!    latency across all metafiles.
//!
//! Run with `--release`:
//!
//! ```text
//! cargo run --release -p mlcask_bench --bin multi_tenant
//! ```
//!
//! Set `MLCASK_BENCH_SMOKE=1` to run a reduced configuration (CI smoke:
//! checks the bin still works, skips the economics thresholds).

use mlcask_bench::{f2, mib, print_header, print_row, ratio};
use mlcask_pipeline::clock::ClockLedger;
use mlcask_pipeline::component::ComponentKey;
use mlcask_workloads::readmission;
use mlcask_workloads::scenario::{
    build_multi_tenant, build_system, linear_update_sequence, setup_nonlinear, LinearScenario,
};
use std::time::Instant;

fn main() {
    let smoke = std::env::var("MLCASK_BENCH_SMOKE").is_ok();
    let teams: Vec<String> = (0..if smoke { 2 } else { 4 })
        .map(|i| format!("team_{}", (b'a' + i as u8) as char))
        .collect();
    let team_refs: Vec<&str> = teams.iter().map(|s| s.as_str()).collect();
    let w = readmission::build();

    // ---- 1. Cross-tenant dedup: shared workspace vs isolated stores. ----
    let (ws, systems) = build_multi_tenant(&w, &team_refs).expect("workspace builds");
    for t in &systems {
        setup_nonlinear(&t.sys, &w).expect("tenant history builds");
    }
    let shared_physical = ws.store().physical_bytes();
    let shared_logical = ws.store().stats().total().logical_bytes;

    let mut isolated_physical = 0u64;
    for _ in &teams {
        let (_reg, sys) = build_system(&w).expect("isolated system builds");
        setup_nonlinear(&sys, &w).expect("isolated history builds");
        isolated_physical += sys.store().physical_bytes();
    }

    println!("# Multi-tenant workspace — dedup + batched commits");
    println!(
        "\n{} teams x readmission (Fig. 3 history each), one shared store",
        teams.len()
    );
    print_header(
        "per-tenant storage attribution",
        &[
            "tenant",
            "logical MiB",
            "paid MiB (first-writer)",
            "fair-share MiB",
        ],
    );
    let usages = ws.usages();
    let shares = ws.shared_view();
    for team in &teams {
        print_row(&[
            team.clone(),
            mib(usages[team].logical_bytes),
            mib(usages[team].physical_bytes),
            mib(shares[team].amortized_bytes as u64),
        ]);
    }
    let attributed: u64 = usages.values().map(|u| u.physical_bytes).sum();
    assert_eq!(
        attributed, shared_physical,
        "first-writer-pays attribution must sum to the store total"
    );

    print_header(
        "shared workspace vs isolated stores",
        &["deployment", "physical MiB", "vs shared"],
    );
    print_row(&[
        "shared workspace".into(),
        mib(shared_physical),
        "1.0x".into(),
    ]);
    print_row(&[
        format!("{} isolated stores", teams.len()),
        mib(isolated_physical),
        ratio(isolated_physical as f64, shared_physical as f64),
    ]);
    let dedup = shared_logical as f64 / shared_physical.max(1) as f64;
    let cross = isolated_physical as f64 / shared_physical.max(1) as f64;
    println!(
        "\nshared-store dedup ratio {dedup:.2} (logical/physical); isolated stores pay {cross:.2}x the bytes"
    );

    // ---- 2. Batched commits: N appends vs one. ----
    let iterations = if smoke { 4 } else { 10 };
    let sc = LinearScenario {
        iterations,
        ..LinearScenario::default()
    };
    // Drop the scenario's final (deliberately incompatible) update so every
    // commit in the throughput comparison lands.
    let seq = linear_update_sequence(&w, &sc);
    let updates: Vec<(Vec<ComponentKey>, String)> = seq[..seq.len() - 1]
        .iter()
        .enumerate()
        .map(|(i, keys)| (keys.clone(), format!("update {i}")))
        .collect();

    let (_reg_u, sys_u) = build_system(&w).expect("unbatched system builds");
    let clock_u = ClockLedger::new();
    let start = Instant::now();
    for (keys, msg) in &updates {
        let res = sys_u
            .commit_pipeline("master", keys, msg, &clock_u)
            .expect("unbatched commit");
        assert!(res.commit.is_some());
    }
    let wall_u = start.elapsed().as_secs_f64();

    let (_reg_b, sys_b) = build_system(&w).expect("batched system builds");
    let clock_b = ClockLedger::new();
    let start = Instant::now();
    let results = sys_b
        .workspace()
        .commit_batch(&sys_b, "master", &updates, &clock_b)
        .expect("batched commit");
    let wall_b = start.elapsed().as_secs_f64();

    // Heads and ids must be identical — the batch only amortizes cost.
    let head_u = sys_u.graph().head("master").expect("unbatched head");
    let head_b = sys_b.graph().head("master").expect("batched head");
    assert_eq!(
        head_u.id, head_b.id,
        "batched history must equal sequential"
    );
    assert_eq!(results.len(), updates.len());

    print_header(
        "batched vs unbatched commits",
        &["path", "commits", "graph appends", "wall s", "commits/s"],
    );
    print_row(&[
        "commit_pipeline xN".into(),
        updates.len().to_string(),
        sys_u.graph().append_ops().to_string(),
        f2(wall_u),
        f2(updates.len() as f64 / wall_u.max(1e-9)),
    ]);
    print_row(&[
        "commit_batch".into(),
        updates.len().to_string(),
        sys_b.graph().append_ops().to_string(),
        f2(wall_b),
        f2(updates.len() as f64 / wall_b.max(1e-9)),
    ]);
    assert_eq!(sys_b.graph().append_ops(), 1, "one append for the batch");
    assert_eq!(sys_u.graph().append_ops(), updates.len() as u64);
    let saved_latency_ms = (updates.len().saturating_sub(1) as u64
        * sys_b.store().cost_model().latency_ns) as f64
        / 1e6;
    println!(
        "\nbatch: 1 graph append instead of {}, {saved_latency_ms:.1} ms of modeled per-object latency amortized away",
        updates.len()
    );

    if !smoke {
        assert!(
            cross > 1.5,
            "expected isolated stores to pay >1.5x the shared workspace, got {cross:.2}x"
        );
        assert!(dedup > 1.5, "expected dedup ratio >1.5, got {dedup:.2}");
    }
}
