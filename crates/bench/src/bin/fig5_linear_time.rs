//! Fig. 5 — Total time for linear versioning.
//!
//! Reproduces the four subplots of Fig. 5: cumulative pipeline time per
//! iteration (1–10) for ModelDB, MLflow, and MLCask on each workload. The
//! paper's shape: ModelDB grows linearly and fastest (no reuse); MLflow and
//! MLCask track each other closely (both reuse); at the final iteration the
//! baselines pay for the doomed run while MLCask's precheck costs nothing.

use mlcask_baselines::prelude::*;
use mlcask_bench::{f2, print_header, print_row, print_series};
use mlcask_workloads::prelude::*;

fn main() {
    let scenario = LinearScenario::default();
    println!("# Fig. 5 — Total time for linear versioning (virtual seconds)");
    println!(
        "\nscenario: {} iterations, p(pre-processing update)={}, seed={}",
        scenario.iterations, scenario.p_update_preproc, scenario.seed
    );
    for workload in all_workloads() {
        let sequence = linear_update_sequence(&workload, &scenario);
        print_header(
            &format!("Fig. 5({}) {}", subfig(&workload.name), workload.name),
            &["iteration", "ModelDB", "MLflow", "MLCask"],
        );
        let results: Vec<LinearRunResult> = SystemKind::ALL
            .iter()
            .map(|&s| run_linear(s, &workload, &sequence).expect("linear run"))
            .collect();
        let n = results[0].iterations.len();
        for it in 0..n {
            print_row(&[
                format!("{}", it + 1),
                f2(results[0].iterations[it].cumulative.total_secs()),
                f2(results[1].iterations[it].cumulative.total_secs()),
                f2(results[2].iterations[it].cumulative.total_secs()),
            ]);
        }
        // Figure-style series for quick plotting.
        for r in &results {
            print_series(
                &format!("series {} {}", workload.name, r.system.label()),
                &r.iterations
                    .iter()
                    .map(|i| f2(i.cumulative.total_secs()))
                    .collect::<Vec<_>>(),
            );
        }
        let (m, f, c) = (
            results[0].total_time_secs(),
            results[1].total_time_secs(),
            results[2].total_time_secs(),
        );
        println!(
            "\ncheck: ModelDB {} > MLflow {} >= MLCask {} — {}",
            f2(m),
            f2(f),
            f2(c),
            if m > f && f >= c {
                "OK (paper shape)"
            } else {
                "MISMATCH"
            }
        );
    }
}

fn subfig(name: &str) -> &'static str {
    match name {
        "readmission" => "a",
        "dpm" => "b",
        "sa" => "c",
        _ => "d",
    }
}
