//! Wall-clock win of provenance-keyed incremental re-evaluation.
//!
//! Drives the what-if component-swap scenario (`mlcask_workloads::whatif`):
//! a committed five-stage pipeline with a compute-heavy three-stage prefix,
//! re-evaluated under a batch of cheap `select`-stage swaps. Compares
//!
//! * **full re-evaluation** — empty history, every candidate scheduled and
//!   the shared prefix executed (the pre-provenance behaviour), against
//! * **incremental re-evaluation** — the committed run lifted into the
//!   provenance index, so the frontier cut removes the prefix from every
//!   candidate's plan statically and only the dirty suffix runs,
//!
//! and asserts the incremental reports are byte-identical to a primed
//! non-incremental sequential search at workers {1, 2, 8} (the
//! `skipped_by_frontier` telemetry field is zeroed on both sides first —
//! it is *designed* to differ, every other byte must match). Run with
//! `--release`:
//!
//! ```text
//! cargo run --release -p mlcask_bench --bin incremental_reeval
//! ```

use mlcask_bench::{f2, print_header, print_row, write_bench_json};
use mlcask_core::history::HistoryIndex;
use mlcask_core::merge::{MergeEngine, MergeSearchReport, MergeStrategy};
use mlcask_core::registry::ComponentRegistry;
use mlcask_pipeline::clock::ClockLedger;
use mlcask_pipeline::executor::{ExecOptions, Executor};
use mlcask_pipeline::parallel::ParallelismPolicy;
use mlcask_workloads::whatif;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

struct Run {
    wall: f64,
    report: MergeSearchReport,
}

#[derive(Serialize)]
struct BenchPayload {
    scenario: &'static str,
    candidates: usize,
    executed_components: usize,
    reused_components: usize,
    skipped_by_frontier: usize,
    wall_full_s: f64,
    wall_incremental_s: f64,
    speedup: f64,
}

/// One full what-if search on a fresh system. `primed` commits the base
/// pipeline and lifts it into the provenance index first (setup, untimed);
/// `incremental` toggles the frontier-cut fast path. Only the search is
/// timed.
fn search(policy: ParallelismPolicy, primed: bool, incremental: bool) -> Run {
    let w = whatif::build();
    let store = Arc::new(mlcask_storage::store::ChunkStore::in_memory());
    let reg = ComponentRegistry::new(store);
    w.register_all(&reg).expect("what-if components register");
    let engine = MergeEngine::new(&reg, reg.store(), Arc::new(w.dag()))
        .with_parallelism(policy)
        .with_incremental(incremental);
    let history = HistoryIndex::new();
    if primed {
        let bound = engine.bind(&w.base).expect("base pipeline binds");
        let clock = ClockLedger::new();
        Executor::new(reg.store())
            .run(&bound, &clock, Some(&history), ExecOptions::MLCASK)
            .expect("base pipeline runs");
        history
            .provenance()
            .absorb(&bound, &history)
            .expect("committed run lifts into provenance");
    }
    let clock = ClockLedger::new();
    let start = Instant::now();
    let report = engine
        .search(&w.spaces(), &history, MergeStrategy::Full, &clock)
        .expect("what-if search succeeds");
    Run {
        wall: start.elapsed().as_secs_f64(),
        report,
    }
}

/// Serialized report with the frontier telemetry zeroed — the one field
/// whose whole point is to differ between incremental and not.
fn normalized(report: &MergeSearchReport) -> String {
    let mut r = report.clone();
    r.skipped_by_frontier = 0;
    serde_json::to_string(&r).expect("report serializes")
}

fn main() {
    let smoke = std::env::var("MLCASK_BENCH_SMOKE").is_ok();
    let reps = if smoke { 1 } else { 3 };
    println!("# Provenance-keyed incremental re-evaluation — what-if component swap");
    println!(
        "\nscenario: heavy shared prefix (ingest -> clean -> featurize) + {} select variants; \
         full = empty history, incremental = committed base lifted into provenance",
        whatif::VARIANTS
    );

    // Wall-clock: best of `reps` for each side, sequential policies (the
    // contrast under test is plan-level, not worker-level).
    let mut full_wall = f64::INFINITY;
    let mut inc_wall = f64::INFINITY;
    let mut full_run = None;
    let mut inc_run = None;
    for _ in 0..reps {
        let r = search(ParallelismPolicy::Sequential, false, false);
        if r.wall < full_wall {
            full_wall = r.wall;
        }
        full_run = Some(r);
        let r = search(ParallelismPolicy::Sequential, true, true);
        if r.wall < inc_wall {
            inc_wall = r.wall;
        }
        inc_run = Some(r);
    }
    let full_run = full_run.expect("at least one rep");
    let inc_run = inc_run.expect("at least one rep");
    let speedup = full_wall / inc_wall.max(1e-9);

    print_header(
        "what-if batch re-evaluation",
        &[
            "mode",
            "wall s",
            "executed",
            "reused",
            "skipped by frontier",
        ],
    );
    print_row(&[
        "full re-evaluation".into(),
        f2(full_wall),
        full_run.report.executed_components.to_string(),
        full_run.report.reused_components.to_string(),
        full_run.report.skipped_by_frontier.to_string(),
    ]);
    print_row(&[
        "incremental".into(),
        f2(inc_wall),
        inc_run.report.executed_components.to_string(),
        inc_run.report.reused_components.to_string(),
        inc_run.report.skipped_by_frontier.to_string(),
    ]);
    println!("\nspeedup: {speedup:.1}x (wall-clock, full / incremental)");

    // The fast path must actually fire: the shared prefix is cut out of
    // every variant's plan (CI gates on this in smoke mode).
    if inc_run.report.skipped_by_frontier == 0 {
        println!("error: frontier cut never fired on the what-if scenario");
        std::process::exit(1);
    }

    // Byte-identity: incremental reports at workers {1,2,8} must match a
    // primed *non*-incremental sequential search, telemetry zeroed.
    let reference = search(ParallelismPolicy::Sequential, true, false);
    assert_eq!(
        reference.report.skipped_by_frontier, 0,
        "non-incremental search must not cut"
    );
    let ref_obs = normalized(&reference.report);
    print_header(
        "report identity vs primed non-incremental sequential",
        &["workers", "identical"],
    );
    for workers in [1usize, 2, 8] {
        let policy = if workers == 1 {
            ParallelismPolicy::Sequential
        } else {
            ParallelismPolicy::Parallel(workers)
        };
        let run = search(policy, true, true);
        let obs = normalized(&run.report);
        print_row(&[
            workers.to_string(),
            if obs == ref_obs { "yes" } else { "NO" }.into(),
        ]);
        assert_eq!(
            obs, ref_obs,
            "incremental report diverged at {workers} workers"
        );
        assert!(run.report.skipped_by_frontier > 0);
    }

    write_bench_json(
        "incremental",
        &BenchPayload {
            scenario: "whatif_component_swap",
            candidates: inc_run.report.candidates_evaluated,
            executed_components: inc_run.report.executed_components,
            reused_components: inc_run.report.reused_components,
            skipped_by_frontier: inc_run.report.skipped_by_frontier,
            wall_full_s: full_wall,
            wall_incremental_s: inc_wall,
            speedup,
        },
    );

    if smoke {
        return;
    }
    if speedup < 3.0 {
        println!("error: expected >=3x speedup over full re-evaluation, got {speedup:.1}x");
        std::process::exit(1);
    }
}
