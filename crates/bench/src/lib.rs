//! # mlcask-bench
//!
//! Experiment harness regenerating every table and figure of the MLCask
//! evaluation (§VII). One binary per figure/table prints the same
//! rows/series the paper plots; `cargo bench` runs the criterion
//! microbenchmarks on the underlying mechanisms.
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `fig5_linear_time` | Fig. 5 — linear-versioning total time |
//! | `fig6_time_composition` | Fig. 6 — pipeline time composition |
//! | `fig7_linear_storage` | Fig. 7 — cumulative storage size |
//! | `fig8_nonlinear` | Fig. 8 — merge CPT/CSS/CET/CST + headline ratios |
//! | `fig9_merge_composition` | Fig. 9 — merge time composition |
//! | `fig10_prioritized` | Fig. 10 — prioritized vs random search |
//! | `table1_optimal_found` | Table I — % trials with optimum found |
//! | `fig11_distributed` | Fig. 11 — distributed training |

#![warn(missing_docs)]

use std::fmt::Display;

/// Prints a markdown-style table header.
pub fn print_header(title: &str, cols: &[&str]) {
    println!("\n## {title}\n");
    println!("| {} |", cols.join(" | "));
    println!(
        "|{}|",
        cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Prints one markdown table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Formats a float with 2 decimal places.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 4 decimal places.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats bytes as MiB with 2 decimals.
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a ratio as `N.Nx`.
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "-".into()
    } else {
        format!("{:.1}x", a / b)
    }
}

/// Prints a named series (figure line) as `label: v1 v2 v3 ...`.
pub fn print_series<T: Display>(label: &str, values: &[T]) {
    let joined = values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(" ");
    println!("{label}: {joined}");
}

/// Schema version of the `BENCH_*.json` envelope written by
/// [`write_bench_json`]. Bump when the envelope shape changes.
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// Persists one bench run's headline numbers as machine-readable JSON so
/// the perf trajectory across PRs is diffable. Writes `BENCH_<name>.json`
/// into `MLCASK_BENCH_DIR` (default: the current directory) and prints the
/// path. Failures are reported but never fail the bench — the trajectory is
/// advisory, the in-process assertions are the gate.
///
/// Every bench shares one envelope: `schema_version`, the bench name, a
/// best-effort `git_describe` of the producing tree, the bench-specific
/// `payload`, and a final [`MetricsRegistry`](mlcask_obs::MetricsRegistry)
/// snapshot (`metrics`) — counters/gauges by series, histograms as
/// `_sum`/`_count` — so a trajectory diff can correlate headline numbers
/// with the telemetry that produced them.
pub fn write_bench_json<T: serde::Serialize>(name: &str, payload: &T) {
    use serde::Value;
    let dir = std::env::var("MLCASK_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    let metrics = mlcask_obs::MetricsRegistry::global()
        .snapshot()
        .into_iter()
        .map(|(series, v)| (series, Value::F64(v)))
        .collect::<Vec<_>>();
    let envelope = Value::Map(vec![
        (
            "schema_version".to_string(),
            Value::U64(BENCH_SCHEMA_VERSION),
        ),
        ("bench".to_string(), Value::Str(name.to_string())),
        ("git_describe".to_string(), Value::Str(git_describe())),
        ("payload".to_string(), serde::Serialize::to_value(payload)),
        ("metrics".to_string(), Value::Map(metrics)),
    ]);
    match serde_json::to_string(&envelope) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => println!("\nwarning: could not write {}: {e}", path.display()),
        },
        Err(e) => println!("\nwarning: could not serialize bench payload: {e}"),
    }
}

/// Best-effort `git describe --always --dirty` of the working tree;
/// `"unknown"` when git (or the repo) is unavailable, so benches run fine
/// from an exported tarball.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f4(0.12345), "0.1235");
        assert_eq!(mib(1024 * 1024), "1.00");
        assert_eq!(ratio(10.0, 2.0), "5.0x");
        assert_eq!(ratio(1.0, 0.0), "-");
    }
}
