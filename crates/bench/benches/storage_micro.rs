//! Criterion microbenchmarks on the storage substrate: hashing, chunking,
//! deduplicating writes, and commit-graph ancestor queries.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mlcask_storage::prelude::*;
use std::sync::Arc;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [4 << 10, 256 << 10] {
        let data: Vec<u8> = (0..size).map(|i| (i * 31 % 251) as u8).collect();
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{}KiB", size / 1024), |b| {
            b.iter(|| Sha256::digest(black_box(&data)))
        });
    }
    g.finish();
}

fn bench_chunking(c: &mut Criterion) {
    let mut g = c.benchmark_group("chunking");
    let data: Vec<u8> = (0..1 << 20)
        .map(|i| ((i * 2654435761usize) % 251) as u8)
        .collect();
    // Ablation over chunk size bounds (DESIGN.md §5): smaller chunks dedup
    // better but cost more per byte.
    for params in [ChunkParams::SMALL, ChunkParams::DEFAULT] {
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_function(format!("avg{}B", params.avg_size), |b| {
            b.iter(|| mlcask_storage::chunk::chunk_blob(black_box(&data), params))
        });
    }
    g.finish();
}

fn bench_dedup_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("dedup_write");
    let base: Vec<u8> = (0..512 << 10).map(|i| (i % 249) as u8).collect();
    g.throughput(Throughput::Bytes(base.len() as u64));
    g.bench_function("cold", |b| {
        b.iter_with_setup(ChunkStore::in_memory, |store| {
            store
                .put_blob(ObjectKind::Library, black_box(&base))
                .unwrap()
        })
    });
    g.bench_function("duplicate", |b| {
        let store = ChunkStore::in_memory();
        store.put_blob(ObjectKind::Library, &base).unwrap();
        b.iter(|| {
            store
                .put_blob(ObjectKind::Library, black_box(&base))
                .unwrap()
        })
    });
    g.bench_function("one_byte_edit", |b| {
        let store = ChunkStore::in_memory();
        store.put_blob(ObjectKind::Library, &base).unwrap();
        let mut edited = base.clone();
        edited[100_000] ^= 0xff;
        b.iter(|| {
            store
                .put_blob(ObjectKind::Library, black_box(&edited))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_commit_graph(c: &mut Criterion) {
    let mut g = c.benchmark_group("commit_graph");
    // Build a two-branch history of 200 commits each.
    let graph = Arc::new(CommitGraph::new());
    graph
        .commit_root("master", Hash256::of(b"0"), "init")
        .unwrap();
    graph.branch("master", "dev").unwrap();
    for i in 0..200u32 {
        graph
            .commit("master", Hash256::of(&i.to_le_bytes()), "m")
            .unwrap();
        graph
            .commit("dev", Hash256::of(&(i + 1000).to_le_bytes()), "d")
            .unwrap();
    }
    let m = graph.head("master").unwrap().id;
    let d = graph.head("dev").unwrap().id;
    g.bench_function("lca_200_deep", |b| {
        b.iter(|| graph.common_ancestor(black_box(m), black_box(d)).unwrap())
    });
    g.bench_function("path_from_root", |b| {
        let root = graph.common_ancestor(m, d).unwrap().unwrap().id;
        b.iter(|| graph.path_from(black_box(root), black_box(m)).unwrap())
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sha256, bench_chunking, bench_dedup_write, bench_commit_graph
);
criterion_main!(benches);
