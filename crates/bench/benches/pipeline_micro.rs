//! Criterion microbenchmarks on the pipeline layer: executor cold/warm
//! paths, artifact hashing, and semantic-version parsing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mlcask_core::history::HistoryIndex;
use mlcask_core::testkit::{toy_model, toy_scaler, toy_slots, toy_source};
use mlcask_pipeline::prelude::*;
use mlcask_storage::prelude::*;
use std::sync::Arc;

fn toy_pipeline() -> BoundPipeline {
    let dag = Arc::new(PipelineDag::chain(&toy_slots()).unwrap());
    BoundPipeline::new(
        dag,
        vec![
            toy_source(SemVer::initial(), 8, 64),
            toy_scaler(SemVer::initial(), 8, 8, 2.0),
            toy_model(SemVer::initial(), 8, 0.7),
        ],
    )
    .unwrap()
}

fn bench_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor");
    let pipeline = toy_pipeline();
    g.bench_function("cold_run", |b| {
        b.iter_with_setup(ChunkStore::in_memory_small, |store| {
            let clock = ClockLedger::new();
            Executor::new(&store)
                .run(black_box(&pipeline), &clock, None, ExecOptions::RERUN_ALL)
                .unwrap()
        })
    });
    g.bench_function("fully_cached_run", |b| {
        let store = ChunkStore::in_memory_small();
        let history = HistoryIndex::new();
        let clock = ClockLedger::new();
        Executor::new(&store)
            .run(&pipeline, &clock, Some(&history), ExecOptions::MLCASK)
            .unwrap();
        b.iter(|| {
            let clock = ClockLedger::new();
            Executor::new(&store)
                .run(
                    black_box(&pipeline),
                    &clock,
                    Some(&history),
                    ExecOptions::MLCASK,
                )
                .unwrap()
        })
    });
    g.bench_function("precheck_reject", |b| {
        let store = ChunkStore::in_memory_small();
        let doomed = BoundPipeline::new(
            Arc::new(PipelineDag::chain(&toy_slots()).unwrap()),
            vec![
                toy_source(SemVer::initial(), 8, 64),
                toy_scaler(SemVer::master(1, 0), 8, 12, 2.0),
                toy_model(SemVer::initial(), 8, 0.7),
            ],
        )
        .unwrap();
        b.iter(|| {
            let clock = ClockLedger::new();
            Executor::new(&store)
                .run(black_box(&doomed), &clock, None, ExecOptions::MLCASK)
                .unwrap()
        })
    });
    g.finish();
}

fn bench_artifact(c: &mut Criterion) {
    let pipeline = toy_pipeline();
    let artifact = pipeline.components[0].run(&[]).unwrap();
    c.bench_function("artifact_encode_and_hash", |b| {
        b.iter(|| black_box(&artifact).content_id())
    });
}

fn bench_semver(c: &mut Criterion) {
    c.bench_function("semver_parse", |b| {
        b.iter(|| {
            let v: SemVer = black_box("frank-dev@12.34").parse().unwrap();
            v
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_executor, bench_artifact, bench_semver
);
criterion_main!(benches);
