//! Criterion microbenchmarks on the ML substrate: one training unit of each
//! model family used by the workloads.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mlcask_ml::adaboost::{AdaBoost, AdaBoostConfig};
use mlcask_ml::embedding::{Embedding, EmbeddingConfig};
use mlcask_ml::hmm::Hmm;
use mlcask_ml::mlp::{synthetic_classification, Mlp, MlpConfig};
use mlcask_ml::zernike::{zernike_moments, Image};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_mlp(c: &mut Criterion) {
    let (x, y) = synthetic_classification(256, 16, 2, 0.3, 1);
    c.bench_function("mlp_fit_10_epochs", |b| {
        b.iter(|| {
            let mut m = Mlp::new(
                16,
                2,
                MlpConfig {
                    hidden: vec![16],
                    epochs: 10,
                    ..Default::default()
                },
            );
            m.fit(black_box(&x), black_box(&y))
        })
    });
}

fn bench_hmm(c: &mut Criterion) {
    let truth = Hmm::random(3, 6, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let seqs: Vec<Vec<usize>> = (0..64).map(|_| truth.sample(16, &mut rng)).collect();
    c.bench_function("hmm_baum_welch_5_iters", |b| {
        b.iter(|| {
            let mut m = Hmm::random(3, 6, 7);
            m.fit(black_box(&seqs), 5)
        })
    });
}

fn bench_adaboost(c: &mut Criterion) {
    let (x, y) = synthetic_classification(256, 16, 4, 0.2, 3);
    c.bench_function("adaboost_30_rounds", |b| {
        b.iter(|| {
            AdaBoost::fit(
                black_box(&x),
                black_box(&y),
                4,
                AdaBoostConfig {
                    rounds: 30,
                    threshold_stride: 1,
                },
            )
        })
    });
}

fn bench_embedding(c: &mut Criterion) {
    let docs: Vec<Vec<String>> = (0..128)
        .map(|i| {
            (0..20)
                .map(|j| format!("w{}", (i * 7 + j * 3) % 40))
                .collect()
        })
        .collect();
    c.bench_function("embedding_train_vocab40", |b| {
        b.iter(|| {
            Embedding::train(
                black_box(&docs),
                EmbeddingConfig {
                    dim: 12,
                    window: 3,
                    iterations: 10,
                    min_count: 1,
                },
            )
        })
    });
}

fn bench_zernike(c: &mut Criterion) {
    let img = Image::new(
        16,
        (0..256)
            .map(|i| if (i / 16 + i % 16) % 3 == 0 { 1.0 } else { 0.0 })
            .collect(),
    );
    c.bench_function("zernike_moments_order8", |b| {
        b.iter(|| zernike_moments(black_box(&img), 8))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mlp, bench_hmm, bench_adaboost, bench_embedding, bench_zernike
);
criterion_main!(benches);
