//! Criterion microbenchmarks on the merge machinery: search-tree
//! construction (Algorithm 1), compatibility pruning (PC), checkpoint
//! marking (PR), and end-to-end merge search per strategy.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcask_core::prelude::*;
use mlcask_core::registry::ComponentRegistry;
use mlcask_core::testkit::{toy_model, toy_scaler, toy_slots, toy_source};
use mlcask_pipeline::prelude::*;
use mlcask_storage::prelude::*;
use std::sync::Arc;

fn spaces_of(widths: &[usize]) -> SearchSpaces {
    SearchSpaces {
        slot_names: (0..widths.len()).map(|i| format!("slot{i}")).collect(),
        per_slot: widths
            .iter()
            .enumerate()
            .map(|(s, &n)| {
                (0..n)
                    .map(|v| ComponentKey::new(&format!("slot{s}"), SemVer::master(0, v as u32)))
                    .collect()
            })
            .collect(),
    }
}

fn bench_tree_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("search_tree_build");
    for widths in [vec![1, 2, 2, 5], vec![1, 3, 3, 8], vec![1, 4, 4, 4, 6]] {
        let spaces = spaces_of(&widths);
        let label = widths
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join("x");
        g.bench_with_input(BenchmarkId::from_parameter(label), &spaces, |b, s| {
            b.iter(|| SearchTree::build(black_box(s)))
        });
    }
    g.finish();
}

/// Toy merge scenario with a Fig.-3-like version family.
fn toy_setup() -> (
    ComponentRegistry,
    Arc<PipelineDag>,
    SearchSpaces,
    HistoryIndex,
) {
    let store = Arc::new(ChunkStore::in_memory_small());
    let reg = ComponentRegistry::with_exe_size(store, 4096);
    let src = toy_source(SemVer::master(0, 0), 4, 32);
    let scalers: Vec<_> = (0..3)
        .map(|i| toy_scaler(SemVer::master(0, i), 4, 4, 1.0 + i as f32))
        .collect();
    let models: Vec<_> = (0..5)
        .map(|i| toy_model(SemVer::master(0, i), 4, 0.3 + 0.1 * i as f64))
        .collect();
    let mut spaces = SearchSpaces {
        slot_names: toy_slots().iter().map(|s| s.to_string()).collect(),
        per_slot: vec![vec![], vec![], vec![]],
    };
    reg.register(src.clone()).unwrap();
    spaces.per_slot[0].push(src.key());
    for s in &scalers {
        reg.register(s.clone()).unwrap();
        spaces.per_slot[1].push(s.key());
    }
    for m in &models {
        reg.register(m.clone()).unwrap();
        spaces.per_slot[2].push(m.key());
    }
    let dag = Arc::new(PipelineDag::chain(&toy_slots()).unwrap());
    (reg, dag, spaces, HistoryIndex::new())
}

fn bench_pruning(c: &mut Criterion) {
    let (reg, dag, spaces, history) = toy_setup();
    let preds = dag.predecessors();
    let mut g = c.benchmark_group("pruning");
    g.bench_function("compat_lut_build", |b| {
        b.iter(|| CompatLut::build(black_box(&reg), black_box(&spaces), black_box(&preds)).unwrap())
    });
    let lut = CompatLut::build(&reg, &spaces, &preds).unwrap();
    g.bench_function("prune_incompatible", |b| {
        b.iter_with_setup(
            || SearchTree::build(&spaces),
            |mut tree| tree.prune_incompatible(black_box(&lut), black_box(&preds)),
        )
    });
    g.bench_function("mark_checkpoints", |b| {
        b.iter_with_setup(
            || {
                let mut tree = SearchTree::build(&spaces);
                tree.prune_incompatible(&lut, &preds);
                tree
            },
            |mut tree| tree.mark_checkpoints(black_box(&history), black_box(&preds)),
        )
    });
    g.finish();
}

fn bench_merge_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge_search");
    g.sample_size(10);
    for strategy in [
        MergeStrategy::WithoutPcPr,
        MergeStrategy::WithoutPr,
        MergeStrategy::Full,
    ] {
        let name: String = strategy
            .label()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        g.bench_function(name, |b| {
            b.iter_with_setup(toy_setup, |(reg, dag, spaces, history)| {
                let engine = MergeEngine::new(&reg, reg.store(), dag);
                let clock = ClockLedger::new();
                engine.search(&spaces, &history, strategy, &clock).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_prioritized_trial(c: &mut Criterion) {
    let mut g = c.benchmark_group("prioritized");
    g.sample_size(10);
    let (reg, dag, spaces, history) = toy_setup();
    for method in [SearchMethod::Prioritized, SearchMethod::Random] {
        g.bench_function(method.label(), |b| {
            let searcher = PrioritizedSearcher::new(&reg, Arc::clone(&dag));
            b.iter(|| {
                searcher
                    .run_trial(black_box(&spaces), &history, &[], method, 9)
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tree_build, bench_pruning, bench_merge_strategies, bench_prioritized_trial
);
criterion_main!(benches);
