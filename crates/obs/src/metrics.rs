//! The metrics registry: named counters, gauges, and fixed-bound
//! histograms with labels, exported in Prometheus text format.
//!
//! # Design
//!
//! A *family* is a metric name plus its help string and kind; a *series*
//! is one family instantiated with a concrete label set. Series live in a
//! sharded `RwLock<HashMap>` keyed by `(name, sorted labels)` — the hot
//! path (an existing series being bumped) takes one shard read lock and
//! one hash probe, and the returned handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) are `Arc`-backed, so instrumented structs hold them
//! directly and never touch the registry again.
//!
//! Per-instance metrics (two `CaskBackend`s in one test process must not
//! share a `blocking_syncs` series) disambiguate with an `instance` label
//! minted by [`instance_label`].
//!
//! # Scrape format
//!
//! [`MetricsRegistry::render_prometheus`] renders the classic text
//! exposition format: `# HELP` / `# TYPE` per family (sorted by name),
//! series sorted by label set, label values escaped (`\\`, `\"`, `\n`),
//! histograms as cumulative `_bucket{le="..."}` lines plus `_sum` and
//! `_count`.

use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Default latency bucket bounds, in seconds: 100 µs to 10 s, roughly
/// geometric. Shared by span histograms, server request latency, and the
/// cask fsync histograms so dashboards line up.
pub const LATENCY_SECONDS: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

/// Byte-size bucket bounds: 1 KiB to 64 MiB, ×4 steps.
pub const SIZE_BYTES: &[f64] = &[
    1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0, 16777216.0, 67108864.0,
];

/// Mints a process-unique `instance` label value (`"<prefix>-N"`) so two
/// instances of one instrumented struct get distinct series.
pub fn instance_label(prefix: &str) -> String {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    format!("{prefix}-{}", NEXT.fetch_add(1, Ordering::Relaxed))
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not registered anywhere (still counts; never scraped).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a settable `f64` (stored as bits in an atomic).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds of the finite buckets; an implicit `+Inf` bucket
    /// follows.
    bounds: Vec<f64>,
    /// One count per finite bound plus the overflow bucket
    /// (non-cumulative; render accumulates).
    buckets: Vec<AtomicU64>,
    /// Σ observed values, as `f64` bits updated by CAS.
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bound histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        Histogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let core = &self.0;
        let idx = core
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(core.bounds.len());
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records a duration in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Clone)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Series {
    fn kind(&self) -> &'static str {
        match self {
            Series::Counter(_) => "counter",
            Series::Gauge(_) => "gauge",
            Series::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SeriesKey {
    name: String,
    /// Sorted `(key, value)` pairs.
    labels: Vec<(String, String)>,
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: &'static str,
}

const SHARDS: usize = 8;

/// The registry of metric families and their series. See the
/// [module docs](self).
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: [RwLock<HashMap<SeriesKey, Series>>; SHARDS],
    families: Mutex<BTreeMap<String, Family>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry. Production code uses [`MetricsRegistry::global`];
    /// fresh registries exist for tests (the golden scrape test) and for
    /// embedding.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            families: Mutex::new(BTreeMap::new()),
        }
    }

    /// The process-wide registry every built-in instrument records into.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// The counter series `name{labels}`, registering it (and its family)
    /// on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, labels, || Series::Counter(Counter::default())) {
            Series::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge series `name{labels}`, registering it on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, labels, || Series::Gauge(Gauge::default())) {
            Series::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram series `name{labels}` with the given finite bucket
    /// bounds (ascending; `+Inf` implicit), registering it on first use.
    /// Bounds are fixed at first registration; later calls reuse them.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        match self.series(name, help, labels, || {
            Series::Histogram(Histogram::new(bounds))
        }) {
            Series::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
    ) -> Series {
        let mut sorted: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        sorted.sort();
        let key = SeriesKey {
            name: name.to_string(),
            labels: sorted,
        };
        let shard = &self.shards[hash_of(&key) as usize % SHARDS];
        if let Some(existing) = shard.read().get(&key) {
            return existing.clone();
        }
        let mut map = shard.write();
        if let Some(existing) = map.get(&key) {
            return existing.clone();
        }
        let series = make();
        self.families
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Family {
                help: help.to_string(),
                kind: series.kind(),
            });
        map.insert(key, series.clone());
        series
    }

    /// All series of one family, sorted by label set.
    fn family_series(&self, name: &str) -> Vec<(Vec<(String, String)>, Series)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (key, series) in shard.read().iter() {
                if key.name == name {
                    out.push((key.labels.clone(), series.clone()));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Renders the whole registry in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let families: Vec<(String, String, &'static str)> = {
            let fams = self.families.lock();
            fams.iter()
                .map(|(name, f)| (name.clone(), f.help.clone(), f.kind))
                .collect()
        };
        let mut out = String::new();
        for (name, help, kind) in families {
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&help)));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for (labels, series) in self.family_series(&name) {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(&labels, None),
                            c.get()
                        ));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(&labels, None),
                            fmt_f64(g.get())
                        ));
                    }
                    Series::Histogram(h) => {
                        let core = &h.0;
                        let mut cum = 0u64;
                        for (i, bound) in core.bounds.iter().enumerate() {
                            cum += core.buckets[i].load(Ordering::Relaxed);
                            out.push_str(&format!(
                                "{name}_bucket{} {cum}\n",
                                render_labels(&labels, Some(&fmt_f64(*bound)))
                            ));
                        }
                        cum += core.buckets[core.bounds.len()].load(Ordering::Relaxed);
                        out.push_str(&format!(
                            "{name}_bucket{} {cum}\n",
                            render_labels(&labels, Some("+Inf"))
                        ));
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            render_labels(&labels, None),
                            fmt_f64(h.sum())
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            render_labels(&labels, None),
                            h.count()
                        ));
                    }
                }
            }
        }
        out
    }

    /// A flat point-in-time snapshot: `("name{labels}", value)` per series,
    /// histograms contributing `_sum` and `_count` entries (buckets are
    /// omitted to keep embedded snapshots small). Sorted by series name.
    /// This is what `write_bench_json` embeds into `BENCH_*.json`.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        let names: Vec<String> = self.families.lock().keys().cloned().collect();
        let mut out = Vec::new();
        for name in names {
            for (labels, series) in self.family_series(&name) {
                let rendered = render_labels(&labels, None);
                match series {
                    Series::Counter(c) => out.push((format!("{name}{rendered}"), c.get() as f64)),
                    Series::Gauge(g) => out.push((format!("{name}{rendered}"), g.get())),
                    Series::Histogram(h) => {
                        out.push((format!("{name}_sum{rendered}"), h.sum()));
                        out.push((format!("{name}_count{rendered}"), h.count() as f64));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

fn hash_of(key: &SeriesKey) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Help strings escape backslash and newline only.
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Renders `{k="v",...}` (with an optional trailing `le`), or the empty
/// string when there are no labels.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Prometheus-friendly float rendering (`1`, `0.25`, `+Inf` handled by the
/// caller; `NaN` rendered as `NaN`).
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t_total", "a counter", &[("k", "v")]);
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Same (name, labels) resolves to the same series.
        assert_eq!(reg.counter("t_total", "a counter", &[("k", "v")]).get(), 3);
        let g = reg.gauge("t_gauge", "a gauge", &[]);
        g.set(0.25);
        assert_eq!(g.get(), 0.25);
        let h = reg.histogram("t_hist", "a histogram", &[], &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        h.observe(99.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 101.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("same_name", "", &[]);
        reg.gauge("same_name", "", &[]);
    }

    #[test]
    fn concurrent_bumps_are_exact() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        reg.counter("c_total", "", &[("t", "x")]).inc();
                        reg.histogram("h_sec", "", &[], LATENCY_SECONDS)
                            .observe(0.001);
                    }
                });
            }
        });
        assert_eq!(reg.counter("c_total", "", &[("t", "x")]).get(), 8000);
        assert_eq!(
            reg.histogram("h_sec", "", &[], LATENCY_SECONDS).count(),
            8000
        );
    }

    #[test]
    fn instance_labels_are_unique() {
        let a = instance_label("cask");
        let b = instance_label("cask");
        assert_ne!(a, b);
    }

    #[test]
    fn escaping() {
        assert_eq!(escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(escape_help("h\\x\ny"), "h\\\\x\\ny");
    }
}
