//! Span tracing: scope guards feeding duration histograms and a bounded
//! ring-buffer **flight recorder** of recent spans.
//!
//! A [`Span`] (usually opened via the [`span!`](crate::span) macro) holds
//! a monotonic start instant; on drop it reports its duration to the
//! recorder, which
//!
//! 1. observes it into the `mlcask_span_seconds{span="<name>"}` histogram
//!    in the global [`MetricsRegistry`],
//! 2. emits a rate-limited slow-op log line when the duration exceeds the
//!    configured threshold, and
//! 3. pushes a [`SpanRecord`] — monotonic sequence id, labels, duration,
//!    and the **only** wall-clock read in the whole path — onto the ring.
//!
//! Wall time is captured here, at the recorder boundary, precisely so no
//! deterministic computation can observe it: instrumented code sees only
//! the inert guard. Capacity 0 keeps histograms and sequence ids but
//! retains no spans; disabling span recording altogether makes the
//! [`span!`](crate::span) macro return an inert guard without building
//! labels.
//!
//! The ring dumps as [chrome-trace JSONL](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! (`chrome://tracing`, Perfetto) via [`FlightRecorder::dump_chrome_trace`],
//! or automatically at a process's explicit dump point when `MLCASK_TRACE`
//! names a path ([`maybe_dump_env`]).

use crate::metrics::{MetricsRegistry, LATENCY_SECONDS};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant, SystemTime};

/// Default flight-recorder capacity when `MLCASK_OBS_CAPACITY` is unset.
pub const DEFAULT_CAPACITY: usize = 4096;

/// One completed span retained by the recorder.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Monotonic sequence id (1-based, process-wide, advances even when
    /// the ring retains nothing).
    pub seq: u64,
    /// Span name.
    pub name: &'static str,
    /// Labels attached at the span site.
    pub labels: Vec<(&'static str, String)>,
    /// Small dense id of the recording thread.
    pub thread: u64,
    /// Wall-clock completion time (µs since the Unix epoch), captured at
    /// the recorder boundary.
    pub end_unix_micros: u64,
    /// Measured (monotonic) duration.
    pub duration_nanos: u64,
}

/// The bounded ring buffer of recent spans. See the [module docs](self).
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: AtomicBool,
    capacity: AtomicUsize,
    seq: AtomicU64,
    slow_threshold_nanos: AtomicU64,
    ring: Mutex<VecDeque<SpanRecord>>,
    slow_last_log: Mutex<HashMap<&'static str, Instant>>,
}

/// The process-wide recorder, configured from the environment on first
/// access.
pub fn recorder() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(FlightRecorder::from_env)
}

/// Whether span recording is currently enabled (the [`span!`](crate::span)
/// macro's fast-path check).
pub fn enabled() -> bool {
    recorder().is_enabled()
}

impl FlightRecorder {
    /// A recorder honouring `MLCASK_OBS_SPANS`, `MLCASK_OBS_CAPACITY`, and
    /// `MLCASK_OBS_SLOW_MS`.
    fn from_env() -> FlightRecorder {
        let enabled = !matches!(
            std::env::var("MLCASK_OBS_SPANS").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        );
        let capacity = std::env::var("MLCASK_OBS_CAPACITY")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_CAPACITY);
        let slow_ms: u64 = std::env::var("MLCASK_OBS_SLOW_MS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        FlightRecorder {
            enabled: AtomicBool::new(enabled),
            capacity: AtomicUsize::new(capacity),
            seq: AtomicU64::new(0),
            slow_threshold_nanos: AtomicU64::new(slow_ms.saturating_mul(1_000_000)),
            ring: Mutex::new(VecDeque::new()),
            slow_last_log: Mutex::new(HashMap::new()),
        }
    }

    /// Whether spans are recorded at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Reconfigures recording and ring capacity (shrinking drops the
    /// oldest retained spans). Used by the determinism sweep to iterate
    /// tracing-on/off × capacity cells within one process.
    pub fn configure(&self, enabled: bool, capacity: usize) {
        self.enabled.store(enabled, Ordering::Relaxed);
        self.capacity.store(capacity, Ordering::Relaxed);
        let mut ring = self.ring.lock();
        while ring.len() > capacity {
            ring.pop_front();
        }
    }

    /// Sets (or clears) the slow-span log threshold.
    pub fn set_slow_threshold(&self, threshold: Option<Duration>) {
        let nanos = threshold.map(|d| d.as_nanos() as u64).unwrap_or(0);
        self.slow_threshold_nanos.store(nanos, Ordering::Relaxed);
    }

    /// Configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Total spans ever recorded (= the latest sequence id).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Records one completed span. Reads the wall clock — the only place
    /// in the tracing path that does.
    pub fn record(
        &self,
        name: &'static str,
        labels: Vec<(&'static str, String)>,
        duration: Duration,
    ) {
        if !self.is_enabled() {
            return;
        }
        MetricsRegistry::global()
            .histogram(
                "mlcask_span_seconds",
                "Span durations by span name",
                &[("span", name)],
                LATENCY_SECONDS,
            )
            .observe_duration(duration);
        let threshold = self.slow_threshold_nanos.load(Ordering::Relaxed);
        let duration_nanos = duration.as_nanos().min(u64::MAX as u128) as u64;
        if threshold > 0 && duration_nanos >= threshold {
            self.log_slow(name, &labels, duration);
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let capacity = self.capacity.load(Ordering::Relaxed);
        if capacity == 0 {
            return;
        }
        let end_unix_micros = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let record = SpanRecord {
            seq,
            name,
            labels,
            thread: thread_id(),
            end_unix_micros,
            duration_nanos,
        };
        let mut ring = self.ring.lock();
        while ring.len() >= capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// At most one slow-span line per span name per second, to stderr.
    fn log_slow(&self, name: &'static str, labels: &[(&'static str, String)], d: Duration) {
        let mut last = self.slow_last_log.lock();
        let now = Instant::now();
        if let Some(prev) = last.get(name) {
            if now.duration_since(*prev) < Duration::from_secs(1) {
                return;
            }
        }
        last.insert(name, now);
        drop(last);
        let labels = labels
            .iter()
            .map(|(k, v)| format!(" {k}={v}"))
            .collect::<String>();
        eprintln!(
            "[mlcask_obs] slow span {name} took {:.1} ms{labels}",
            d.as_secs_f64() * 1e3
        );
    }

    /// The most recent `n` retained spans, oldest first.
    pub fn recent(&self, n: usize) -> Vec<SpanRecord> {
        let ring = self.ring.lock();
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }

    /// The `n` slowest retained spans, slowest first.
    pub fn slowest(&self, n: usize) -> Vec<SpanRecord> {
        let mut all: Vec<SpanRecord> = self.ring.lock().iter().cloned().collect();
        all.sort_by(|a, b| {
            b.duration_nanos
                .cmp(&a.duration_nanos)
                .then(a.seq.cmp(&b.seq))
        });
        all.truncate(n);
        all
    }

    /// Dumps the retained spans as chrome-trace JSONL (one complete `"X"`
    /// event per line, timestamps in µs) and returns how many were
    /// written. Load the file in `chrome://tracing` or Perfetto.
    pub fn dump_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<usize> {
        let spans = self.recent(usize::MAX);
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        for s in &spans {
            let dur_us = s.duration_nanos as f64 / 1e3;
            let ts_us = s.end_unix_micros as f64 - dur_us;
            let mut args = format!("\"seq\":{}", s.seq);
            for (k, v) in &s.labels {
                args.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            writeln!(
                file,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{ts_us:.3},\"dur\":{dur_us:.3},\"args\":{{{args}}}}}",
                json_escape(s.name),
                s.thread,
            )?;
        }
        file.flush()?;
        Ok(spans.len())
    }
}

/// If `MLCASK_TRACE` names a path, dumps the global recorder there and
/// returns `(path, spans written)`. Call at a natural end-of-run point
/// (the daemon calls it when its transport loop exits; bench bins call it
/// before exiting).
pub fn maybe_dump_env() -> Option<(String, usize)> {
    let path = std::env::var("MLCASK_TRACE").ok()?;
    if path.is_empty() {
        return None;
    }
    match recorder().dump_chrome_trace(&path) {
        Ok(n) => Some((path, n)),
        Err(e) => {
            eprintln!("[mlcask_obs] could not write trace to {path}: {e}");
            None
        }
    }
}

fn json_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Small dense per-thread id (1-based, assigned on first use).
fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }
    ID.with(|cell| {
        if cell.get() == 0 {
            cell.set(NEXT.fetch_add(1, Ordering::Relaxed) + 1);
        }
        cell.get()
    })
}

/// A scope guard reporting its lifetime to the flight recorder on drop.
/// Open via the [`span!`](crate::span) macro.
#[derive(Debug)]
pub struct Span {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
    start: Instant,
}

impl Span {
    /// Starts a live span.
    pub fn begin(name: &'static str, labels: Vec<(&'static str, String)>) -> Span {
        Span {
            active: Some(ActiveSpan {
                name,
                labels,
                start: Instant::now(),
            }),
        }
    }

    /// An inert guard (recording disabled).
    pub fn disabled() -> Span {
        Span { active: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            recorder().record(active.name, active.labels, active.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_recorder(capacity: usize) -> FlightRecorder {
        let r = FlightRecorder::from_env();
        r.configure(true, capacity);
        r
    }

    #[test]
    fn ring_bounds_and_monotonic_seq() {
        let r = test_recorder(4);
        for i in 0..10u64 {
            r.record(
                "t.span",
                vec![("i", i.to_string())],
                Duration::from_micros(i),
            );
        }
        let recent = r.recent(100);
        assert_eq!(recent.len(), 4, "capacity bounds the ring");
        let seqs: Vec<u64> = recent.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10], "oldest evicted, seq monotonic");
        assert_eq!(r.recorded(), 10);
    }

    #[test]
    fn capacity_zero_keeps_counting_but_retains_nothing() {
        let r = test_recorder(0);
        r.record("t.zero", vec![], Duration::from_micros(5));
        assert_eq!(r.recorded(), 1);
        assert!(r.recent(10).is_empty());
    }

    #[test]
    fn slowest_sorts_by_duration() {
        let r = test_recorder(16);
        for d in [3u64, 9, 1, 7] {
            r.record("t.slowest", vec![], Duration::from_millis(d));
        }
        let top = r.slowest(2);
        assert_eq!(top.len(), 2);
        assert!(top[0].duration_nanos >= top[1].duration_nanos);
        assert_eq!(top[0].duration_nanos, 9_000_000);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let r = recorder();
        r.configure(true, 64);
        let before = r.recorded();
        {
            let _span = crate::span!("t.guard", "k" => 42);
        }
        assert_eq!(r.recorded(), before + 1);
        let last = r.recent(1).pop().expect("span retained");
        assert_eq!(last.name, "t.guard");
        assert_eq!(last.labels, vec![("k", "42".to_string())]);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let r = test_recorder(8);
        r.configure(false, 8);
        r.record("t.disabled", vec![], Duration::from_micros(1));
        assert_eq!(r.recorded(), 0);
    }

    #[test]
    fn chrome_trace_dump_is_valid_jsonl() {
        let r = test_recorder(8);
        r.record(
            "t.dump",
            vec![("tenant", "a\"b".to_string())],
            Duration::from_micros(250),
        );
        let path =
            std::env::temp_dir().join(format!("mlcask-obs-trace-{}.jsonl", std::process::id()));
        let n = r.dump_chrome_trace(&path).expect("dump writes");
        assert_eq!(n, 1);
        let text = std::fs::read_to_string(&path).expect("trace readable");
        let line = text.lines().next().expect("one event line");
        assert!(line.contains("\"ph\":\"X\""));
        assert!(line.contains("\"name\":\"t.dump\""));
        assert!(line.contains("a\\\"b"));
        let _ = std::fs::remove_file(&path);
    }
}
