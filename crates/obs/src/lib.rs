//! # mlcask-obs
//!
//! Unified telemetry for the MLCask stack: a sharded, lock-cheap
//! [`MetricsRegistry`] of named counters, gauges, and fixed-bound
//! histograms (exported in Prometheus text format), plus lightweight span
//! tracing — [`span!`] guards record durations into histograms and into a
//! bounded ring-buffer [`FlightRecorder`] of recent
//! spans, dumpable as chrome-trace JSONL.
//!
//! ## The determinism boundary
//!
//! Everything in this crate is a **read-only side channel**. The repo's
//! invariant — reports, ledgers, tenant accounting, and served scripts are
//! byte-identical at workers {1, 2, 8} — must hold with tracing on, off,
//! and at any recorder capacity, so:
//!
//! * nothing here is ever serialized into a determinism observable;
//! * wall-clock times are captured only at the recorder boundary
//!   ([`FlightRecorder::record`](trace::FlightRecorder::record)), never
//!   returned to instrumented code;
//! * a [`span!`] guard's only effect on the instrumented path is one
//!   `Instant::now()` pair and a handful of relaxed atomics.
//!
//! ## Quick tour
//!
//! ```
//! use mlcask_obs::metrics::{MetricsRegistry, LATENCY_SECONDS};
//!
//! let reg = MetricsRegistry::global();
//! let hits = reg.counter("doc_cache_hits_total", "Cache hits", &[("shard", "0")]);
//! hits.inc();
//! let lat = reg.histogram(
//!     "doc_request_seconds",
//!     "Request latency",
//!     &[("method", "ping")],
//!     LATENCY_SECONDS,
//! );
//! lat.observe(0.0042);
//! {
//!     // Records its duration when dropped.
//!     let _guard = mlcask_obs::span!("doc.work", "tenant" => "alice");
//! }
//! let text = reg.render_prometheus();
//! assert!(text.contains("doc_cache_hits_total{shard=\"0\"} 1"));
//! ```
//!
//! ## Environment knobs
//!
//! | Variable | Effect |
//! |---|---|
//! | `MLCASK_OBS_SPANS` | `0`/`off`/`false` disables span recording (default on) |
//! | `MLCASK_OBS_CAPACITY` | flight-recorder ring capacity (default 4096; `0` keeps histograms but retains no spans) |
//! | `MLCASK_OBS_SLOW_MS` | log spans slower than this threshold (default `0` = off) |
//! | `MLCASK_TRACE` | path: dump the recorder as chrome-trace JSONL via [`trace::maybe_dump_env`] |

#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use trace::{FlightRecorder, Span, SpanRecord};

/// Opens a span guard recording its scope's duration when dropped.
///
/// The first argument is the span name (`&'static str`); optional
/// `"key" => value` pairs attach labels (values via `ToString`). When span
/// recording is disabled the macro skips label construction entirely and
/// returns an inert guard.
///
/// ```
/// let _span = mlcask_obs::span!("merge.search", "tenant" => "alice");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::trace::enabled() {
            $crate::trace::Span::begin($name, ::std::vec::Vec::new())
        } else {
            $crate::trace::Span::disabled()
        }
    };
    ($name:expr, $($k:expr => $v:expr),+ $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::Span::begin(
                $name,
                ::std::vec![$(($k, ::std::string::ToString::to_string(&$v))),+],
            )
        } else {
            $crate::trace::Span::disabled()
        }
    };
}
