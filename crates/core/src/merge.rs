//! The metric-driven merge search (§V–§VI, Algorithm 2).
//!
//! `p_merged = argmax { score(p) | p ∈ P_candidate }` — the merge selects
//! the best-scoring pipeline from the pre-merge candidate set rather than
//! blindly combining the latest components. Three ablation strategies mirror
//! the paper's systems:
//!
//! * [`MergeStrategy::WithoutPcPr`] — enumerate every combination, run each
//!   from scratch (the baseline whose cost grows with `∏|S(f_i)|`).
//! * [`MergeStrategy::WithoutPr`] — prune incompatible pipelines first, then
//!   run the survivors from scratch.
//! * [`MergeStrategy::Full`] — prune + reuse: depth-first traversal of the
//!   search tree where every node executes at most once (Algorithm 2).
//! * [`MergeStrategy::Naive`] — Git-style "take the latest components",
//!   shown in §V to be both failure-prone and metric-blind.

use crate::errors::Result;
use crate::history::HistoryIndex;
use crate::registry::ComponentRegistry;
use crate::search_space::{CompatLut, SearchSpaces};
use crate::tree::{SearchTree, StateCounts};
use mlcask_ml::metrics::Score;
use mlcask_pipeline::clock::{ClockLedger, ClockSnapshot};
use mlcask_pipeline::component::{ComponentHandle, ComponentKey};
use mlcask_pipeline::dag::{BoundPipeline, PipelineDag};
use mlcask_pipeline::executor::{ExecOptions, Executor, MemoryCache, OutputCache};
use mlcask_pipeline::parallel::{map_indexed, ParallelismPolicy};
use mlcask_pipeline::provenance::{Incremental, PrefixGate, ProvenanceSnapshot};
use mlcask_pipeline::replay::{replay_run, CacheSnapshot, ProfileBook};
use mlcask_storage::store::ChunkStore;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Merge-search strategy (the paper's system ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergeStrategy {
    /// Combine the latest component versions, Git-style.
    Naive,
    /// Exhaustive search, no pruning, no reuse ("MLCask w/o PCPR").
    WithoutPcPr,
    /// Compatibility pruning only, no reuse ("MLCask w/o PR").
    WithoutPr,
    /// Both pruning heuristics (full MLCask).
    Full,
}

impl MergeStrategy {
    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            MergeStrategy::Naive => "naive",
            MergeStrategy::WithoutPcPr => "MLCask w/o PCPR",
            MergeStrategy::WithoutPr => "MLCask w/o PR",
            MergeStrategy::Full => "MLCask",
        }
    }
}

/// One evaluated candidate pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateRecord {
    /// Component versions in slot order.
    pub keys: Vec<ComponentKey>,
    /// Score if the candidate completed.
    pub score: Option<Score>,
    /// True if the candidate failed (mid-run incompatibility).
    pub failed: bool,
    /// Cumulative merge virtual time (ns) when this candidate finished.
    pub end_time_ns: u64,
}

/// Outcome of a merge search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MergeSearchReport {
    /// Strategy used.
    pub strategy: MergeStrategy,
    /// Upper bound `∏|S(f_i)|` on candidates.
    pub candidates_total: usize,
    /// Candidates actually evaluated (run or attempted).
    pub candidates_evaluated: usize,
    /// Candidates removed by compatibility pruning.
    pub candidates_pruned: usize,
    /// Fig. 4 node-state summary of the search tree.
    pub state_counts: StateCounts,
    /// Component executions actually performed.
    pub executed_components: usize,
    /// Component executions avoided via checkpoint reuse.
    pub reused_components: usize,
    /// Nodes never scheduled at all: cut out of the plan statically by the
    /// provenance frontier (a subset of `reused_components`).
    pub skipped_by_frontier: usize,
    /// Candidates that failed mid-run.
    pub failed_candidates: usize,
    /// Best candidate found.
    pub best: Option<(Vec<ComponentKey>, Score)>,
    /// Every evaluated candidate in evaluation order.
    pub candidates: Vec<CandidateRecord>,
    /// Virtual time consumed by the merge only.
    pub clock: ClockSnapshot,
    /// Logical bytes written during the merge.
    pub logical_bytes: u64,
    /// Physical (post-dedup) bytes written during the merge.
    pub physical_bytes: u64,
}

/// Executes merge searches against a registry/store/history triple.
pub struct MergeEngine<'a> {
    registry: &'a ComponentRegistry,
    store: &'a ChunkStore,
    dag: Arc<PipelineDag>,
    parallelism: ParallelismPolicy,
    incremental: bool,
}

impl<'a> MergeEngine<'a> {
    /// Creates an engine for one pipeline shape (sequential evaluation).
    pub fn new(
        registry: &'a ComponentRegistry,
        store: &'a ChunkStore,
        dag: Arc<PipelineDag>,
    ) -> Self {
        MergeEngine {
            registry,
            store,
            dag,
            parallelism: ParallelismPolicy::Sequential,
            incremental: true,
        }
    }

    /// Enables or disables the provenance fast path (frontier cuts plus the
    /// shared-prefix gate) for history-backed strategies. On by default;
    /// reports are byte-identical either way — only wall-clock changes.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Sets the candidate-evaluation worker pool. Reports are identical for
    /// every policy (see [`mlcask_pipeline::replay`]); only wall-clock time
    /// changes.
    pub fn with_parallelism(mut self, parallelism: ParallelismPolicy) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Resolves a candidate (slot-ordered keys) into a bound pipeline.
    pub fn bind(&self, keys: &[ComponentKey]) -> Result<BoundPipeline> {
        let mut components: Vec<ComponentHandle> = Vec::with_capacity(keys.len());
        for k in keys {
            components.push(self.registry.resolve(k)?);
        }
        Ok(BoundPipeline::new(Arc::clone(&self.dag), components)?)
    }

    /// Runs the merge search. `history` is consulted/extended only by the
    /// `Full` strategy (PR); the ablations run from scratch as the paper
    /// describes.
    ///
    /// Candidates are evaluated by the engine's [`ParallelismPolicy`] in two
    /// phases — parallel traced execution, then a sequential accounting
    /// replay in candidate-index order (see [`mlcask_pipeline::replay`]) —
    /// so the returned report (records, scores, virtual end-times, storage
    /// accounting) is identical whatever the worker count.
    ///
    /// Tenant-attributed stores take quota *reservations* during phase 1 and
    /// settle them in the phase-2 replay; if the search aborts — a
    /// mid-evaluation quota breach, an unresolvable component, a storage
    /// fault — every unsettled reservation is released before the error
    /// surfaces, so the tenant's accounts end exactly where they started.
    pub fn search(
        &self,
        spaces: &SearchSpaces,
        history: &HistoryIndex,
        strategy: MergeStrategy,
        ledger: &ClockLedger,
    ) -> Result<MergeSearchReport> {
        let book = ProfileBook::new();
        book.reservation_scope(self.store, || {
            self.search_with_book(spaces, history, strategy, ledger, &book)
        })
    }

    fn search_with_book(
        &self,
        spaces: &SearchSpaces,
        history: &HistoryIndex,
        strategy: MergeStrategy,
        ledger: &ClockLedger,
        book: &ProfileBook,
    ) -> Result<MergeSearchReport> {
        let _search_span = mlcask_obs::span!(
            "merge.search",
            "strategy" => format!("{strategy:?}"),
            "candidates" => spaces.candidate_upper_bound(),
        );
        let stats_before = self.store.stats().total();
        let mut tree = SearchTree::build(spaces);
        let candidates_total = spaces.candidate_upper_bound();
        // Real DAG in-edges per slot: PC/PR follow the pipeline shape, which
        // need not be a chain.
        let preds = self.dag.predecessors();

        // Strategy-specific pruning/marking.
        let mut candidates_pruned = 0usize;
        match strategy {
            MergeStrategy::WithoutPcPr | MergeStrategy::Naive => {}
            MergeStrategy::WithoutPr => {
                let lut = CompatLut::build(self.registry, spaces, &preds)?;
                tree.prune_incompatible(&lut, &preds);
                candidates_pruned = candidates_total - tree.live_leaves().len();
            }
            MergeStrategy::Full => {
                let lut = CompatLut::build(self.registry, spaces, &preds)?;
                tree.prune_incompatible(&lut, &preds);
                candidates_pruned = candidates_total - tree.live_leaves().len();
                tree.mark_checkpoints(history, &preds);
            }
        }

        // Candidate list per strategy.
        let leaves: Vec<Vec<ComponentKey>> = match strategy {
            MergeStrategy::Naive => vec![naive_candidate(spaces)],
            _ => tree
                .live_leaves()
                .into_iter()
                .map(|l| tree.candidate(l))
                .collect(),
        };

        // Accounting policy per strategy. The from-scratch ablations pay
        // every component for every candidate and only discover
        // incompatibilities mid-run; Full/Naive reuse the shared history.
        let (use_history, options): (bool, ExecOptions) = match strategy {
            MergeStrategy::WithoutPcPr | MergeStrategy::WithoutPr => (
                false,
                ExecOptions {
                    reuse: false,
                    precheck: false,
                    persist_outputs: true,
                    parallelism: self.parallelism,
                },
            ),
            MergeStrategy::Full | MergeStrategy::Naive => (
                true,
                ExecOptions::REUSE_ONLY.with_parallelism(self.parallelism),
            ),
        };

        let bound: Vec<BoundPipeline> = leaves
            .iter()
            .map(|keys| self.bind(keys))
            .collect::<Result<_>>()?;

        // Phase 1 — execute every candidate (possibly in parallel) for its
        // results, deduplicating shared work through a concurrent cache.
        // For reuse strategies the cache *is* the live history, so
        // checkpoints land there exactly as in a sequential run; the
        // ablations get a search-local scratch cache (work dedup only —
        // their accounting below still pays every execution).
        //
        // The worker pool splits across two levels: candidates fan out
        // first, and any leftover workers fan the independent DAG nodes
        // *inside* each candidate out (wavefront execution) — one budget,
        // never oversubscribed.
        let scratch = MemoryCache::new();
        // Provenance snapshot strictly *before* the key snapshot: the
        // pairing invariant (a fingerprint is recorded only after its
        // `CacheKey` insert) then guarantees every frontier hit is also a
        // `pre` hit, so the replay below marks skipped nodes as reused and
        // the report stays byte-identical to a non-incremental run.
        let prov_snapshot: Option<Arc<ProvenanceSnapshot>> = if use_history && self.incremental {
            Some(history.provenance().snapshot_shared())
        } else {
            None
        };
        // Shared snapshots: concurrent searches over a quiescent history
        // reuse one copy instead of each paying O(history).
        let (pre, phase_cache): (Arc<CacheSnapshot>, &dyn OutputCache) = if use_history {
            (history.snapshot_shared(), history)
        } else {
            (Arc::new(CacheSnapshot::new()), &scratch)
        };
        let executor = Executor::new(self.store);
        // One gate per search: candidates sharing a prefix fingerprint
        // execute it once, whichever worker claims it first.
        let gate = PrefixGate::new();
        let (outer, inner) = options.parallelism.split(bound.len());
        let traced = map_indexed(outer, &bound, |i, pipeline| {
            let _cand_span = mlcask_obs::span!("merge.candidate", "index" => i);
            let inc = prov_snapshot.as_ref().map(|snap| Incremental {
                snapshot: Arc::clone(snap),
                live: history.provenance(),
                gate: Some(&gate),
            });
            executor.run_traced_incremental(
                pipeline,
                phase_cache,
                book,
                options.precheck,
                inner,
                inc.as_ref(),
            )
        });
        // Frontier cuts are computed against the snapshot, so the per-
        // candidate skip counts are deterministic; `map_indexed` preserves
        // candidate order, so the sum is too.
        let mut skipped_by_frontier = 0usize;
        for t in traced {
            skipped_by_frontier += t?.skipped_by_frontier;
        }

        // Phase 2 — deterministic accounting replay in candidate order.
        let mut sim = CacheSnapshot::new();
        let mut cursor = book.replay_cursor();
        let mut merge_clock = ClockSnapshot::default();
        let mut records: Vec<CandidateRecord> = Vec::with_capacity(leaves.len());
        let mut executed = 0usize;
        let mut reused = 0usize;
        let mut failed = 0usize;
        let mut best: Option<(Vec<ComponentKey>, Score)> = None;
        for (keys, pipeline) in leaves.into_iter().zip(&bound) {
            let run_ledger = ClockLedger::new();
            let report = replay_run(
                self.store,
                pipeline,
                book,
                &pre,
                &mut sim,
                &mut cursor,
                &run_ledger,
                options,
                use_history,
            )?;
            let snap = run_ledger.snapshot();
            merge_clock = merge_clock.plus(&snap);
            ledger.merge(&snap);
            executed += report.executed_count();
            reused += report.reused_count();
            let score = report.outcome.score();
            let is_failure = !report.outcome.is_completed();
            if is_failure {
                failed += 1;
            }
            if let Some(s) = score {
                let better = match &best {
                    Some((_, b)) => s.total_cmp(b) == std::cmp::Ordering::Greater,
                    None => true,
                };
                if better {
                    best = Some((keys.clone(), s));
                }
            }
            records.push(CandidateRecord {
                keys,
                score,
                failed: is_failure,
                end_time_ns: merge_clock.total_ns(),
            });
        }

        let stats_after = self.store.stats().total();
        Ok(MergeSearchReport {
            strategy,
            candidates_total,
            candidates_evaluated: records.len(),
            candidates_pruned,
            state_counts: tree.state_counts(),
            executed_components: executed,
            reused_components: reused,
            skipped_by_frontier,
            failed_candidates: failed,
            best,
            candidates: records,
            clock: merge_clock,
            logical_bytes: stats_after.logical_bytes - stats_before.logical_bytes,
            physical_bytes: stats_after.physical_bytes - stats_before.physical_bytes,
        })
    }
}

/// The naive merge candidate: the newest version of every component across
/// both branches (what Git-style merging would pick).
pub fn naive_candidate(spaces: &SearchSpaces) -> Vec<ComponentKey> {
    spaces
        .per_slot
        .iter()
        .map(|versions| {
            versions
                .iter()
                .max_by_key(|k| (k.version.schema, k.version.increment))
                .expect("non-empty slot")
                .clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{toy_model, toy_scaler, toy_slots, toy_source};
    use mlcask_pipeline::semver::SemVer;

    /// Builds a Fig.-3-like scenario:
    /// * source: one version (dim 4)
    /// * scaler: 0.0/0.1 keep dim 4; 1.0 widens to 6 (schema change)
    /// * model: 0.0, 0.1, 0.4 expect dim 4; 0.2, 0.3 expect dim 6
    fn scenario() -> (ComponentRegistry, Arc<PipelineDag>, SearchSpaces) {
        let store = Arc::new(ChunkStore::in_memory_small());
        let reg = ComponentRegistry::with_exe_size(store, 2048);
        let src = toy_source(SemVer::master(0, 0), 4, 16);
        let s00 = toy_scaler(SemVer::master(0, 0), 4, 4, 1.0);
        let s01 = toy_scaler(SemVer::master(0, 1), 4, 4, 2.0);
        let s10 = toy_scaler(SemVer::master(1, 0), 4, 6, 3.0);
        let m00 = toy_model(SemVer::master(0, 0), 4, 0.50);
        let m01 = toy_model(SemVer::master(0, 1), 4, 0.60);
        let m02 = toy_model(SemVer::master(0, 2), 6, 0.70);
        let m03 = toy_model(SemVer::master(0, 3), 6, 0.80);
        let m04 = toy_model(SemVer::master(0, 4), 4, 0.90);
        let mut spaces = SearchSpaces {
            slot_names: toy_slots().iter().map(|s| s.to_string()).collect(),
            per_slot: vec![vec![], vec![], vec![]],
        };
        reg.register(src.clone()).unwrap();
        spaces.per_slot[0].push(src.key());
        for c in [&s00, &s01, &s10] {
            reg.register(c.clone()).unwrap();
            spaces.per_slot[1].push(c.key());
        }
        for c in [&m00, &m01, &m02, &m03, &m04] {
            reg.register(c.clone()).unwrap();
            spaces.per_slot[2].push(c.key());
        }
        let dag = Arc::new(PipelineDag::chain(&toy_slots()).unwrap());
        (reg, dag, spaces)
    }

    #[test]
    fn exhaustive_evaluates_upper_bound() {
        let (reg, dag, spaces) = scenario();
        let engine = MergeEngine::new(&reg, reg.store(), dag);
        let history = HistoryIndex::new();
        let clock = ClockLedger::new();
        let report = engine
            .search(&spaces, &history, MergeStrategy::WithoutPcPr, &clock)
            .unwrap();
        assert_eq!(report.candidates_total, 15);
        assert_eq!(report.candidates_evaluated, 15);
        assert_eq!(report.candidates_pruned, 0);
        // 2 scalers × 2 incompatible dim-6 models + 1 scaler × 3 incompatible
        // dim-4 models = 7 failing candidates.
        assert_eq!(report.failed_candidates, 7);
        assert!(report.best.is_some());
    }

    #[test]
    fn compat_pruning_removes_doomed_candidates() {
        let (reg, dag, spaces) = scenario();
        let engine = MergeEngine::new(&reg, reg.store(), dag);
        let history = HistoryIndex::new();
        let clock = ClockLedger::new();
        let report = engine
            .search(&spaces, &history, MergeStrategy::WithoutPr, &clock)
            .unwrap();
        assert_eq!(report.candidates_pruned, 7);
        assert_eq!(report.candidates_evaluated, 8);
        assert_eq!(report.failed_candidates, 0, "pruning removed all failures");
        assert!(report.best.is_some());
    }

    #[test]
    fn full_strategy_executes_each_node_once() {
        let (reg, dag, spaces) = scenario();
        let engine = MergeEngine::new(&reg, reg.store(), dag.clone());
        let history = HistoryIndex::new();
        let clock = ClockLedger::new();
        let report = engine
            .search(&spaces, &history, MergeStrategy::Full, &clock)
            .unwrap();
        assert_eq!(report.candidates_evaluated, 8);
        // Distinct tree nodes along live paths: 1 source + 3 scalers +
        // (2 scalers × 3 dim4 models) + (1 scaler × 2 dim6 models) = 12.
        assert_eq!(
            report.executed_components, 12,
            "every live tree node executes exactly once"
        );
        assert!(report.reused_components > 0);
        assert!(report.best.is_some());
    }

    #[test]
    fn full_is_faster_and_smaller_than_ablations() {
        let strategies = [
            MergeStrategy::WithoutPcPr,
            MergeStrategy::WithoutPr,
            MergeStrategy::Full,
        ];
        let mut times = Vec::new();
        let mut bytes = Vec::new();
        let mut bests = Vec::new();
        for s in strategies {
            let (reg, dag, spaces) = scenario(); // fresh store per strategy
            let engine = MergeEngine::new(&reg, reg.store(), dag);
            let history = HistoryIndex::new();
            let clock = ClockLedger::new();
            let r = engine.search(&spaces, &history, s, &clock).unwrap();
            times.push(r.clock.total_ns());
            bytes.push(r.physical_bytes);
            bests.push(r.best.clone().unwrap());
        }
        assert!(times[2] < times[1], "Full beats w/o PR: {times:?}");
        assert!(times[1] < times[0], "w/o PR beats w/o PCPR: {times:?}");
        assert!(bytes[2] <= bytes[1]);
        // All strategies agree on the optimum (they search the same space).
        assert_eq!(bests[0].1.raw, bests[2].1.raw);
        assert_eq!(bests[1].1.raw, bests[2].1.raw);
    }

    #[test]
    fn full_reuses_prior_history() {
        let (reg, dag, spaces) = scenario();
        let engine = MergeEngine::new(&reg, reg.store(), dag.clone());
        let history = HistoryIndex::new();
        // Pre-train one pipeline (the common ancestor's, say) so its prefix
        // is checkpointed.
        let keys = vec![
            spaces.per_slot[0][0].clone(),
            spaces.per_slot[1][0].clone(),
            spaces.per_slot[2][0].clone(),
        ];
        let bound = engine.bind(&keys).unwrap();
        let clock = ClockLedger::new();
        Executor::new(reg.store())
            .run(&bound, &clock, Some(&history), ExecOptions::MLCASK)
            .unwrap();
        let pre_train_ns = clock.snapshot().total_ns();
        let merge_clock = ClockLedger::new();
        let report = engine
            .search(&spaces, &history, MergeStrategy::Full, &merge_clock)
            .unwrap();
        // The pre-trained path's three nodes are green → fewer executions.
        assert_eq!(report.executed_components, 9);
        assert!(report.state_counts.checkpointed >= 3);
        assert!(pre_train_ns > 0);
    }

    #[test]
    fn naive_candidate_picks_latest_and_fails_here() {
        let (reg, dag, spaces) = scenario();
        let cand = naive_candidate(&spaces);
        // Latest scaler is 1.0 (dim 6), latest model is 0.4 (expects dim 4):
        // exactly the paper's incompatibility example.
        assert_eq!(cand[1].version, SemVer::master(1, 0));
        assert_eq!(cand[2].version, SemVer::master(0, 4));
        let engine = MergeEngine::new(&reg, reg.store(), dag);
        let history = HistoryIndex::new();
        let clock = ClockLedger::new();
        let report = engine
            .search(&spaces, &history, MergeStrategy::Naive, &clock)
            .unwrap();
        assert_eq!(report.candidates_evaluated, 1);
        assert_eq!(report.failed_candidates, 1);
        assert!(report.best.is_none());
    }

    #[test]
    fn candidate_end_times_are_monotone() {
        let (reg, dag, spaces) = scenario();
        let engine = MergeEngine::new(&reg, reg.store(), dag);
        let history = HistoryIndex::new();
        let clock = ClockLedger::new();
        let report = engine
            .search(&spaces, &history, MergeStrategy::Full, &clock)
            .unwrap();
        for w in report.candidates.windows(2) {
            assert!(w[1].end_time_ns >= w[0].end_time_ns);
        }
        assert_eq!(
            report.clock.total_ns(),
            report.candidates.last().unwrap().end_time_ns
        );
    }

    #[test]
    fn best_score_is_global_max() {
        let (reg, dag, spaces) = scenario();
        let engine = MergeEngine::new(&reg, reg.store(), dag);
        let history = HistoryIndex::new();
        let clock = ClockLedger::new();
        let report = engine
            .search(&spaces, &history, MergeStrategy::Full, &clock)
            .unwrap();
        let (_, best) = report.best.clone().unwrap();
        for c in &report.candidates {
            if let Some(s) = c.score {
                assert!(best.value >= s.value);
            }
        }
    }
}
