//! The multi-tenant workspace: one shared store, many pipeline systems.
//!
//! The paper's collaborative setting has many teams evolving pipelines over
//! shared dataset/library repositories; the storage savings in Figs. 7–8
//! come precisely from different collaborators' versions sharing physical
//! chunks. A [`Workspace`] makes that sharing real: it owns a single
//! [`ChunkStore`] + [`CommitGraph`] + [`HistoryIndex`], and hands out
//! per-tenant handles ([`Tenant`]) whose [`MlCask`] systems are *views* over
//! that shared state:
//!
//! * **Shared dedup** — every tenant's writes deduplicate against every
//!   other tenant's chunks; attribution is first-writer-pays with a
//!   shared-refcount fair-share view (see [`mlcask_storage::tenant`]).
//! * **Tenant-namespaced branches** — tenant `team_a`'s branch `master`
//!   lives in the shared commit graph as `team_a/master`, so the graph is
//!   one auditable history while tenants stay isolated: a namespace is
//!   writable only by its owner or by peers holding a [`ShareRight`] grant,
//!   enforced by the graph itself on every entry point.
//! * **Cross-tenant collaboration** — an owner grants peers `Read`/`Fork`/
//!   `MergeInto` rights ([`Workspace::grant_share`], [`Tenant::grant_to`]);
//!   a granted peer forks the owner's branch into its own namespace
//!   ([`Tenant::fork_from`] — references handed over, no bytes copied) and
//!   later merges its work back with
//!   [`MlCask::merge_into`](crate::system::MlCask::merge_into), paying only
//!   for newly materialized outputs. A denial aborts before any graph or
//!   accounting access.
//! * **Quotas** — each tenant's [`QuotaPolicy`] is enforced by the store on
//!   every (traced or live) write; a breach surfaces as
//!   [`StorageError::QuotaExceeded`](mlcask_storage::errors::StorageError)
//!   and aborts the offending commit/search without touching the graph.
//! * **Batched commits** — [`Workspace::commit_batch`] folds N consecutive
//!   commits on one branch into one metafile-blob batch and a single
//!   commit-graph append, amortizing the per-object round-trip for CI-style
//!   high-frequency updates while producing heads and history identical to
//!   N sequential [`MlCask::commit_pipeline`] calls.
//! * **Orphan GC** — [`Workspace::sweep_orphans`] walks every live root
//!   (commit metafiles, checkpointed outputs, registered executables) and
//!   drops unattributed blobs, e.g. those persisted by racing siblings of a
//!   dynamically failing node (see `ARCHITECTURE.md`).
//!
//! [`MlCask::new`] remains the single-tenant convenience: it builds a
//! private workspace under the hood, so existing callers are unaffected.

use crate::errors::{CoreError, Result};
use crate::history::HistoryIndex;
use crate::registry::ComponentRegistry;
use crate::system::{CommitResult, MlCask};
use mlcask_pipeline::clock::ClockLedger;
use mlcask_pipeline::component::ComponentKey;
use mlcask_pipeline::dag::PipelineDag;
use mlcask_pipeline::metafile::PipelineMetafile;
use mlcask_storage::commit::{Commit, CommitGraph};
use mlcask_storage::hash::Hash256;
use mlcask_storage::object::{ObjectKind, ObjectRef};
use mlcask_storage::store::{ChunkStore, SweepReport};
use mlcask_storage::tenant::{
    QuotaPolicy, SharePolicy, ShareRight, SharedUsage, TenantId, TenantUsage,
};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

struct WorkspaceState {
    /// Tenant name → id, in registration order.
    tenants: BTreeMap<String, TenantId>,
    next_id: u32,
    /// Registries opened against this workspace — GC roots for
    /// [`Workspace::sweep_orphans`].
    registries: Vec<Arc<ComponentRegistry>>,
}

/// Shared ownership of store, commit graph, and reusable-output history for
/// many tenant pipeline systems. See the module docs for the full picture.
pub struct Workspace {
    store: Arc<ChunkStore>,
    graph: Arc<CommitGraph>,
    history: HistoryIndex,
    state: RwLock<WorkspaceState>,
}

impl Workspace {
    /// Opens a workspace over an existing (root, untenanted) store.
    pub fn over(store: Arc<ChunkStore>) -> Arc<Workspace> {
        Arc::new(Workspace {
            store,
            graph: Arc::new(CommitGraph::new()),
            history: HistoryIndex::new(),
            state: RwLock::new(WorkspaceState {
                tenants: BTreeMap::new(),
                next_id: 0,
                registries: Vec::new(),
            }),
        })
    }

    /// In-memory workspace with default (ForkBase-like) store parameters.
    pub fn in_memory() -> Arc<Workspace> {
        Self::over(Arc::new(ChunkStore::in_memory()))
    }

    /// In-memory workspace with small chunks, convenient for tests.
    pub fn in_memory_small() -> Arc<Workspace> {
        Self::over(Arc::new(ChunkStore::in_memory_small()))
    }

    /// Durable workspace over a cask (append-only log-segment) store rooted
    /// at `root`. Reopening the same directory recovers every previously
    /// synced blob; a torn final record from a crashed writer is truncated
    /// away. Call [`Workspace::flush`] at commit points to drain the
    /// asynchronous writer pool and fsync all segments.
    pub fn durable(root: impl AsRef<std::path::Path>) -> Result<Arc<Workspace>> {
        Self::durable_with(
            root,
            mlcask_storage::cask::CaskOptions::default(),
            mlcask_storage::cache::CacheOptions::from_env(),
        )
    }

    /// [`Workspace::durable`] with explicit cask options and blob-cache
    /// configuration (`None` disables the read cache), instead of the
    /// defaults plus the `MLCASK_CACHE_BYTES` environment knob. The cache
    /// is a read-through tier keyed by content hash — switching it on or
    /// off can never change any observable except wall-clock and the
    /// [`Workspace::cache_stats`] telemetry.
    pub fn durable_with(
        root: impl AsRef<std::path::Path>,
        opts: mlcask_storage::cask::CaskOptions,
        cache: Option<mlcask_storage::cache::CacheOptions>,
    ) -> Result<Arc<Workspace>> {
        let backend = mlcask_storage::cask::CaskBackend::open_with(root, opts)?;
        Ok(Self::over(Arc::new(ChunkStore::with_cache(
            Arc::new(backend),
            mlcask_storage::chunk::ChunkParams::DEFAULT,
            mlcask_storage::costmodel::StorageCostModel::FORKBASE,
            cache,
        ))))
    }

    /// Drains any pending asynchronous writes and fsyncs the backing store.
    /// A no-op for in-memory backends.
    pub fn flush(&self) -> Result<()> {
        Ok(self.store.flush()?)
    }

    /// Blob-cache telemetry for the shared store (`None` when caching is
    /// disabled) — a read-only side channel next to the backend's
    /// durability counters, never part of determinism observables.
    pub fn cache_stats(&self) -> Option<mlcask_storage::stats::CacheStats> {
        self.store.cache_stats()
    }

    /// The shared root store (untenanted view).
    pub fn store(&self) -> &Arc<ChunkStore> {
        &self.store
    }

    /// The shared commit graph. Tenant branches appear namespaced
    /// (`tenant/branch`).
    pub fn graph(&self) -> &Arc<CommitGraph> {
        &self.graph
    }

    /// The shared reusable-output history: checkpoints recorded by one
    /// tenant's runs are reused by every other tenant's (the paper's
    /// cross-pipeline reuse).
    pub fn history(&self) -> &HistoryIndex {
        &self.history
    }

    /// Registers a tenant under `name` with the given quota and returns its
    /// handle. Fails if the name is taken. The name becomes an *owned*
    /// branch namespace in the shared commit graph: `name/…` branches are
    /// henceforth writable only through this tenant's own views or by peers
    /// it grants a [`ShareRight`].
    pub fn add_tenant(self: &Arc<Self>, name: &str, quota: QuotaPolicy) -> Result<Tenant> {
        // Branch ownership resolves on the prefix before the first `/`, so
        // a name containing one would leave its own branches unprotected
        // (or claimable by whoever registers the prefix).
        if name.is_empty() || name.contains('/') {
            return Err(CoreError::InvalidTenantName(name.to_string()));
        }
        let id = {
            let mut state = self.state.write();
            if state.tenants.contains_key(name) {
                return Err(CoreError::TenantExists(name.to_string()));
            }
            let id = TenantId(state.next_id);
            state.next_id += 1;
            state.tenants.insert(name.to_string(), id);
            id
        };
        self.store.tenant_accounts().register(id, quota);
        self.graph.shares().register_namespace(name);
        Ok(Tenant {
            workspace: Arc::clone(self),
            name: name.to_string(),
            id,
            store: Arc::new(self.store.for_tenant(id)),
            graph: self.graph.for_namespace(name),
        })
    }

    /// Registered tenant names, sorted.
    pub fn tenant_names(&self) -> Vec<String> {
        self.state.read().tenants.keys().cloned().collect()
    }

    /// True if a tenant named `name` is registered.
    pub fn has_tenant(&self, name: &str) -> bool {
        self.state.read().tenants.contains_key(name)
    }

    /// Grants `peer` the given [`ShareRight`] over `owner`'s namespace
    /// (replacing any earlier grant; rights imply the weaker ones). Both
    /// must be registered tenants.
    pub fn grant_share(&self, owner: &str, peer: &str, right: ShareRight) -> Result<()> {
        for t in [owner, peer] {
            if !self.has_tenant(t) {
                return Err(CoreError::UnknownTenant(t.to_string()));
            }
        }
        self.graph.shares().grant(owner, peer, right);
        Ok(())
    }

    /// Revokes whatever right `peer` held over `owner`'s namespace.
    pub fn revoke_share(&self, owner: &str, peer: &str) -> Result<()> {
        if !self.has_tenant(owner) {
            return Err(CoreError::UnknownTenant(owner.to_string()));
        }
        self.graph.shares().revoke(owner, peer);
        Ok(())
    }

    /// Point-in-time copy of the grants `owner` has extended.
    pub fn share_policy(&self, owner: &str) -> SharePolicy {
        self.graph.shares().policy_of(owner)
    }

    /// Point-in-time copy of the tenant roster. Taken under one short read
    /// lock so usage reports query the accounts *after* releasing it — a
    /// serving thread enumerating usage never holds the workspace lock
    /// across per-tenant accounting calls.
    fn tenant_roster(&self) -> BTreeMap<String, TenantId> {
        self.state.read().tenants.clone()
    }

    /// First-writer-pays usage per tenant name.
    pub fn usages(&self) -> BTreeMap<String, TenantUsage> {
        let accounts = self.store.tenant_accounts();
        self.tenant_roster()
            .into_iter()
            .map(|(name, id)| (name, accounts.usage(id)))
            .collect()
    }

    /// Shared-refcount (fair-share) usage per tenant name.
    pub fn shared_view(&self) -> BTreeMap<String, SharedUsage> {
        let by_id = self.store.tenant_accounts().shared_view();
        self.tenant_roster()
            .into_iter()
            .map(|(name, id)| {
                let usage = by_id.get(&id).copied().unwrap_or_default();
                (name, usage)
            })
            .collect()
    }

    /// Records a registry as a GC root provider (called by
    /// [`Tenant::open_pipeline`] and [`MlCask::new`]).
    pub(crate) fn attach_registry(&self, registry: &Arc<ComponentRegistry>) {
        let mut state = self.state.write();
        if !state.registries.iter().any(|r| Arc::ptr_eq(r, registry)) {
            state.registries.push(Arc::clone(registry));
        }
    }

    /// Groups `updates` — consecutive `(component keys, message)` commits on
    /// one branch of `sys` — into a single batch: every pipeline runs under
    /// the usual MLCask policy (reuse + precheck, in order, so later updates
    /// reuse earlier checkpoints), successful runs' metafiles are stored as
    /// one blob batch, and the commits land in **one** commit-graph append.
    ///
    /// Heads, commit ids, labels, and history are identical to calling
    /// [`MlCask::commit_pipeline`] once per update; rejected/failed updates
    /// produce a `CommitResult` with no commit, exactly as the unbatched
    /// path would. What changes is cost: one fixed store round-trip and one
    /// graph append amortized over the whole batch
    /// ([`CommitGraph::append_ops`] advances by one).
    ///
    /// Fails with [`CoreError::ForeignSystem`] if `sys` belongs to a
    /// different workspace.
    pub fn commit_batch(
        &self,
        sys: &MlCask,
        branch: &str,
        updates: &[(Vec<ComponentKey>, String)],
        ledger: &ClockLedger,
    ) -> Result<Vec<CommitResult>> {
        if !std::ptr::eq(Arc::as_ptr(sys.workspace()), self) {
            return Err(CoreError::ForeignSystem(sys.name().to_string()));
        }
        sys.commit_pipeline_batch(branch, updates, ledger)
    }

    /// Deletes every stored blob unreachable from the workspace's live
    /// roots: commit payload metafiles, the component outputs those
    /// metafiles reference, every checkpoint in the shared history, and the
    /// executables of every attached registry.
    ///
    /// The only writes this can reclaim are unattributed orphans — blobs
    /// persisted by racing siblings of a dynamically failing node (see the
    /// dynamic-failure caveat in `ARCHITECTURE.md`), or left behind by
    /// quota-aborted evaluations — restoring byte-level parity with a
    /// sequential run.
    ///
    /// **Quiescence required:** call between evaluations, not during one.
    /// A commit or merge search in flight has persisted traced outputs
    /// whose checkpoint roots land only at its canonical replay; a
    /// concurrent sweep would see them as unrooted and delete them out
    /// from under the evaluation.
    pub fn sweep_orphans(&self) -> Result<SweepReport> {
        let mut roots: HashSet<Hash256> = HashSet::new();
        // Commit payloads + the outputs their metafiles reference, all read
        // off one frozen graph view: every head resolves and every ancestor
        // walk completes against the same publication point.
        let view = self.graph.view();
        let mut commit_ids: HashSet<Hash256> = HashSet::new();
        for branch in view.branches() {
            let head = view.head(&branch)?;
            commit_ids.extend(view.ancestors(head.id)?);
        }
        for id in commit_ids {
            let commit = view.get(id)?;
            roots.insert(commit.payload);
            let meta: PipelineMetafile = self.store.get_meta(&ObjectRef {
                id: commit.payload,
                kind: ObjectKind::Pipeline,
                len: 0,
            })?;
            for slot in &meta.slots {
                if !slot.output.is_null() {
                    roots.insert(slot.output.id);
                }
            }
        }
        // Every checkpoint in the shared history (losing merge candidates
        // included — they are legitimately reusable).
        for cached in self.history.snapshot_shared().values() {
            if !cached.object.is_null() {
                roots.insert(cached.object.id);
            }
        }
        // Registered component executables; the registry list is cloned
        // under a short lock so the per-registry walks run unlocked.
        let registries = self.state.read().registries.clone();
        for registry in &registries {
            for name in registry.names() {
                for key in registry.versions_of(&name) {
                    if let Some(lib) = registry.get(&key) {
                        roots.insert(lib.executable.id);
                    }
                }
            }
        }
        Ok(self.store.sweep_orphans(roots)?)
    }
}

/// A tenant's handle into a shared [`Workspace`].
pub struct Tenant {
    workspace: Arc<Workspace>,
    name: String,
    id: TenantId,
    store: Arc<ChunkStore>,
    /// Actor-scoped graph view: writes act as this tenant's namespace.
    graph: CommitGraph,
}

impl Tenant {
    /// The tenant's name (also its branch namespace).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's accounting id.
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// The workspace this tenant belongs to.
    pub fn workspace(&self) -> &Arc<Workspace> {
        &self.workspace
    }

    /// The tenant-scoped store view: same physical store, writes attributed
    /// (and quota-checked) against this tenant. Build the tenant's
    /// [`ComponentRegistry`] over this store so library archives are
    /// attributed too.
    pub fn store(&self) -> &Arc<ChunkStore> {
        &self.store
    }

    /// This tenant's first-writer-pays usage.
    pub fn usage(&self) -> TenantUsage {
        self.workspace.store.tenant_accounts().usage(self.id)
    }

    /// This tenant's branches — the shared graph's `"{name}/…"` entries,
    /// listed under their caller-facing (prefix-stripped) names, sorted.
    /// Peers' branches never appear here, whatever grants exist.
    pub fn branches(&self) -> Vec<String> {
        let prefix = format!("{}/", self.name);
        self.workspace
            .graph
            .branches()
            .into_iter()
            .filter_map(|b| b.strip_prefix(&prefix).map(str::to_string))
            .collect()
    }

    /// Grants `peer` the given [`ShareRight`] over this tenant's namespace.
    pub fn grant_to(&self, peer: &str, right: ShareRight) -> Result<()> {
        self.workspace.grant_share(&self.name, peer, right)
    }

    /// Revokes whatever right `peer` held over this tenant's namespace.
    pub fn revoke_from(&self, peer: &str) -> Result<()> {
        self.workspace.revoke_share(&self.name, peer)
    }

    /// Forks a peer tenant's branch into this tenant's namespace: creates
    /// `new_branch` (caller-facing; `"{self}/{new_branch}"` in the shared
    /// graph) pointing at the head of the peer's `branch` — a branch whose
    /// parent commits live in the *peer's* namespace, the upstream/
    /// downstream-team workflow's starting point. Requires a
    /// [`ShareRight::Fork`] grant from `peer`; a denial is raised before
    /// any graph or accounting access.
    ///
    /// Forking hands over references, not bytes: the head's metafile and
    /// the component outputs it lists are recorded as referenced by this
    /// tenant in the shared-refcount ledger (the fair-share view a capacity
    /// planner bills), while first-writer-pays attribution stays with the
    /// peer. Nothing is copied — dedup makes the fork physically free.
    pub fn fork_from(&self, peer: &str, branch: &str, new_branch: &str) -> Result<Commit> {
        if !self.workspace.has_tenant(peer) {
            return Err(CoreError::UnknownTenant(peer.to_string()));
        }
        if !self
            .graph
            .shares()
            .allows(peer, &self.name, ShareRight::Fork)
        {
            return Err(CoreError::ShareDenied {
                owner: peer.to_string(),
                peer: self.name.clone(),
                needed: ShareRight::Fork,
            });
        }
        let from = format!("{peer}/{branch}");
        let to = format!("{}/{new_branch}", self.name);
        // Resolve the peer head's metafile *before* creating the branch —
        // every fallible read happens while the graph is still untouched —
        // then fork exactly the snapshot that was validated, immune to the
        // peer committing concurrently.
        let seen = self.graph.head(&from)?;
        let meta: PipelineMetafile = self.workspace.store.get_meta(&ObjectRef {
            id: seen.payload,
            kind: ObjectKind::Pipeline,
            len: 0,
        })?;
        let head = self.graph.branch_at(&from, &to, seen.id)?;
        // Refcount handoff: this tenant now depends on the forked head's
        // metafile and every output it references. Committed metafiles and
        // their outputs are GC roots, so these adoptions cannot hit swept
        // blobs; only a storage-backend fault can interrupt them.
        self.store.adopt_blob(head.payload)?;
        for slot in &meta.slots {
            if !slot.output.is_null() {
                self.store.adopt_blob(slot.output.id)?;
            }
        }
        Ok(head)
    }

    /// Opens a pipeline system for this tenant over the shared workspace.
    /// The system's branches are namespaced `"{tenant}/{branch}"` in the
    /// shared commit graph; callers keep using plain branch names.
    ///
    /// `registry` should be built over [`Tenant::store`] so every archived
    /// executable is attributed to this tenant; it is also recorded as a GC
    /// root provider for [`Workspace::sweep_orphans`].
    pub fn open_pipeline(
        &self,
        pipeline_name: &str,
        dag: PipelineDag,
        registry: Arc<ComponentRegistry>,
    ) -> MlCask {
        self.workspace.attach_registry(&registry);
        MlCask::in_workspace(
            Arc::clone(&self.workspace),
            Some(self.name.clone()),
            pipeline_name,
            dag,
            registry,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{toy_model, toy_scaler, toy_slots, toy_source};
    use mlcask_pipeline::semver::SemVer;

    fn tenant_system(t: &Tenant) -> MlCask {
        let registry = Arc::new(ComponentRegistry::with_exe_size(
            Arc::clone(t.store()),
            2048,
        ));
        for c in [
            toy_source(SemVer::master(0, 0), 4, 16),
            toy_scaler(SemVer::master(0, 0), 4, 4, 1.0),
            toy_model(SemVer::master(0, 0), 4, 0.5),
            toy_model(SemVer::master(0, 1), 4, 0.6),
        ] {
            registry.register(c).unwrap();
        }
        let dag = PipelineDag::chain(&toy_slots()).unwrap();
        t.open_pipeline("toy", dag, registry)
    }

    fn toy_keys(sys: &MlCask, model_inc: u32) -> Vec<ComponentKey> {
        let reg = sys.registry();
        vec![
            reg.versions_of("test_source")[0].clone(),
            reg.versions_of("test_scaler")[0].clone(),
            reg.versions_of("test_model")[model_inc as usize].clone(),
        ]
    }

    #[test]
    fn duplicate_tenant_names_rejected() {
        let ws = Workspace::in_memory_small();
        ws.add_tenant("team_a", QuotaPolicy::UNLIMITED).unwrap();
        assert!(matches!(
            ws.add_tenant("team_a", QuotaPolicy::UNLIMITED),
            Err(CoreError::TenantExists(_))
        ));
        assert_eq!(ws.tenant_names(), vec!["team_a"]);
    }

    #[test]
    fn tenant_names_must_be_valid_namespaces() {
        // A '/' in a tenant name would make namespace ownership resolve on
        // the wrong prefix, leaving the tenant's branches unprotected.
        let ws = Workspace::in_memory_small();
        for bad in ["team/a", "/", ""] {
            assert!(
                matches!(
                    ws.add_tenant(bad, QuotaPolicy::UNLIMITED),
                    Err(CoreError::InvalidTenantName(_))
                ),
                "{bad:?} must be rejected"
            );
        }
        assert!(ws.tenant_names().is_empty());
    }

    #[test]
    fn tenants_share_one_store_and_namespace_branches() {
        let ws = Workspace::in_memory_small();
        let a = ws.add_tenant("team_a", QuotaPolicy::UNLIMITED).unwrap();
        let b = ws.add_tenant("team_b", QuotaPolicy::UNLIMITED).unwrap();
        let sys_a = tenant_system(&a);
        let sys_b = tenant_system(&b);
        let clock = ClockLedger::new();
        sys_a
            .commit_pipeline("master", &toy_keys(&sys_a, 0), "a initial", &clock)
            .unwrap();
        sys_b
            .commit_pipeline("master", &toy_keys(&sys_b, 0), "b initial", &clock)
            .unwrap();
        // Both masters live side by side in the shared graph, namespaced.
        assert_eq!(
            ws.graph().branches(),
            vec!["team_a/master", "team_b/master"]
        );
        assert_eq!(
            sys_a.head_metafile("master").unwrap().label,
            "team_a/master.0"
        );
        // Identical components: tenant B's blobs dedup against A's, and B's
        // runs reuse A's checkpoints outright through the shared history.
        let usage = ws.usages();
        assert!(usage["team_a"].physical_bytes > 0);
        assert!(
            usage["team_b"].physical_bytes * 10 < usage["team_a"].physical_bytes,
            "tenant B re-pays little: {usage:?}"
        );
        assert_eq!(
            usage["team_a"].physical_bytes + usage["team_b"].physical_bytes,
            ws.store().physical_bytes(),
            "first-writer-pays sums to the store total"
        );
        let shared = ws.shared_view();
        assert!(shared["team_b"].referenced_bytes > 0);
    }

    #[test]
    fn fork_requires_grant_and_hands_over_refs() {
        let ws = Workspace::in_memory_small();
        let up = ws.add_tenant("up", QuotaPolicy::UNLIMITED).unwrap();
        let down = ws.add_tenant("down", QuotaPolicy::UNLIMITED).unwrap();
        let sys_up = tenant_system(&up);
        let clock = ClockLedger::new();
        sys_up
            .commit_pipeline("master", &toy_keys(&sys_up, 0), "upstream initial", &clock)
            .unwrap();
        // No grant: denied, nothing created, nothing attributed.
        let branches_before = ws.graph().branches();
        assert!(matches!(
            down.fork_from("up", "master", "feature"),
            Err(CoreError::ShareDenied {
                needed: ShareRight::Fork,
                ..
            })
        ));
        assert!(matches!(
            down.fork_from("ghost", "master", "feature"),
            Err(CoreError::UnknownTenant(_))
        ));
        assert_eq!(ws.graph().branches(), branches_before);
        assert_eq!(ws.shared_view()["down"].referenced_bytes, 0);
        // Granted: the fork points at the peer's head and the forker now
        // references (but did not pay for) the head's bytes.
        up.grant_to("down", ShareRight::Fork).unwrap();
        assert!(ws.share_policy("up").allows("down", ShareRight::Read));
        let head = down.fork_from("up", "master", "feature").unwrap();
        assert_eq!(head.branch, "up/master");
        assert_eq!(down.branches(), vec!["feature"]);
        assert_eq!(up.branches(), vec!["master"]);
        assert!(ws.shared_view()["down"].referenced_bytes > 0);
        assert_eq!(down.usage().physical_bytes, 0, "references, not bytes");
        // Revocation stops further forks.
        up.revoke_from("down").unwrap();
        assert!(down.fork_from("up", "master", "feature2").is_err());
    }

    #[test]
    fn foreign_system_rejected_by_commit_batch() {
        let ws = Workspace::in_memory_small();
        let other = Workspace::in_memory_small();
        let t = other.add_tenant("team", QuotaPolicy::UNLIMITED).unwrap();
        let sys = tenant_system(&t);
        let clock = ClockLedger::new();
        assert!(matches!(
            ws.commit_batch(&sys, "master", &[], &clock),
            Err(CoreError::ForeignSystem(_))
        ));
    }
}
