//! Component registry + the dataset/library repositories (§III).
//!
//! The paper stores different versions of datasets and libraries in shared
//! repositories so multiple pipelines reuse them. Here the *runnable* side
//! of a component version is a Rust object implementing `Component`, and the
//! *stored* side is a simulated executable payload archived in the chunk
//! store so library-storage accounting (Fig. 7's dedup advantage on library
//! versions) behaves like the real system.

use crate::errors::{CoreError, Result};
use mlcask_pipeline::component::{ComponentHandle, ComponentKey};
use mlcask_pipeline::metafile::LibraryMetafile;
use mlcask_storage::hash::Hash256;
use mlcask_storage::object::{ObjectKind, ObjectRef};
use mlcask_storage::store::ChunkStore;
use parking_lot::RwLock;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Deterministically synthesises an "executable" payload for a library
/// version: a large base blob shared by all versions of the same library
/// plus a small version-specific patch region. Consecutive versions thus
/// share most chunks — the property the paper's chunk-level library dedup
/// exploits.
pub fn simulated_executable(name: &str, version: &str, base_size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(base_size + 4096);
    // Base region: keyed by library name only (identical across versions).
    let mut counter = 0u64;
    while out.len() < base_size {
        let block = Hash256::of_parts(&[b"lib-base", name.as_bytes(), &counter.to_le_bytes()]);
        out.extend_from_slice(&block.0);
        counter += 1;
    }
    out.truncate(base_size);
    // Patch region: keyed by (name, version).
    for i in 0u64..128 {
        let block = Hash256::of_parts(&[
            b"lib-patch",
            name.as_bytes(),
            version.as_bytes(),
            &i.to_le_bytes(),
        ]);
        out.extend_from_slice(&block.0);
    }
    out
}

/// A registered library version: runnable handle + archived payload.
#[derive(Clone)]
pub struct RegisteredLibrary {
    /// The runnable component.
    pub handle: ComponentHandle,
    /// The library metafile (schemas, hyperparameters, entry point).
    pub metafile: LibraryMetafile,
    /// Stored executable payload.
    pub executable: ObjectRef,
}

/// The component registry: every library/dataset version the system knows,
/// addressable by `(name, version)`.
pub struct ComponentRegistry {
    store: Arc<ChunkStore>,
    by_key: RwLock<HashMap<ComponentKey, RegisteredLibrary>>,
    /// Versions per component name, in registration order.
    by_name: RwLock<BTreeMap<String, Vec<ComponentKey>>>,
    /// Size of the simulated executable base region.
    exe_base_size: usize,
}

impl ComponentRegistry {
    /// Default simulated executable base size (512 KiB — a small Python
    /// package's worth of bytes).
    pub const DEFAULT_EXE_SIZE: usize = 512 * 1024;

    /// Creates a registry archiving executables into `store`.
    pub fn new(store: Arc<ChunkStore>) -> Self {
        Self::with_exe_size(store, Self::DEFAULT_EXE_SIZE)
    }

    /// Creates a registry with a custom simulated executable size (tests use
    /// small sizes).
    pub fn with_exe_size(store: Arc<ChunkStore>, exe_base_size: usize) -> Self {
        ComponentRegistry {
            store,
            by_key: RwLock::new(HashMap::new()),
            by_name: RwLock::new(BTreeMap::new()),
            exe_base_size,
        }
    }

    /// Registers a component version: archives its simulated executable and
    /// records its metafile. Idempotent for identical keys.
    pub fn register(&self, handle: ComponentHandle) -> Result<RegisteredLibrary> {
        self.register_timed(handle).map(|(lib, _)| lib)
    }

    /// Like [`ComponentRegistry::register`], also returning the modeled
    /// storage time of archiving the executable (zero for an already
    /// registered version).
    pub fn register_timed(
        &self,
        handle: ComponentHandle,
    ) -> Result<(RegisteredLibrary, std::time::Duration)> {
        let key = handle.key();
        if let Some(existing) = self.by_key.read().get(&key) {
            return Ok((existing.clone(), std::time::Duration::ZERO));
        }
        let version_str = key.version.to_string();
        let payload = simulated_executable(&key.name, &version_str, self.exe_base_size);
        let put = self.store.put_blob(ObjectKind::Library, &payload)?;
        let metafile = LibraryMetafile {
            name: key.name.clone(),
            version: key.version.clone(),
            stage: handle.stage(),
            entry_point: format!("{}::main", key.name),
            input_schema: handle.input_schema(),
            output_schema: handle.output_schema(),
            hyperparams: BTreeMap::new(),
            executable: put.object,
        };
        let reg = RegisteredLibrary {
            handle,
            metafile,
            executable: put.object,
        };
        self.by_key.write().insert(key.clone(), reg.clone());
        match self.by_name.write().entry(key.name.clone()) {
            Entry::Vacant(v) => {
                v.insert(vec![key]);
            }
            Entry::Occupied(mut o) => o.get_mut().push(key),
        }
        Ok((reg, put.cost))
    }

    /// Resolves a component version to its runnable handle.
    pub fn resolve(&self, key: &ComponentKey) -> Result<ComponentHandle> {
        self.by_key
            .read()
            .get(key)
            .map(|r| r.handle.clone())
            .ok_or_else(|| CoreError::UnknownComponent(key.clone()))
    }

    /// The registered entry (handle + metafile) for a version.
    pub fn get(&self, key: &ComponentKey) -> Option<RegisteredLibrary> {
        self.by_key.read().get(key).cloned()
    }

    /// All registered versions of a component name, in registration order.
    pub fn versions_of(&self, name: &str) -> Vec<ComponentKey> {
        self.by_name.read().get(name).cloned().unwrap_or_default()
    }

    /// All registered component names.
    pub fn names(&self) -> Vec<String> {
        self.by_name.read().keys().cloned().collect()
    }

    /// Total registered versions.
    pub fn len(&self) -> usize {
        self.by_key.read().len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<ChunkStore> {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{toy_model, toy_scaler, toy_source};
    use mlcask_pipeline::semver::SemVer;

    fn registry() -> ComponentRegistry {
        ComponentRegistry::with_exe_size(Arc::new(ChunkStore::in_memory_small()), 8 * 1024)
    }

    #[test]
    fn register_and_resolve() {
        let reg = registry();
        let c = toy_source(SemVer::initial(), 4, 8);
        let key = c.key();
        reg.register(c).unwrap();
        assert!(reg.resolve(&key).is_ok());
        assert_eq!(reg.versions_of("test_source"), vec![key.clone()]);
        assert_eq!(reg.len(), 1);
        let entry = reg.get(&key).unwrap();
        assert_eq!(entry.metafile.name, "test_source");
        assert!(!entry.executable.is_null());
    }

    #[test]
    fn resolve_unknown_errors() {
        let reg = registry();
        let key = ComponentKey::new("ghost", SemVer::initial());
        assert!(matches!(
            reg.resolve(&key),
            Err(CoreError::UnknownComponent(_))
        ));
    }

    #[test]
    fn registration_is_idempotent() {
        let reg = registry();
        let c = toy_model(SemVer::initial(), 4, 0.5);
        reg.register(c.clone()).unwrap();
        let physical = reg.store().physical_bytes();
        reg.register(c).unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.store().physical_bytes(), physical);
    }

    #[test]
    fn versions_accumulate_in_order() {
        let reg = registry();
        for inc in 0..3 {
            reg.register(toy_model(SemVer::master(0, inc), 4, 0.5))
                .unwrap();
        }
        let versions = reg.versions_of("test_model");
        assert_eq!(versions.len(), 3);
        assert_eq!(versions[2].version, SemVer::master(0, 2));
        assert_eq!(reg.names(), vec!["test_model"]);
    }

    #[test]
    fn consecutive_versions_dedup_in_store() {
        let reg = registry();
        reg.register(toy_scaler(SemVer::master(0, 0), 4, 4, 1.0))
            .unwrap();
        let first_bytes = reg.store().stats().kind(ObjectKind::Library).physical_bytes;
        reg.register(toy_scaler(SemVer::master(0, 1), 4, 4, 2.0))
            .unwrap();
        let after = reg.store().stats().kind(ObjectKind::Library);
        let second_bytes = after.physical_bytes - first_bytes;
        assert!(
            second_bytes < first_bytes / 2,
            "v0.1 stored {second_bytes} bytes vs v0.0's {first_bytes}: dedup failed"
        );
    }

    #[test]
    fn simulated_executable_properties() {
        let a = simulated_executable("lib", "0.0", 4096);
        let b = simulated_executable("lib", "0.1", 4096);
        let c = simulated_executable("lib", "0.0", 4096);
        assert_eq!(a, c, "deterministic");
        assert_ne!(a, b, "version-specific patch differs");
        // Shared base region.
        assert_eq!(&a[..4096], &b[..4096]);
        assert!(a.len() > 4096);
    }
}
