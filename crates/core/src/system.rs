//! The `MlCask` facade: the end-to-end version-controlled pipeline system.
//!
//! Ties together the repositories (§III), version-control semantics (§IV),
//! branching/merging (§V) and the optimized merge search (§VI) behind the
//! API a deployment would script against: `commit` / `branch` / `merge`.

use crate::errors::{CoreError, Result};
use crate::history::HistoryIndex;
use crate::merge::{MergeEngine, MergeSearchReport, MergeStrategy};
use crate::registry::ComponentRegistry;
use crate::search_space::SearchSpaces;
use crate::workspace::Workspace;
use mlcask_pipeline::clock::ClockLedger;
use mlcask_pipeline::component::{ComponentHandle, ComponentKey};
use mlcask_pipeline::dag::{BoundPipeline, PipelineDag};
use mlcask_pipeline::executor::{ExecOptions, Executor, RunOutcome, RunReport};
use mlcask_pipeline::metafile::{PipelineMetafile, PipelineSlot};
use mlcask_pipeline::parallel::ParallelismPolicy;
use mlcask_storage::commit::{Commit, CommitGraph};
use mlcask_storage::hash::Hash256;
use mlcask_storage::object::{ObjectKind, ObjectRef};
use mlcask_storage::store::ChunkStore;
use mlcask_storage::tenant::ShareRight;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Result of committing a pipeline update.
#[derive(Debug)]
pub struct CommitResult {
    /// The created commit; `None` when MLCask's precheck rejected the update
    /// without running it (Fig. 5's final iteration).
    pub commit: Option<Commit>,
    /// The execution report of the committed run.
    pub report: RunReport,
}

/// Result of a merge operation.
#[derive(Debug)]
pub struct MergeOutcome {
    /// The merge commit on the base branch (None for rejected merges).
    pub commit: Option<Commit>,
    /// True if the merge was a fast-forward (no search needed).
    pub fast_forward: bool,
    /// Search details (empty/default for fast-forward merges).
    pub report: Option<MergeSearchReport>,
}

/// A version-controlled ML pipeline: MLCask's user-facing object.
///
/// The commit graph (pipeline repository), the reusable-output
/// [`HistoryIndex`], and the object store are owned by a [`Workspace`] the
/// system is a view of: a solo system created with [`MlCask::new`] gets a
/// private workspace, while systems opened through
/// [`Tenant::open_pipeline`](crate::workspace::Tenant) share one workspace
/// — and hence one deduplicating store, one commit graph (branches
/// namespaced `tenant/branch`), and one checkpoint history — with every
/// other tenant. Commits, branches, and metric-driven merges go through
/// it. A [`ParallelismPolicy`] set via [`MlCask::with_parallelism`] is
/// threaded through every execution — merge candidates fan out across
/// workers, and a single commit over a non-chain DAG fans its independent
/// nodes out — without changing any report or statistic (see
/// `mlcask_pipeline::replay`).
pub struct MlCask {
    name: String,
    dag: Arc<PipelineDag>,
    registry: Arc<ComponentRegistry>,
    workspace: Arc<Workspace>,
    /// Branch namespace (the tenant name); `None` for solo systems.
    namespace: Option<String>,
    /// Actor-scoped view of the workspace's commit graph: writes act as
    /// this system's namespace and are permission-checked against the
    /// shared [`ShareTable`](mlcask_storage::tenant::ShareTable).
    graph: CommitGraph,
    /// Pipeline metafiles by commit payload hash (in-memory cache over the
    /// store's persisted copies).
    metafiles: RwLock<HashMap<Hash256, PipelineMetafile>>,
    /// Worker pool for merge-search candidate evaluation.
    parallelism: ParallelismPolicy,
    /// Provenance-keyed incremental re-evaluation for merge searches
    /// (frontier cuts + shared-prefix hoisting). On by default; reports
    /// and accounting are identical either way, only wall-clock changes.
    incremental: bool,
}

impl MlCask {
    /// Opens a new single-tenant pipeline system over a registry (and its
    /// store): a thin convenience over a private [`Workspace`].
    pub fn new(name: &str, dag: PipelineDag, registry: Arc<ComponentRegistry>) -> MlCask {
        let workspace = Workspace::over(Arc::clone(registry.store()));
        workspace.attach_registry(&registry);
        Self::in_workspace(workspace, None, name, dag, registry)
    }

    /// Opens a system as a view over `workspace` (used by
    /// [`Tenant::open_pipeline`](crate::workspace::Tenant) and
    /// [`MlCask::new`]). With a namespace, every branch name this system
    /// sees maps to `"{namespace}/{branch}"` in the shared graph.
    pub(crate) fn in_workspace(
        workspace: Arc<Workspace>,
        namespace: Option<String>,
        name: &str,
        dag: PipelineDag,
        registry: Arc<ComponentRegistry>,
    ) -> MlCask {
        let graph = match &namespace {
            Some(ns) => workspace.graph().for_namespace(ns),
            None => workspace.graph().root_view(),
        };
        MlCask {
            name: name.to_string(),
            dag: Arc::new(dag),
            registry,
            workspace,
            namespace,
            graph,
            metafiles: RwLock::new(HashMap::new()),
            parallelism: ParallelismPolicy::Sequential,
            incremental: true,
        }
    }

    /// Maps a caller-facing branch name into the shared graph's namespace.
    fn ns(&self, branch: &str) -> String {
        match &self.namespace {
            Some(tenant) => format!("{tenant}/{branch}"),
            None => branch.to_string(),
        }
    }

    /// Sets the worker pool used by this system's pipeline executions:
    /// merge-search candidates fan out across workers, and a single
    /// commit's non-chain DAG fans its independent nodes out (wavefront
    /// execution). Reports are identical under every policy; only
    /// wall-clock changes.
    pub fn with_parallelism(mut self, parallelism: ParallelismPolicy) -> MlCask {
        self.parallelism = parallelism;
        self
    }

    /// Toggles provenance-keyed incremental re-evaluation for this system's
    /// merge searches (see [`mlcask_pipeline::provenance`]). On by default;
    /// turning it off is an accounting-identity escape hatch — every report,
    /// ledger charge, and tenant account is byte-identical either way.
    pub fn with_incremental(mut self, incremental: bool) -> MlCask {
        self.incremental = incremental;
        self
    }

    /// The MLCask execution policy carrying this system's worker pool.
    fn exec_options(&self) -> ExecOptions {
        ExecOptions::MLCASK.with_parallelism(self.parallelism)
    }

    /// The configured candidate-evaluation policy.
    pub fn parallelism(&self) -> ParallelismPolicy {
        self.parallelism
    }

    /// The pipeline's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The backing object store.
    pub fn store(&self) -> &Arc<ChunkStore> {
        self.registry.store()
    }

    /// The component registry.
    pub fn registry(&self) -> &Arc<ComponentRegistry> {
        &self.registry
    }

    /// The commit graph (pipeline repository) — shared across every tenant
    /// of the workspace; this system's branches appear under their
    /// namespaced names. The returned view *acts as* this system's
    /// namespace: reads see the whole graph, writes are permission-checked
    /// (a tenant cannot touch a peer's `team/…` branches without a
    /// [`ShareRight`] grant, even
    /// through these raw string APIs).
    pub fn graph(&self) -> &CommitGraph {
        &self.graph
    }

    /// The reusable-output history — shared across every tenant of the
    /// workspace (cross-pipeline checkpoint reuse).
    pub fn history(&self) -> &HistoryIndex {
        self.workspace.history()
    }

    /// The workspace this system is a view of.
    pub fn workspace(&self) -> &Arc<Workspace> {
        &self.workspace
    }

    /// The branch namespace (tenant name) of this system, if any.
    pub fn namespace(&self) -> Option<&str> {
        self.namespace.as_deref()
    }

    /// The shared-graph name of a caller-facing branch: `"{tenant}/{branch}"`
    /// for tenant systems, `branch` unchanged for solo systems.
    pub fn qualified_branch(&self, branch: &str) -> String {
        self.ns(branch)
    }

    /// The pipeline shape.
    pub fn dag(&self) -> &Arc<PipelineDag> {
        &self.dag
    }

    /// Lifts a completed run's checkpoints into the provenance index so
    /// later merge searches and trials can cut their frontier above them.
    /// Only keys already checkpointed in the history are recorded (the
    /// provenance pairing invariant).
    fn absorb_provenance(&self, bound: &BoundPipeline) -> Result<()> {
        self.history().provenance().absorb(bound, self.history())?;
        Ok(())
    }

    /// Resolves slot-ordered component keys to a bound pipeline.
    pub fn bind(&self, keys: &[ComponentKey]) -> Result<BoundPipeline> {
        let mut components: Vec<ComponentHandle> = Vec::with_capacity(keys.len());
        for k in keys {
            components.push(self.registry.resolve(k)?);
        }
        Ok(BoundPipeline::new(Arc::clone(&self.dag), components)?)
    }

    /// Runs a pipeline under MLCask policy (reuse + precheck) and, on
    /// success, commits it to `branch` (creating the branch's root commit if
    /// the graph is empty).
    pub fn commit_pipeline(
        &self,
        branch: &str,
        keys: &[ComponentKey],
        message: &str,
        ledger: &ClockLedger,
    ) -> Result<CommitResult> {
        let bound = self.bind(keys)?;
        let executor = Executor::new(self.store());
        let report = executor.run(&bound, ledger, Some(self.history()), self.exec_options())?;
        if !report.outcome.is_completed() {
            return Ok(CommitResult {
                commit: None,
                report,
            });
        }
        self.absorb_provenance(&bound)?;
        let commit = self.record_commit(branch, keys, &report, message, None)?;
        Ok(CommitResult {
            commit: Some(commit),
            report,
        })
    }

    /// Builds the metafile describing one committed run of this pipeline.
    fn build_metafile(
        &self,
        ns_branch: &str,
        seq: u32,
        keys: &[ComponentKey],
        report: &RunReport,
    ) -> PipelineMetafile {
        // Stages arrive in topological order, which on a non-chain DAG can
        // differ from slot order; match them to slots by component name
        // (names are unique per DAG).
        let stage_of: HashMap<&str, &mlcask_pipeline::executor::StageReport> = report
            .stages
            .iter()
            .map(|s| (s.component.name.as_str(), s))
            .collect();
        PipelineMetafile {
            name: self.name.clone(),
            label: format!("{ns_branch}.{seq}"),
            slots: keys
                .iter()
                .map(|k| {
                    let s = stage_of[k.name.as_str()];
                    PipelineSlot {
                        component: k.clone(),
                        output: s.output,
                        artifact_id: s.artifact_id,
                    }
                })
                .collect(),
            edges: self.dag.named_edges(),
            score: report.outcome.score(),
        }
    }

    fn record_commit(
        &self,
        branch: &str,
        keys: &[ComponentKey],
        report: &RunReport,
        message: &str,
        merge_parent: Option<Hash256>,
    ) -> Result<Commit> {
        self.record_commit_qualified(self.ns(branch), keys, report, message, merge_parent)
    }

    /// [`MlCask::record_commit`] over an already-qualified (shared-graph)
    /// branch name — the cross-tenant merge path commits onto a *peer's*
    /// branch, which has no caller-facing name in this system's namespace.
    fn record_commit_qualified(
        &self,
        branch: String,
        keys: &[ComponentKey],
        report: &RunReport,
        message: &str,
        merge_parent: Option<Hash256>,
    ) -> Result<Commit> {
        // Next label: branch.seq (root = 0 when the branch does not exist).
        let head = self.graph().head(&branch).ok();
        let next_seq = head.as_ref().map(|h| h.seq + 1).unwrap_or(0);
        let metafile = self.build_metafile(&branch, next_seq, keys, report);
        let put = self.store().put_meta(ObjectKind::Pipeline, &metafile)?;
        self.metafiles.write().insert(put.object.id, metafile);
        let commit = if let Some(mh) = merge_parent {
            self.graph()
                .commit_merge(&branch, mh, put.object.id, message)?
        } else if head.is_some() {
            self.graph().commit(&branch, put.object.id, message)?
        } else {
            self.graph().commit_root(&branch, put.object.id, message)?
        };
        Ok(commit)
    }

    /// Groups consecutive commits on one branch into a batch: each update
    /// runs under the usual MLCask policy *in order* (so later updates reuse
    /// earlier checkpoints), then the successful runs' metafiles are stored
    /// through [`ChunkStore::put_meta_batch`] and appended to the graph in
    /// **one** [`CommitGraph::commit_batch`] transaction.
    ///
    /// The produced heads, commit ids, labels, and history are identical to
    /// calling [`MlCask::commit_pipeline`] once per update; only the cost is
    /// amortized (one fixed store round-trip, one graph append). Updates the
    /// precheck rejects (or that fail mid-run) yield a [`CommitResult`] with
    /// no commit and consume no label, exactly like the unbatched path. A
    /// *hard* error (unregistered component, storage fault, quota breach)
    /// also mirrors the sequential driver: the updates that already
    /// completed are committed first, then the error is returned — the
    /// graph ends exactly where N sequential calls stopping at the same
    /// error would leave it.
    pub fn commit_pipeline_batch(
        &self,
        branch: &str,
        updates: &[(Vec<ComponentKey>, String)],
        ledger: &ClockLedger,
    ) -> Result<Vec<CommitResult>> {
        let ns_branch = self.ns(branch);
        let executor = Executor::new(self.store());
        // Phase 1: run everything in commit order against the shared
        // history; collect the reports and which updates commit. A hard
        // error stops the phase but not the batch — the completed prefix
        // still commits below, exactly as sequential calls would have.
        let mut reports: Vec<RunReport> = Vec::with_capacity(updates.len());
        let mut committable: Vec<usize> = Vec::new();
        let mut pending_err: Option<CoreError> = None;
        for (keys, _) in updates {
            let run = match self.bind(keys) {
                Ok(bound) => executor
                    .run(&bound, ledger, Some(self.history()), self.exec_options())
                    .map_err(CoreError::from)
                    .map(|report| (bound, report)),
                Err(e) => Err(e),
            };
            match run {
                Ok((bound, report)) => {
                    if report.outcome.is_completed() {
                        self.absorb_provenance(&bound)?;
                        committable.push(reports.len());
                    }
                    reports.push(report);
                }
                Err(e) => {
                    pending_err = Some(e);
                    break;
                }
            }
        }
        // Phase 2: metafiles for the committable prefix-sequenced runs.
        let base_seq = match self.graph().head(&ns_branch) {
            Ok(h) => h.seq + 1,
            Err(_) => 0,
        };
        let metafiles: Vec<PipelineMetafile> = committable
            .iter()
            .enumerate()
            .map(|(offset, &i)| {
                self.build_metafile(
                    &ns_branch,
                    base_seq + offset as u32,
                    &updates[i].0,
                    &reports[i],
                )
            })
            .collect();
        let puts = self
            .store()
            .put_meta_batch(ObjectKind::Pipeline, &metafiles)?;
        {
            let mut cache = self.metafiles.write();
            for (put, metafile) in puts.iter().zip(&metafiles) {
                cache.insert(put.object.id, metafile.clone());
            }
        }
        // Phase 3: one commit-graph append for the whole batch.
        let entries: Vec<(Hash256, String)> = committable
            .iter()
            .zip(&puts)
            .map(|(&i, put)| (put.object.id, updates[i].1.clone()))
            .collect();
        let commits = self.graph().commit_batch(&ns_branch, &entries)?;
        if let Some(e) = pending_err {
            return Err(e);
        }
        let mut commits = commits.into_iter();
        Ok(reports
            .into_iter()
            .map(|report| CommitResult {
                commit: if report.outcome.is_completed() {
                    commits.next()
                } else {
                    None
                },
                report,
            })
            .collect())
    }

    /// Creates a branch at `from`'s head (the paper's isolation of stable
    /// production pipelines from development pipelines).
    pub fn branch(&self, from: &str, new_branch: &str) -> Result<Commit> {
        Ok(self.graph().branch(&self.ns(from), &self.ns(new_branch))?)
    }

    /// The pipeline metafile committed at `commit`. Falls back to the
    /// store's persisted copy when it is not in this system's in-memory
    /// cache (e.g. a commit created by a sibling view of the workspace).
    pub fn metafile_of(&self, commit: &Commit) -> Result<PipelineMetafile> {
        if let Some(meta) = self.metafiles.read().get(&commit.payload) {
            return Ok(meta.clone());
        }
        let meta: PipelineMetafile = self
            .store()
            .get_meta(&ObjectRef {
                id: commit.payload,
                kind: ObjectKind::Pipeline,
                len: 0,
            })
            .map_err(|_| CoreError::MissingMetafile(commit.label()))?;
        self.metafiles.write().insert(commit.payload, meta.clone());
        Ok(meta)
    }

    /// The metafile at a branch head.
    pub fn head_metafile(&self, branch: &str) -> Result<PipelineMetafile> {
        let head = self.graph().head(&self.ns(branch))?;
        self.metafile_of(&head)
    }

    /// Builds the merge search spaces for merging `merging` into `base`
    /// (§V): versions developed since the common ancestor on either branch.
    pub fn merge_search_spaces(&self, base: &str, merging: &str) -> Result<SearchSpaces> {
        self.merge_search_spaces_qualified(&self.ns(base), &self.ns(merging))
    }

    /// [`MlCask::merge_search_spaces`] over already-qualified (shared-graph)
    /// branch names, so the two histories may belong to *different* tenants:
    /// a cross-tenant merge assembles its space from the commits both teams
    /// made since the fork point, exactly like the single-tenant case —
    /// cross-namespace parentage makes the common ancestor well defined.
    ///
    /// Every component version referenced along either path must be
    /// registered in *this* system's registry (collaborating teams share
    /// component libraries the way they share the workload definition).
    pub fn merge_search_spaces_qualified(&self, base: &str, merging: &str) -> Result<SearchSpaces> {
        // One frozen view for the whole multi-step read (two heads, the
        // LCA, both first-parent paths): concurrent commits on either
        // branch can neither tear this computation nor block it.
        let view = self.graph().view();
        let base_head = view.head(base)?;
        let merge_head = view.head(merging)?;
        let ancestor = view
            .common_ancestor(base_head.id, merge_head.id)?
            .ok_or_else(|| CoreError::NoCommonAncestor {
                base: base.into(),
                merging: merging.into(),
            })?;
        let collect_path = |head: &Commit| -> Result<Vec<PipelineMetafile>> {
            let mut metas = vec![self.metafile_of(&ancestor)?];
            for c in view.path_from(ancestor.id, head.id)? {
                metas.push(self.metafile_of(&c)?);
            }
            Ok(metas)
        };
        let head_path = collect_path(&base_head)?;
        let merge_path = collect_path(&merge_head)?;
        Ok(SearchSpaces::build(
            self.dag.node_names(),
            &head_path,
            &merge_path,
        ))
    }

    /// Initial leaf scores for prioritized search: the already-trained
    /// pipelines on both heads with their recorded metrics (§VII-E).
    pub fn initial_scores(
        &self,
        base: &str,
        merging: &str,
    ) -> Result<Vec<(Vec<ComponentKey>, f64)>> {
        let mut out = Vec::new();
        for b in [base, merging] {
            let meta = self.head_metafile(b)?;
            if let Some(score) = meta.score {
                out.push((meta.component_keys(), score.value));
            }
        }
        Ok(out)
    }

    /// Merges `merging` into `base` with the given strategy (§V–§VI).
    ///
    /// Fast-forward merges duplicate the `MERGE_HEAD` pipeline onto the base
    /// branch without any search. Diverged branches trigger the
    /// metric-driven merge: the best-scoring candidate is committed with
    /// both heads as parents.
    pub fn merge(
        &self,
        base: &str,
        merging: &str,
        strategy: MergeStrategy,
        ledger: &ClockLedger,
    ) -> Result<MergeOutcome> {
        if base == merging {
            return Err(CoreError::SelfMerge(base.into()));
        }
        self.merge_qualified(self.ns(base), &self.ns(merging), merging, strategy, ledger)
    }

    /// Checks that this system is a tenant of its workspace and that `peer`
    /// is a registered tenant granting this tenant at least `needed`.
    /// Performed *before* any execution or graph access, so a denial leaves
    /// the commit graph and every tenant's accounts untouched.
    fn require_grant(&self, peer: &str, needed: ShareRight) -> Result<&str> {
        let me = self
            .namespace
            .as_deref()
            .ok_or_else(|| CoreError::NotATenant(self.name.clone()))?;
        if !self.workspace.has_tenant(peer) {
            return Err(CoreError::UnknownTenant(peer.to_string()));
        }
        if !self.graph.shares().allows(peer, me, needed) {
            return Err(CoreError::ShareDenied {
                owner: peer.to_string(),
                peer: me.to_string(),
                needed,
            });
        }
        Ok(me)
    }

    /// Merges this tenant's branch `merging` **into a peer tenant's** branch
    /// `peer_branch` — the downstream team contributing its fork back
    /// upstream. Requires a [`ShareRight::MergeInto`] grant from `peer`.
    ///
    /// The merge search runs over both tenants' histories since the fork
    /// point, reusing the peer's cached component outputs through the shared
    /// history (dedup makes re-deriving them nearly free); any **newly**
    /// materialized candidate outputs are charged to *this* (merging)
    /// tenant, byte-deterministically across worker counts, because writes
    /// go through this system's tenant-scoped store view and ride the
    /// traced-execute/replay protocol. The merge commit lands on the peer's
    /// branch with both heads as parents.
    pub fn merge_into(
        &self,
        peer: &str,
        peer_branch: &str,
        merging: &str,
        strategy: MergeStrategy,
        ledger: &ClockLedger,
    ) -> Result<MergeOutcome> {
        self.require_grant(peer, ShareRight::MergeInto)?;
        let merging_q = self.ns(merging);
        self.merge_qualified(
            format!("{peer}/{peer_branch}"),
            &merging_q,
            &merging_q,
            strategy,
            ledger,
        )
    }

    /// Merges a peer tenant's branch `peer_branch` **into this tenant's**
    /// branch `base` — the downstream team pulling upstream work. Requires a
    /// [`ShareRight::Read`] grant from `peer`; the merge commit lands on
    /// this tenant's branch and every newly materialized byte is charged to
    /// this tenant.
    pub fn merge_from(
        &self,
        base: &str,
        peer: &str,
        peer_branch: &str,
        strategy: MergeStrategy,
        ledger: &ClockLedger,
    ) -> Result<MergeOutcome> {
        self.require_grant(peer, ShareRight::Read)?;
        self.merge_qualified(
            self.ns(base),
            &format!("{peer}/{peer_branch}"),
            &format!("{peer}/{peer_branch}"),
            strategy,
            ledger,
        )
    }

    /// The merge driver over already-qualified (shared-graph) branch names;
    /// `merging_label` is the name used in commit messages (caller-facing
    /// for same-tenant merges, qualified for cross-tenant ones).
    fn merge_qualified(
        &self,
        base: String,
        merging: &str,
        merging_label: &str,
        strategy: MergeStrategy,
        ledger: &ClockLedger,
    ) -> Result<MergeOutcome> {
        if base == merging {
            return Err(CoreError::SelfMerge(base));
        }
        let base_head = self.graph().head(&base)?;
        let merge_head = self.graph().head(merging)?;

        if self.graph().is_fast_forward(base_head.id, merge_head.id)? {
            // "MLCask duplicates the latest version in MERGE_HEAD, changes
            // its branch to HEAD, creates a new commit on HEAD, and finally
            // sets its parents to both MERGE_HEAD and HEAD."
            let meta = self.metafile_of(&merge_head)?;
            let keys = meta.component_keys();
            let bound = self.bind(&keys)?;
            let executor = Executor::new(self.store());
            // Fully checkpointed: zero-cost replay to assemble the metafile.
            let report = executor.run(&bound, ledger, Some(self.history()), self.exec_options())?;
            self.absorb_provenance(&bound)?;
            let commit = self.record_commit_qualified(
                base,
                &keys,
                &report,
                &format!("fast-forward merge of {merging_label}"),
                Some(merge_head.id),
            )?;
            return Ok(MergeOutcome {
                commit: Some(commit),
                fast_forward: true,
                report: None,
            });
        }

        let spaces = self.merge_search_spaces_qualified(&base, merging)?;
        let engine = MergeEngine::new(&self.registry, self.store(), Arc::clone(&self.dag))
            .with_parallelism(self.parallelism)
            .with_incremental(self.incremental);
        let report = engine.search(&spaces, self.history(), strategy, ledger)?;
        let Some((best_keys, _)) = report.best.clone() else {
            return Err(CoreError::NoViableCandidate);
        };
        // Replay the winner (fully checkpointed under Full/after search) to
        // assemble its metafile, then commit with both parents.
        let bound = self.bind(&best_keys)?;
        let executor = Executor::new(self.store());
        let replay = executor.run(&bound, ledger, Some(self.history()), self.exec_options())?;
        debug_assert!(matches!(replay.outcome, RunOutcome::Completed { .. }));
        self.absorb_provenance(&bound)?;
        let commit = self.record_commit_qualified(
            base,
            &best_keys,
            &replay,
            &format!(
                "metric-driven merge of {merging_label} ({})",
                strategy.label()
            ),
            Some(merge_head.id),
        )?;
        Ok(MergeOutcome {
            commit: Some(commit),
            fast_forward: false,
            report: Some(report),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{toy_model, toy_scaler, toy_slots, toy_source};
    use mlcask_pipeline::semver::SemVer;

    struct Fixture {
        sys: MlCask,
        src: ComponentKey,
        s00: ComponentKey,
        s01: ComponentKey,
        s10: ComponentKey,
        m00: ComponentKey,
        m01: ComponentKey,
        m02: ComponentKey,
        m04: ComponentKey,
    }

    fn fixture() -> Fixture {
        let store = Arc::new(ChunkStore::in_memory_small());
        let registry = Arc::new(ComponentRegistry::with_exe_size(store, 2048));
        let src = toy_source(SemVer::master(0, 0), 4, 16);
        let s00 = toy_scaler(SemVer::master(0, 0), 4, 4, 1.0);
        let s01 = toy_scaler(SemVer::master(0, 1), 4, 4, 2.0);
        let s10 = toy_scaler(SemVer::master(1, 0), 4, 6, 3.0);
        let m00 = toy_model(SemVer::master(0, 0), 4, 0.5);
        let m01 = toy_model(SemVer::master(0, 1), 4, 0.6);
        let m02 = toy_model(SemVer::master(0, 2), 6, 0.7);
        let m04 = toy_model(SemVer::master(0, 4), 4, 0.9);
        let keys: Vec<ComponentKey> = [&src, &s00, &s01, &s10, &m00, &m01, &m02, &m04]
            .iter()
            .map(|c| {
                registry.register((*c).clone()).unwrap();
                c.key()
            })
            .collect();
        let dag = PipelineDag::chain(&toy_slots()).unwrap();
        Fixture {
            sys: MlCask::new("toy", dag, registry),
            src: keys[0].clone(),
            s00: keys[1].clone(),
            s01: keys[2].clone(),
            s10: keys[3].clone(),
            m00: keys[4].clone(),
            m01: keys[5].clone(),
            m02: keys[6].clone(),
            m04: keys[7].clone(),
        }
    }

    fn seed_master(f: &Fixture, ledger: &ClockLedger) -> Commit {
        f.sys
            .commit_pipeline(
                "master",
                &[f.src.clone(), f.s00.clone(), f.m00.clone()],
                "initial pipeline",
                ledger,
            )
            .unwrap()
            .commit
            .unwrap()
    }

    #[test]
    fn commit_creates_metafile_and_history() {
        let f = fixture();
        let clock = ClockLedger::new();
        let c = seed_master(&f, &clock);
        assert_eq!(c.label(), "master.0");
        let meta = f.sys.head_metafile("master").unwrap();
        assert_eq!(meta.label, "master.0");
        assert_eq!(meta.slots.len(), 3);
        assert!(meta.score.is_some());
        assert_eq!(f.sys.history().len(), 3, "three checkpoints recorded");
    }

    #[test]
    fn second_commit_reuses_unchanged_prefix() {
        let f = fixture();
        let clock = ClockLedger::new();
        seed_master(&f, &clock);
        let before = clock.snapshot();
        // Only the model changes → source and scaler reused (C1).
        let res = f
            .sys
            .commit_pipeline(
                "master",
                &[f.src.clone(), f.s00.clone(), f.m01.clone()],
                "bump model",
                &clock,
            )
            .unwrap();
        assert_eq!(res.report.reused_count(), 2);
        assert_eq!(res.report.executed_count(), 1);
        let delta = clock.snapshot();
        assert!(delta.total_ns() > before.total_ns());
        assert_eq!(res.commit.unwrap().seq, 1);
    }

    #[test]
    fn precheck_rejection_commits_nothing() {
        let f = fixture();
        let clock = ClockLedger::new();
        seed_master(&f, &clock);
        let before_ns = clock.snapshot().total_ns();
        // scaler 1.0 (dim 6) + model 0.4 (dim 4): the paper's incompatible
        // final iteration.
        let res = f
            .sys
            .commit_pipeline(
                "master",
                &[f.src.clone(), f.s10.clone(), f.m04.clone()],
                "doomed",
                &clock,
            )
            .unwrap();
        assert!(res.commit.is_none());
        assert!(matches!(
            res.report.outcome,
            RunOutcome::RejectedByPrecheck { .. }
        ));
        assert_eq!(
            clock.snapshot().total_ns(),
            before_ns,
            "rejected update costs no pipeline time"
        );
        assert_eq!(f.sys.graph().head("master").unwrap().seq, 0);
    }

    #[test]
    fn fast_forward_merge() {
        let f = fixture();
        let clock = ClockLedger::new();
        seed_master(&f, &clock);
        f.sys.branch("master", "dev").unwrap();
        f.sys
            .commit_pipeline(
                "dev",
                &[f.src.clone(), f.s00.clone(), f.m01.clone()],
                "dev work",
                &clock,
            )
            .unwrap();
        let out = f
            .sys
            .merge("master", "dev", MergeStrategy::Full, &clock)
            .unwrap();
        assert!(out.fast_forward);
        assert!(out.report.is_none());
        let c = out.commit.unwrap();
        assert_eq!(c.parents.len(), 2);
        // Master's head now carries dev's pipeline.
        let meta = f.sys.head_metafile("master").unwrap();
        assert_eq!(meta.component_version("test_model").unwrap(), &f.m01);
    }

    #[test]
    fn diverged_merge_selects_best_candidate() {
        let f = fixture();
        let clock = ClockLedger::new();
        seed_master(&f, &clock);
        f.sys.branch("master", "dev").unwrap();
        // Master moves: better scaler.
        f.sys
            .commit_pipeline(
                "master",
                &[f.src.clone(), f.s01.clone(), f.m00.clone()],
                "scaler 0.1",
                &clock,
            )
            .unwrap();
        // Dev moves: better model.
        f.sys
            .commit_pipeline(
                "dev",
                &[f.src.clone(), f.s00.clone(), f.m01.clone()],
                "model 0.1",
                &clock,
            )
            .unwrap();
        let out = f
            .sys
            .merge("master", "dev", MergeStrategy::Full, &clock)
            .unwrap();
        assert!(!out.fast_forward);
        let report = out.report.unwrap();
        // Space: 1 src × 2 scalers × 2 models = 4 candidates.
        assert_eq!(report.candidates_total, 4);
        // The metric-driven merge finds the cross-branch combination
        // (scaler 0.1 + model 0.1) that neither branch tested.
        let meta = f.sys.head_metafile("master").unwrap();
        assert_eq!(meta.component_version("test_scaler").unwrap(), &f.s01);
        assert_eq!(meta.component_version("test_model").unwrap(), &f.m01);
        let c = out.commit.unwrap();
        assert_eq!(c.parents.len(), 2);
        // Merge commit beats both parents' scores.
        let best = report.best.unwrap().1;
        let parent_meta = f.sys.head_metafile("dev").unwrap();
        assert!(best.value >= parent_meta.score.unwrap().value);
    }

    #[test]
    fn merge_search_space_excludes_pre_ancestor_versions() {
        let f = fixture();
        let clock = ClockLedger::new();
        seed_master(&f, &clock);
        // Advance master twice before branching; the old model 0.0 version
        // predates the fork point and must not appear in the search space.
        f.sys
            .commit_pipeline(
                "master",
                &[f.src.clone(), f.s00.clone(), f.m01.clone()],
                "model 0.1",
                &clock,
            )
            .unwrap();
        f.sys.branch("master", "dev").unwrap();
        f.sys
            .commit_pipeline(
                "master",
                &[f.src.clone(), f.s01.clone(), f.m01.clone()],
                "scaler 0.1",
                &clock,
            )
            .unwrap();
        // Dev adopts the schema-changing scaler 1.0 together with the
        // matching dim-6 model 0.2 (a compatible pipeline, so it commits).
        f.sys
            .commit_pipeline(
                "dev",
                &[f.src.clone(), f.s10.clone(), f.m02.clone()],
                "scaler 1.0 + model 0.2",
                &clock,
            )
            .unwrap();
        let spaces = f.sys.merge_search_spaces("master", "dev").unwrap();
        let model_versions = &spaces.per_slot[2];
        assert!(
            !model_versions.contains(&f.m00),
            "pre-ancestor version leaked into the space"
        );
        assert!(model_versions.contains(&f.m01));
        assert!(model_versions.contains(&f.m02));
    }

    #[test]
    fn self_merge_rejected() {
        let f = fixture();
        let clock = ClockLedger::new();
        seed_master(&f, &clock);
        assert!(matches!(
            f.sys.merge("master", "master", MergeStrategy::Full, &clock),
            Err(CoreError::SelfMerge(_))
        ));
    }

    #[test]
    fn initial_scores_come_from_heads() {
        let f = fixture();
        let clock = ClockLedger::new();
        seed_master(&f, &clock);
        f.sys.branch("master", "dev").unwrap();
        f.sys
            .commit_pipeline(
                "dev",
                &[f.src.clone(), f.s00.clone(), f.m01.clone()],
                "dev",
                &clock,
            )
            .unwrap();
        let scores = f.sys.initial_scores("master", "dev").unwrap();
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|(_, v)| *v > 0.0));
    }

    #[test]
    fn commit_after_dev_work_isolates_master() {
        let f = fixture();
        let clock = ClockLedger::new();
        seed_master(&f, &clock);
        f.sys.branch("master", "dev").unwrap();
        f.sys
            .commit_pipeline(
                "dev",
                &[f.src.clone(), f.s01.clone(), f.m01.clone()],
                "dev iteration",
                &clock,
            )
            .unwrap();
        // Master untouched ("the master branch remains unchanged before the
        // merge if all updates are committed to the dev branch").
        let m = f.sys.head_metafile("master").unwrap();
        assert_eq!(m.component_version("test_model").unwrap(), &f.m00);
        assert_eq!(f.sys.graph().head("master").unwrap().seq, 0);
    }
}
