//! The reusable-output history index — the data behind "Pruning using
//! Reusable output" (PR, §VI-B).
//!
//! Every component execution is checkpointed under the key *(component
//! version, input artifact ids)*. During a merge, a search-tree node whose
//! key hits this index is a "green" node (Fig. 4): its output is reused and
//! it never re-executes. The index also powers linear-versioning reuse
//! (challenge C1: skipping unchanged pre-processing steps).
//!
//! The index is sharded (like `MemoryCache`) so the parallel candidate
//! evaluators' concurrent lookups and checkpoint inserts do not serialize
//! on one lock.

use mlcask_pipeline::executor::{CacheKey, CachedOutput, OutputCache};
use mlcask_pipeline::parallel::{ShardedMap, SnapshotCache};
use mlcask_pipeline::provenance::ProvenanceIndex;
use mlcask_pipeline::replay::CacheSnapshot;
use std::sync::Arc;

/// Shared, cloneable history of checkpointed component outputs.
///
/// Cloning is shallow (`Arc`); use [`HistoryIndex::deep_clone`] to fork an
/// independent copy (the prioritized-search trial harness forks the
/// pre-merge history for every trial).
///
/// Alongside the `CacheKey`-keyed checkpoints, the history carries a
/// [`ProvenanceIndex`] keyed by static sub-DAG fingerprints. The pairing
/// invariant: a fingerprint is recorded only after the same output is
/// inserted under its `CacheKey` here, so a provenance hit always implies a
/// history hit for the deterministic replay.
#[derive(Clone, Default)]
pub struct HistoryIndex {
    map: Arc<ShardedMap<CacheKey, CachedOutput>>,
    provenance: Arc<ProvenanceIndex>,
    /// Generation-validated memo behind [`HistoryIndex::snapshot_shared`];
    /// shared by shallow clones (they see the same map, so they can share
    /// the same snapshot), reset by [`HistoryIndex::deep_clone`].
    snap: Arc<SnapshotCache<CacheKey, CachedOutput>>,
}

impl HistoryIndex {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of checkpoints recorded.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no checkpoints exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forks an independent copy with the same contents (checkpoints and
    /// provenance fingerprints both).
    pub fn deep_clone(&self) -> HistoryIndex {
        HistoryIndex {
            map: Arc::new(self.map.fork()),
            provenance: Arc::new(self.provenance.fork()),
            snap: Arc::new(SnapshotCache::new()),
        }
    }

    /// The paired provenance index (static fingerprint → cached output).
    pub fn provenance(&self) -> &ProvenanceIndex {
        &self.provenance
    }

    /// Point-in-time copy of every checkpoint, keyed for the deterministic
    /// accounting replay (`mlcask_pipeline::replay`).
    pub fn snapshot(&self) -> CacheSnapshot {
        self.map.to_hashmap()
    }

    /// Like [`HistoryIndex::snapshot`], but shared: while no checkpoint
    /// lands, every caller gets the same `Arc` back instead of an O(n)
    /// copy. This is what lets many concurrent sessions start merge
    /// searches against one quiescent history without each paying a full
    /// snapshot; the first insert invalidates the memo and the next caller
    /// rebuilds. The contents are indistinguishable from
    /// [`HistoryIndex::snapshot`] taken at the same point, so replay-based
    /// determinism is unaffected.
    pub fn snapshot_shared(&self) -> Arc<CacheSnapshot> {
        self.snap.snapshot(&self.map)
    }

    /// Direct lookup (non-trait convenience).
    pub fn get(&self, key: &CacheKey) -> Option<CachedOutput> {
        self.map.get(key)
    }

    /// True if the key has a checkpoint.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.map.contains(key)
    }
}

impl OutputCache for HistoryIndex {
    fn lookup(&self, key: &CacheKey) -> Option<CachedOutput> {
        self.get(key)
    }

    fn insert(&self, key: CacheKey, value: CachedOutput) {
        self.map.insert(key, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcask_ml::metrics::{MetricKind, Score};
    use mlcask_pipeline::component::ComponentKey;
    use mlcask_pipeline::schema::SchemaId;
    use mlcask_pipeline::semver::SemVer;
    use mlcask_storage::hash::Hash256;
    use mlcask_storage::object::{ObjectKind, ObjectRef};

    fn key(n: u8) -> CacheKey {
        CacheKey {
            component: ComponentKey::new("c", SemVer::master(0, n as u32)),
            inputs: vec![Hash256::of(&[n])],
        }
    }

    fn output(n: u8) -> CachedOutput {
        CachedOutput {
            object: ObjectRef {
                id: Hash256::of(&[n, n]),
                kind: ObjectKind::Output,
                len: 1,
            },
            artifact_id: Hash256::of(&[n, n, n]),
            schema: SchemaId(Hash256::of(&[9])),
            score: Some(Score::new(MetricKind::Accuracy, 0.5)),
        }
    }

    #[test]
    fn insert_and_lookup() {
        let h = HistoryIndex::new();
        assert!(h.is_empty());
        h.insert(key(1), output(1));
        assert_eq!(h.len(), 1);
        assert!(h.contains(&key(1)));
        assert_eq!(
            h.lookup(&key(1)).unwrap().artifact_id,
            Hash256::of(&[1, 1, 1])
        );
        assert!(h.lookup(&key(2)).is_none());
    }

    #[test]
    fn shallow_clone_shares_state() {
        let h = HistoryIndex::new();
        let h2 = h.clone();
        h.insert(key(1), output(1));
        assert!(h2.contains(&key(1)), "shallow clones share the map");
    }

    #[test]
    fn deep_clone_is_independent() {
        let h = HistoryIndex::new();
        h.insert(key(1), output(1));
        let fork = h.deep_clone();
        fork.insert(key(2), output(2));
        assert!(!h.contains(&key(2)), "fork writes must not leak back");
        assert!(fork.contains(&key(1)), "fork keeps pre-existing entries");
    }

    #[test]
    fn key_distinguishes_inputs() {
        let h = HistoryIndex::new();
        let base = key(1);
        let mut other_inputs = base.clone();
        other_inputs.inputs = vec![Hash256::of(b"different")];
        h.insert(base.clone(), output(1));
        assert!(
            !h.contains(&other_inputs),
            "same component, different input"
        );
    }

    #[test]
    fn snapshot_captures_all_shards() {
        let h = HistoryIndex::new();
        for n in 0..50u8 {
            h.insert(key(n), output(n));
        }
        let snap = h.snapshot();
        assert_eq!(snap.len(), 50);
        for n in 0..50u8 {
            assert_eq!(snap[&key(n)], output(n));
        }
        // Snapshot is a copy: later inserts don't appear.
        h.insert(key(51), output(51));
        assert_eq!(snap.len(), 50);
    }

    #[test]
    fn snapshot_shared_memoizes_until_mutation() {
        let h = HistoryIndex::new();
        for n in 0..20u8 {
            h.insert(key(n), output(n));
        }
        let a = h.snapshot_shared();
        let b = h.snapshot_shared();
        assert!(Arc::ptr_eq(&a, &b), "quiescent history shares one snapshot");
        assert_eq!(*a, h.snapshot(), "shared contents match a fresh copy");
        // Shallow clones see the same map, so they share the memo too.
        assert!(Arc::ptr_eq(&h.clone().snapshot_shared(), &a));
        // A mutation invalidates; the rebuilt snapshot has the new entry.
        h.insert(key(42), output(42));
        let c = h.snapshot_shared();
        assert!(!Arc::ptr_eq(&a, &c), "insert invalidates the memo");
        assert_eq!(c.len(), 21);
        assert_eq!(a.len(), 20, "old snapshot is frozen");
        // Deep clones get their own memo (their map is independent).
        let fork = h.deep_clone();
        assert!(!Arc::ptr_eq(&fork.snapshot_shared(), &c));
        assert_eq!(*fork.snapshot_shared(), *c);
    }

    #[test]
    fn concurrent_inserts_and_lookups() {
        let h = HistoryIndex::new();
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let h = h.clone();
                s.spawn(move || {
                    for n in 0..50u8 {
                        h.insert(key(t.wrapping_mul(50).wrapping_add(n)), output(n));
                        let _ = h.get(&key(n));
                    }
                });
            }
        });
        assert_eq!(h.len(), 200);
    }
}
