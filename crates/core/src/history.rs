//! The reusable-output history index — the data behind "Pruning using
//! Reusable output" (PR, §VI-B).
//!
//! Every component execution is checkpointed under the key *(component
//! version, input artifact ids)*. During a merge, a search-tree node whose
//! key hits this index is a "green" node (Fig. 4): its output is reused and
//! it never re-executes. The index also powers linear-versioning reuse
//! (challenge C1: skipping unchanged pre-processing steps).

use mlcask_pipeline::executor::{CacheKey, CachedOutput, OutputCache};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Shared, cloneable history of checkpointed component outputs.
///
/// Cloning is shallow (`Arc`); use [`HistoryIndex::deep_clone`] to fork an
/// independent copy (the prioritized-search trial harness forks the
/// pre-merge history for every trial).
#[derive(Clone, Default)]
pub struct HistoryIndex {
    inner: Arc<RwLock<HashMap<CacheKey, CachedOutput>>>,
}

impl HistoryIndex {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of checkpoints recorded.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True if no checkpoints exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forks an independent copy with the same contents.
    pub fn deep_clone(&self) -> HistoryIndex {
        HistoryIndex {
            inner: Arc::new(RwLock::new(self.inner.read().clone())),
        }
    }

    /// Direct lookup (non-trait convenience).
    pub fn get(&self, key: &CacheKey) -> Option<CachedOutput> {
        self.inner.read().get(key).cloned()
    }

    /// True if the key has a checkpoint.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.inner.read().contains_key(key)
    }
}

impl OutputCache for HistoryIndex {
    fn lookup(&self, key: &CacheKey) -> Option<CachedOutput> {
        self.get(key)
    }

    fn insert(&self, key: CacheKey, value: CachedOutput) {
        self.inner.write().insert(key, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcask_ml::metrics::{MetricKind, Score};
    use mlcask_pipeline::component::ComponentKey;
    use mlcask_pipeline::schema::SchemaId;
    use mlcask_pipeline::semver::SemVer;
    use mlcask_storage::hash::Hash256;
    use mlcask_storage::object::{ObjectKind, ObjectRef};

    fn key(n: u8) -> CacheKey {
        CacheKey {
            component: ComponentKey::new("c", SemVer::master(0, n as u32)),
            inputs: vec![Hash256::of(&[n])],
        }
    }

    fn output(n: u8) -> CachedOutput {
        CachedOutput {
            object: ObjectRef {
                id: Hash256::of(&[n, n]),
                kind: ObjectKind::Output,
                len: 1,
            },
            artifact_id: Hash256::of(&[n, n, n]),
            schema: SchemaId(Hash256::of(&[9])),
            score: Some(Score::new(MetricKind::Accuracy, 0.5)),
        }
    }

    #[test]
    fn insert_and_lookup() {
        let h = HistoryIndex::new();
        assert!(h.is_empty());
        h.insert(key(1), output(1));
        assert_eq!(h.len(), 1);
        assert!(h.contains(&key(1)));
        assert_eq!(h.lookup(&key(1)).unwrap().artifact_id, Hash256::of(&[1, 1, 1]));
        assert!(h.lookup(&key(2)).is_none());
    }

    #[test]
    fn shallow_clone_shares_state() {
        let h = HistoryIndex::new();
        let h2 = h.clone();
        h.insert(key(1), output(1));
        assert!(h2.contains(&key(1)), "shallow clones share the map");
    }

    #[test]
    fn deep_clone_is_independent() {
        let h = HistoryIndex::new();
        h.insert(key(1), output(1));
        let fork = h.deep_clone();
        fork.insert(key(2), output(2));
        assert!(!h.contains(&key(2)), "fork writes must not leak back");
        assert!(fork.contains(&key(1)), "fork keeps pre-existing entries");
    }

    #[test]
    fn key_distinguishes_inputs() {
        let h = HistoryIndex::new();
        let base = key(1);
        let mut other_inputs = base.clone();
        other_inputs.inputs = vec![Hash256::of(b"different")];
        h.insert(base.clone(), output(1));
        assert!(!h.contains(&other_inputs), "same component, different input");
    }
}
